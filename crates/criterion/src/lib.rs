//! A tiny wall-clock benchmark harness with a `criterion`-compatible API
//! subset.
//!
//! The workspace builds fully offline, so the real [`criterion`] crate is
//! unavailable. This crate implements the slice of its API the bench
//! targets use — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], `group.sample_size`,
//! `group.bench_with_input`, [`BenchmarkId::from_parameter`] and
//! [`Bencher::iter`] — wired in through Cargo dependency renaming
//! (`criterion = { package = "dna-criterion", … }`).
//!
//! Instead of criterion's statistical machinery it reports min / median /
//! mean over the configured sample count, which is plenty to compare the
//! relative cost of the paper's ablation switches.
//!
//! [`criterion`]: https://crates.io/crates/criterion

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// implemented, every benchmark runs.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: 20 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 20, &mut f);
    }
}

/// A named parameter attached to one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier rendered from a displayable parameter value.
    #[must_use]
    pub fn from_parameter(param: impl Display) -> Self {
        Self { label: param.to_string() }
    }

    /// Identifier with an explicit function name and parameter.
    #[must_use]
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self { label: format!("{}/{param}", name.into()) }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Benchmarks `f` with one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run to populate caches / lazy state.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples, durations: Vec::with_capacity(samples) };
    f(&mut b);
    let mut sorted = b.durations.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<48} min {min:>10.2?}  median {median:>10.2?}  mean {mean:>10.2?}  ({} samples)",
        sorted.len()
    );
}

/// Declares a function bundling several benchmark functions (mirror of
/// criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_labels() {
        assert_eq!(BenchmarkId::from_parameter("k10").label, "k10");
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
