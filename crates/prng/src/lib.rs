//! Deterministic pseudo-random numbers with a [`rand`]-compatible API
//! subset.
//!
//! The build environment of this workspace is fully offline, so external
//! crates cannot be fetched. This crate is a drop-in stand-in for the
//! small slice of the `rand` 0.8 API the workspace actually uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`] — wired in through Cargo
//! dependency renaming (`rand = { package = "dna-prng", … }`), so callers
//! keep writing `use rand::Rng;`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast,
//! statistically solid for simulation workloads, and — most importantly
//! here — **stable across platforms and releases**, which keeps every
//! seeded benchmark circuit reproducible.
//!
//! [`rand`]: https://crates.io/crates/rand

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generator engines.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Unlike `rand::rngs::StdRng` this engine is documented to be stable
    /// forever — generated benchmark circuits never change under a
    /// dependency bump.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seeding construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an engine from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, the
        // reference method recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Sampling interface (mirror of the used subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` ("standard" distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard (unit-uniform) distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<G: Rng>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample<G: Rng>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<G: Rng>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<G: Rng>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges an [`Rng`] can sample from (mirror of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

/// Rejection-free-enough integer sampling; the tiny modulo bias is
/// irrelevant for circuit synthesis but kept deterministic.
macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample<G: Rng>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<G: Rng>(self, rng: &mut G) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(3..=4u64);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&x));
            let y = rng.gen_range(2.0..=18.0);
            assert!((2.0..=18.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits} hits");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5..5usize);
    }
}
