//! Property tests for the noise-analysis substrate, centred on the
//! envelope abstraction's bounding guarantees.

use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::Circuit;
use dna_noise::alignment::worst_alignment;
use dna_noise::{
    ChargeSharingModel, CouplingContext, CouplingMask, CouplingModel, NoiseAnalysis, NoiseConfig,
};
use dna_waveform::{superposition, Edge, Envelope, TimeInterval, Transition};
use proptest::prelude::*;

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (0u64..300, 6usize..25, 3usize..20).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

fn context_strategy() -> impl Strategy<Value = CouplingContext> {
    (0.5f64..20.0, 1.0f64..40.0, 0.2f64..6.0, 2.0f64..80.0).prop_map(
        |(coupling_cap, victim_ground_cap, victim_resistance, aggressor_slew)| CouplingContext {
            coupling_cap,
            victim_ground_cap,
            victim_resistance,
            aggressor_slew,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paper's central bounding claim (Fig. 2): the trapezoidal
    /// envelope's delay noise upper-bounds the worst single alignment of
    /// the pulse within the window.
    #[test]
    fn envelope_bounds_worst_alignment(
        ctx in context_strategy(),
        victim_slew in 4.0f64..40.0,
        window_lo in -50.0f64..50.0,
        window_width in 0.0f64..60.0,
    ) {
        let model = ChargeSharingModel::new();
        let pulse = model.noise_pulse(&ctx);
        let victim = Transition::new(0.0, victim_slew, Edge::Rising);
        let window = TimeInterval::new(window_lo, window_lo + window_width);
        let envelope = Envelope::from_window(&pulse, window.lo(), window.hi());
        let env_noise = superposition::delay_noise(&victim, &envelope);
        let best = worst_alignment(&victim, &pulse, window);
        prop_assert!(
            env_noise + 1e-6 >= best.delay_noise,
            "envelope {} < worst alignment {}",
            env_noise,
            best.delay_noise
        );
    }

    /// Coupling model sanity: pulses are physical (peak in (0, 1),
    /// positive width) for any plausible context.
    #[test]
    fn pulses_are_physical(ctx in context_strategy()) {
        let pulse = ChargeSharingModel::new().noise_pulse(&ctx);
        prop_assert!(pulse.peak() > 0.0 && pulse.peak() <= 0.95);
        prop_assert!(pulse.width() > 0.0);
        prop_assert!(pulse.start() <= pulse.peak_time());
        prop_assert!(pulse.peak_time() <= pulse.end());
    }

    /// Masking any single coupling never increases the circuit delay.
    #[test]
    fn removing_a_coupling_never_hurts(circuit in circuit_strategy(), pick in 0usize..64) {
        if circuit.num_couplings() == 0 {
            return Ok(());
        }
        let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
        let full = engine.run().unwrap().circuit_delay();
        let id = dna_netlist::CouplingId::new((pick % circuit.num_couplings()) as u32);
        let masked = engine
            .run_with_mask(&CouplingMask::all(&circuit).without(&[id]))
            .unwrap()
            .circuit_delay();
        prop_assert!(masked <= full + 1e-9, "removing {id} increased {full} -> {masked}");
    }

    /// The upper bound from infinite windows dominates the converged noise
    /// at every net (paper §3.2's dominance-interval construction).
    #[test]
    fn infinite_window_bound_holds(circuit in circuit_strategy()) {
        let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
        let mask = CouplingMask::all(&circuit);
        let report = engine.run().unwrap();
        for net in circuit.net_ids() {
            let ub = engine.delay_noise_upper_bound(
                net, report.noisy_timing().timings(), &mask);
            prop_assert!(
                ub + 1e-6 >= report.delay_noise(net),
                "net {net}: bound {ub} < converged {}",
                report.delay_noise(net)
            );
        }
    }
}
