//! Explicit worst-case aggressor alignment (paper refs \[5\]\[6\]\[7\]).
//!
//! The trapezoidal noise envelope is a *bound* over all alignments of the
//! aggressor inside its timing window. This module computes the worst
//! single alignment explicitly — used to validate that bound, to compare
//! against the envelope abstraction in tests, and by anyone who wants the
//! actual aligning instant for debugging a violation.

use dna_waveform::{superposition, Envelope, NoisePulse, TimeInterval, Transition};

/// Result of a worst-case alignment search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// The aggressor switching instant (its t50) producing the worst noise.
    pub instant: f64,
    /// The delay noise at that alignment.
    pub delay_noise: f64,
}

/// Finds the aggressor switching instant within `window` that maximizes
/// the delay noise of `pulse` on `victim`.
///
/// Uses dense sampling (the objective is piecewise smooth but not concave
/// — a pulse can re-cross the 50 % level) with local refinement around the
/// best sample.
///
/// # Example
///
/// ```
/// use dna_waveform::{Transition, Edge, NoisePulse, TimeInterval};
/// use dna_noise::alignment::worst_alignment;
///
/// let victim = Transition::new(0.0, 10.0, Edge::Rising);
/// let pulse = NoisePulse::symmetric(-2.0, 0.3, 4.0);
/// let best = worst_alignment(&victim, &pulse, TimeInterval::new(-20.0, 20.0));
/// assert!(best.delay_noise > 0.0);
/// // The winning alignment keeps the pulse near the victim's crossing.
/// assert!((best.instant - victim.t50()).abs() < 10.0);
/// ```
#[must_use]
pub fn worst_alignment(victim: &Transition, pulse: &NoisePulse, window: TimeInterval) -> Alignment {
    let evaluate = |instant: f64| {
        let env = Envelope::from_pulse(&pulse.shifted(instant));
        superposition::delay_noise(victim, &env)
    };

    const COARSE: usize = 256;
    let mut best = Alignment { instant: window.lo(), delay_noise: evaluate(window.lo()) };
    for i in 0..=COARSE {
        let t = window.lo() + window.width() * i as f64 / COARSE as f64;
        let d = evaluate(t);
        if d > best.delay_noise {
            best = Alignment { instant: t, delay_noise: d };
        }
    }
    // Local refinement around the best coarse sample.
    let mut step = window.width() / COARSE as f64;
    for _ in 0..24 {
        step *= 0.5;
        for cand in [best.instant - step, best.instant + step] {
            if window.contains(cand) {
                let d = evaluate(cand);
                if d > best.delay_noise {
                    best = Alignment { instant: cand, delay_noise: d };
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_waveform::Edge;

    fn victim() -> Transition {
        Transition::new(0.0, 10.0, Edge::Rising)
    }

    #[test]
    fn envelope_bounds_every_alignment() {
        // The paper's central bounding claim: the trapezoidal envelope's
        // delay noise is at least that of any single alignment within the
        // window.
        let pulse = NoisePulse::symmetric(-2.0, 0.35, 4.0);
        let window = TimeInterval::new(-5.0, 15.0);
        let env = Envelope::from_window(&pulse, window.lo(), window.hi());
        let env_noise = superposition::delay_noise(&victim(), &env);
        let best = worst_alignment(&victim(), &pulse, window);
        assert!(
            env_noise + 1e-9 >= best.delay_noise,
            "envelope noise {env_noise} below best alignment {}",
            best.delay_noise
        );
    }

    #[test]
    fn degenerate_window_matches_direct_evaluation() {
        let pulse = NoisePulse::symmetric(-2.0, 0.3, 4.0);
        let t = 4.0;
        let window = TimeInterval::point(t);
        let best = worst_alignment(&victim(), &pulse, window);
        let direct =
            superposition::delay_noise(&victim(), &Envelope::from_pulse(&pulse.shifted(t)));
        assert_eq!(best.instant, t);
        assert!((best.delay_noise - direct).abs() < 1e-12);
    }

    #[test]
    fn far_away_window_gives_zero() {
        let pulse = NoisePulse::symmetric(-2.0, 0.3, 4.0);
        let best = worst_alignment(&victim(), &pulse, TimeInterval::new(-500.0, -400.0));
        assert_eq!(best.delay_noise, 0.0);
    }

    #[test]
    fn refinement_improves_over_coarse_grid() {
        // The worst alignment of a narrow pulse is found precisely even in
        // a wide window where the coarse grid is sparse.
        let pulse = NoisePulse::symmetric(-0.5, 0.4, 1.0);
        let window = TimeInterval::new(-200.0, 200.0);
        let best = worst_alignment(&victim(), &pulse, window);
        assert!(best.delay_noise > 0.0);
        // Optimal placement is within a couple of slews of the crossing.
        assert!((best.instant - 5.0).abs() < 20.0);
    }
}
