//! Linear static crosstalk noise analysis.
//!
//! The substrate the DAC 2007 top-k-aggressors algorithm runs on: a linear
//! noise framework in the style the paper reviews in §2 (and industry
//! tools like ClariNet, ref \[12\], implement):
//!
//! * [`ChargeSharingModel`] — maps a coupling capacitor plus victim/
//!   aggressor electrical context to a triangular noise pulse,
//! * [`envelope_calc`] — sweeps pulses across aggressor timing windows to
//!   build trapezoidal noise envelopes (Fig. 2) and combined envelopes
//!   (Fig. 3),
//! * [`NoiseAnalysis`] — the iterative delay-noise / timing-window
//!   fixpoint loop (refs \[3\]\[4\]\[5\]), with optimistic and pessimistic
//!   seeds ([`StartAssumption`]) and per-coupling masking
//!   ([`CouplingMask`]) used by the top-k algorithms,
//! * [`alignment`] — explicit worst-case alignment search validating the
//!   envelope bound,
//! * [`order`] — aggressor orders (`p = t + 1`, §2),
//! * [`false_aggressor`] — timing- and logic-based false-aggressor pruning
//!   (refs \[10\]\[11\]),
//! * [`glitch`] — functional noise checks: worst glitch bound per net vs
//!   a configurable noise margin (the other half of a static noise tool).
//!
//! # Example
//!
//! ```
//! use dna_netlist::suite;
//! use dna_noise::{NoiseAnalysis, NoiseConfig, CouplingMask};
//!
//! let circuit = suite::benchmark("i1", 3)?;
//! let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
//!
//! let noisy = engine.run()?;
//! let quiet = engine.run_with_mask(&CouplingMask::none(&circuit))?;
//! assert!(noisy.circuit_delay() >= quiet.circuit_delay());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod coupling_model;
mod mask;

pub mod alignment;
pub mod envelope_calc;
pub mod false_aggressor;
pub mod glitch;
pub mod order;

pub use analysis::{NoiseAnalysis, NoiseConfig, NoiseReport, StartAssumption};
pub use coupling_model::{ChargeSharingModel, CouplingContext, CouplingModel};
pub use false_aggressor::{false_couplings, ExclusionSet, FalseCoupling};
pub use mask::CouplingMask;
