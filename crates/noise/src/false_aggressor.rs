//! False-aggressor identification (paper refs \[10\]\[11\]).
//!
//! An aggressor is *false* for a victim when it cannot contribute delay
//! noise no matter how the analysis aligns it:
//!
//! * **timing-false** — even with its window widened by the upper-bound
//!   delay noise, the aggressor's envelope cannot reach past the victim's
//!   noiseless `t50` (a pulse that is over before the victim switches never
//!   delays it),
//! * **logic-false** — the user declares the aggressor/victim pair
//!   mutually exclusive (they can never switch in the same cycle), the
//!   "temporofunctional" correlations of ref \[11\] reduced to an explicit
//!   exclusion list.
//!
//! Pruning false aggressors shrinks every later enumeration, so the top-k
//! engine calls [`false_couplings`] once up front.

use std::collections::HashSet;

use dna_netlist::{Circuit, CouplingId, NetId};
use dna_sta::NetTiming;

use crate::{envelope_calc, CouplingMask, NoiseConfig};

/// User-declared pairs of nets that can never switch in the same cycle.
///
/// # Example
///
/// ```
/// use dna_netlist::NetId;
/// use dna_noise::ExclusionSet;
///
/// let mut ex = ExclusionSet::new();
/// ex.add(NetId::new(1), NetId::new(2));
/// assert!(ex.excluded(NetId::new(2), NetId::new(1))); // symmetric
/// assert!(!ex.excluded(NetId::new(1), NetId::new(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExclusionSet {
    pairs: HashSet<(NetId, NetId)>,
}

impl ExclusionSet {
    /// An empty exclusion set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `a` and `b` mutually exclusive.
    pub fn add(&mut self, a: NetId, b: NetId) {
        self.pairs.insert(Self::key(a, b));
    }

    /// Whether the pair was declared mutually exclusive.
    #[must_use]
    pub fn excluded(&self, a: NetId, b: NetId) -> bool {
        self.pairs.contains(&Self::key(a, b))
    }

    /// Number of declared pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    fn key(a: NetId, b: NetId) -> (NetId, NetId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// A coupling flagged false for one specific victim direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalseCoupling {
    /// The coupling capacitor.
    pub coupling: CouplingId,
    /// The victim for which it is false (the same capacitor may still be a
    /// real aggressor in the other direction).
    pub victim: NetId,
}

/// Identifies (coupling, victim) pairs that cannot produce delay noise.
///
/// `timings` should come from a converged (or pessimistic) analysis so the
/// judgement is safe: windows are widened by `guard_band` before the test,
/// and a coupling is only declared false when its envelope ends strictly
/// before the victim's latest transition *starts* to cross.
#[must_use]
pub fn false_couplings(
    circuit: &Circuit,
    config: &NoiseConfig,
    timings: &[NetTiming],
    exclusions: &ExclusionSet,
    guard_band: f64,
) -> Vec<FalseCoupling> {
    let mask = CouplingMask::all(circuit);
    let mut result = Vec::new();
    for victim in circuit.net_ids() {
        let victim_t50 = timings[victim.index()].lat();
        for &cc in circuit.couplings_on(victim) {
            if !mask.is_enabled(cc) {
                continue;
            }
            let aggressor =
                circuit.coupling(cc).other(victim).expect("coupling index is consistent");
            if exclusions.excluded(victim, aggressor) {
                result.push(FalseCoupling { coupling: cc, victim });
                continue;
            }
            let env = envelope_calc::coupling_envelope(circuit, config, victim, cc, timings);
            if env.span().hi() + guard_band < victim_t50 {
                result.push(FalseCoupling { coupling: cc, victim });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};
    use dna_sta::{LinearDelayModel, StaConfig, TimingReport};

    #[test]
    fn early_aggressor_is_timing_false() {
        // The aggressor switches at t=0 (primary input) while the victim
        // transitions after a long buffer chain — far too late for the
        // aggressor pulse to matter.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let agg = b.input("agg");
        let mut n = a;
        for i in 0..12 {
            n = b.gate(CellKind::Buf, format!("b{i}"), &[n]).unwrap();
        }
        b.output(n);
        let cc = b.coupling(agg, n, 5.0).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let falses =
            false_couplings(&c, &NoiseConfig::default(), t.timings(), &ExclusionSet::new(), 0.0);
        let victim = c.net_by_name("b11").unwrap();
        assert!(falses.contains(&FalseCoupling { coupling: cc, victim }));
        // In the opposite direction (late net attacking the early input)
        // the coupling is *not* false: a pulse arriving after the input's
        // transition can re-cross it.
        let agg_net = c.net_by_name("agg").unwrap();
        assert!(!falses.contains(&FalseCoupling { coupling: cc, victim: agg_net }));
    }

    #[test]
    fn exclusion_pairs_flag_logic_false() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        b.output(v);
        b.output(g);
        let cc = b.coupling(v, g, 6.0).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let mut ex = ExclusionSet::new();
        ex.add(v, g);
        let falses = false_couplings(&c, &NoiseConfig::default(), t.timings(), &ex, 0.0);
        // Excluded in both victim directions.
        assert!(falses.contains(&FalseCoupling { coupling: cc, victim: v }));
        assert!(falses.contains(&FalseCoupling { coupling: cc, victim: g }));
    }

    #[test]
    fn synchronous_neighbors_are_not_false() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        b.output(v);
        b.output(g);
        b.coupling(v, g, 6.0).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let falses =
            false_couplings(&c, &NoiseConfig::default(), t.timings(), &ExclusionSet::new(), 0.0);
        assert!(falses.is_empty());
    }
}
