//! Functional (glitch) noise analysis.
//!
//! Delay noise is only half of what a static noise tool checks: noise
//! coupled onto a *quiet* victim can propagate as a functional glitch if
//! its peak exceeds the receiving gate's noise margin (the failure class
//! ClariNet-style tools, paper ref \[12\], screen for). This module bounds
//! the worst glitch on every net — the combined noise envelope peak when
//! all aggressors are free to align — and reports margin violations.

use std::fmt;

use dna_netlist::{Circuit, NetId};
use dna_sta::NetTiming;
use dna_waveform::Envelope;

use crate::{envelope_calc, CouplingMask, NoiseConfig};

/// Noise-margin model: the peak noise (fraction of Vdd) a gate input can
/// tolerate on a quiet net without propagating a glitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargin {
    /// Tolerated peak for victims held low (noise pushes up).
    pub low: f64,
    /// Tolerated peak for victims held high (noise pushes down).
    pub high: f64,
}

impl Default for NoiseMargin {
    fn default() -> Self {
        // A conventional static-noise budget: 40 % of the rail in either
        // direction; tighter than the switching threshold to leave slack
        // for multi-stage propagation.
        Self { low: 0.4, high: 0.4 }
    }
}

impl NoiseMargin {
    /// The margin relevant for the analyzed (canonical) polarity.
    #[must_use]
    pub fn worst(&self) -> f64 {
        self.low.min(self.high)
    }
}

/// One glitch check result.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchReport {
    /// The victim net.
    pub net: NetId,
    /// Worst-case combined noise peak on the quiet victim (fraction of
    /// Vdd).
    pub peak: f64,
    /// The margin it was checked against.
    pub margin: f64,
}

impl GlitchReport {
    /// Whether the peak violates the margin.
    #[must_use]
    pub fn violated(&self) -> bool {
        self.peak > self.margin
    }

    /// How much rail is left (negative when violated).
    #[must_use]
    pub fn slack(&self) -> f64 {
        self.margin - self.peak
    }
}

impl fmt::Display for GlitchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net {} peak {:.3} vs margin {:.3} ({})",
            self.net,
            self.peak,
            self.margin,
            if self.violated() { "VIOLATED" } else { "ok" }
        )
    }
}

/// Bounds the worst glitch on every net and returns one report per net
/// with at least one enabled coupling, sorted worst slack first.
///
/// The peak is the maximum of the combined noise envelope built from the
/// given timing windows — a quiet victim has no alignment constraint, so
/// the envelope peak itself is the bound.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_noise::{glitch, CouplingMask, NoiseConfig};
/// use dna_sta::{LinearDelayModel, StaConfig, TimingReport};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let x = b.input("x");
/// let v = b.gate(CellKind::Buf, "v", &[a])?;
/// let g = b.gate(CellKind::Buf, "g", &[x])?;
/// b.output(v);
/// b.output(g);
/// b.coupling(v, g, 30.0)?; // a huge coupling
/// let circuit = b.build()?;
/// let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())?;
///
/// let reports = glitch::check(
///     &circuit,
///     &NoiseConfig::default(),
///     timing.timings(),
///     &CouplingMask::all(&circuit),
///     glitch::NoiseMargin::default(),
/// );
/// assert!(!reports.is_empty());
/// // The strongly coupled victim is the worst entry.
/// assert!(reports[0].peak > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn check(
    circuit: &Circuit,
    config: &NoiseConfig,
    timings: &[NetTiming],
    mask: &CouplingMask,
    margin: NoiseMargin,
) -> Vec<GlitchReport> {
    let mut reports: Vec<GlitchReport> = circuit
        .net_ids()
        .filter_map(|net| {
            let parts = envelope_calc::victim_envelopes(circuit, config, net, timings, |id| {
                mask.is_enabled(id)
            });
            if parts.is_empty() {
                return None;
            }
            let combined = Envelope::sum_all(parts.iter().map(|(_, e)| e));
            Some(GlitchReport { net, peak: combined.peak(), margin: margin.worst() })
        })
        .collect();
    reports.sort_by(|a, b| a.slack().partial_cmp(&b.slack()).expect("finite slacks"));
    reports
}

/// The nets whose glitch bound violates the margin.
#[must_use]
pub fn violations(
    circuit: &Circuit,
    config: &NoiseConfig,
    timings: &[NetTiming],
    mask: &CouplingMask,
    margin: NoiseMargin,
) -> Vec<GlitchReport> {
    check(circuit, config, timings, mask, margin)
        .into_iter()
        .filter(GlitchReport::violated)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};
    use dna_sta::{LinearDelayModel, StaConfig, TimingReport};

    fn coupled(cap: f64) -> (Circuit, Vec<NetTiming>) {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        b.output(v);
        b.output(g);
        b.coupling(v, g, cap).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default())
            .unwrap()
            .timings()
            .to_vec();
        (c, t)
    }

    #[test]
    fn weak_coupling_passes_strong_coupling_violates() {
        let cfg = NoiseConfig::default();
        let margin = NoiseMargin::default();

        let (c, t) = coupled(0.5);
        let v = violations(&c, &cfg, &t, &CouplingMask::all(&c), margin);
        assert!(v.is_empty(), "0.5 fF should not glitch: {v:?}");

        let (c, t) = coupled(40.0);
        let v = violations(&c, &cfg, &t, &CouplingMask::all(&c), margin);
        assert!(!v.is_empty(), "40 fF must glitch");
        assert!(v[0].violated());
        assert!(v[0].slack() < 0.0);
    }

    #[test]
    fn reports_sorted_worst_first() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let v1 = b.gate(CellKind::Buf, "v1", &[a]).unwrap();
        let v2 = b.gate(CellKind::Buf, "v2", &[x]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[y]).unwrap();
        b.output(v1);
        b.output(v2);
        b.output(g);
        b.coupling(v1, g, 2.0).unwrap();
        b.coupling(v2, g, 20.0).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default())
            .unwrap()
            .timings()
            .to_vec();
        let reports =
            check(&c, &NoiseConfig::default(), &t, &CouplingMask::all(&c), NoiseMargin::default());
        for w in reports.windows(2) {
            assert!(w[0].slack() <= w[1].slack() + 1e-12);
        }
    }

    #[test]
    fn masking_removes_glitches() {
        let (c, t) = coupled(40.0);
        let v = violations(
            &c,
            &NoiseConfig::default(),
            &t,
            &CouplingMask::none(&c),
            NoiseMargin::default(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn margin_accessors() {
        let m = NoiseMargin { low: 0.3, high: 0.5 };
        assert_eq!(m.worst(), 0.3);
        let r = GlitchReport { net: NetId::new(0), peak: 0.2, margin: 0.3 };
        assert!(!r.violated());
        assert!((r.slack() - 0.1).abs() < 1e-12);
        assert!(r.to_string().contains("ok"));
    }
}
