//! Building noise envelopes from circuit couplings and timing windows.

use dna_netlist::{Circuit, CouplingId, NetId};
use dna_sta::NetTiming;
use dna_waveform::Envelope;

use crate::{CouplingContext, CouplingModel, NoiseConfig};

/// The noise envelope one coupling capacitor contributes onto `victim`,
/// given the aggressor's current timing window.
///
/// The aggressor side of the coupling is whichever endpoint is not the
/// victim; its noise pulse (from the configured [`CouplingModel`]) is
/// swept across its `[EAT, LAT]` window to form the trapezoidal envelope
/// of paper Fig. 2.
///
/// # Panics
///
/// Panics if `coupling` is not incident to `victim`.
#[must_use]
pub fn coupling_envelope(
    circuit: &Circuit,
    config: &NoiseConfig,
    victim: NetId,
    coupling: CouplingId,
    timings: &[NetTiming],
) -> Envelope {
    let cc = circuit.coupling(coupling);
    let aggressor = cc
        .other(victim)
        .unwrap_or_else(|| panic!("coupling {coupling} is not incident to net {victim}"));
    let aggr_timing = &timings[aggressor.index()];

    let victim_resistance =
        circuit.driver_cell(victim).map_or(config.pi_resistance, |cell| cell.drive_resistance);
    let ground_cap = (circuit.load_cap(victim) - cc.cap()).max(0.0);

    let pulse = config.coupling.noise_pulse(&CouplingContext {
        coupling_cap: cc.cap(),
        victim_ground_cap: ground_cap,
        victim_resistance,
        aggressor_slew: aggr_timing.slew(),
    });
    Envelope::from_window(&pulse, aggr_timing.eat(), aggr_timing.lat())
}

/// The combined envelope of every enabled coupling on `victim`
/// (paper Fig. 3), as a list of per-coupling envelopes plus their sum.
///
/// Exposing the parts avoids recomputation in the top-k engine, which
/// needs individual envelopes for candidate construction and the total for
/// elimination-mode analysis.
#[must_use]
pub fn victim_envelopes(
    circuit: &Circuit,
    config: &NoiseConfig,
    victim: NetId,
    timings: &[NetTiming],
    enabled: impl Fn(CouplingId) -> bool,
) -> Vec<(CouplingId, Envelope)> {
    circuit
        .couplings_on(victim)
        .iter()
        .copied()
        .filter(|&id| enabled(id))
        .map(|id| (id, coupling_envelope(circuit, config, victim, id, timings)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseConfig;
    use dna_netlist::{CellKind, CircuitBuilder, Library};
    use dna_sta::{LinearDelayModel, StaConfig, TimingReport};

    fn setup() -> (Circuit, NetId, CouplingId, Vec<NetTiming>) {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[x]).unwrap();
        let agg = b.gate(CellKind::Inv, "agg", &[a]).unwrap();
        b.output(v);
        b.output(agg);
        let cc = b.coupling(agg, v, 6.0).unwrap();
        let c = b.build().unwrap();
        let t = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let timings = t.timings().to_vec();
        let victim = c.net_by_name("v").unwrap();
        (c, victim, cc, timings)
    }

    #[test]
    fn envelope_spans_aggressor_window() {
        let (c, v, cc, timings) = setup();
        let env = coupling_envelope(&c, &NoiseConfig::default(), v, cc, &timings);
        assert!(!env.is_zero());
        let agg = c.coupling(cc).other(v).unwrap();
        let w = timings[agg.index()].window();
        // Envelope support covers the window (shifted by pulse corners).
        assert!(env.span().lo() <= w.lo());
        assert!(env.span().hi() >= w.hi());
    }

    #[test]
    fn victim_envelopes_respects_filter() {
        let (c, v, cc, timings) = setup();
        let cfg = NoiseConfig::default();
        let all = victim_envelopes(&c, &cfg, v, &timings, |_| true);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, cc);
        let none = victim_envelopes(&c, &cfg, v, &timings, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "not incident")]
    fn wrong_victim_panics() {
        let (c, _, cc, timings) = setup();
        let a = c.net_by_name("a").unwrap();
        let _ = coupling_envelope(&c, &NoiseConfig::default(), a, cc, &timings);
    }
}
