//! Aggressor orders (paper §2).
//!
//! A primary aggressor acting alone is a *first order* aggressor. When
//! indirect aggressors coupled to its transitive fanin cone can widen its
//! timing window, the primary aggressor is assigned order `p = t + 1`
//! where `t` is the number of such fanin couplings. High-order aggressors
//! matter because their wider windows produce wider noise envelopes
//! (§3.3: the order-2 aggressor `b1₂`).

use dna_netlist::{Circuit, CouplingId, NetId};

/// Couplings incident to the transitive fanin cone of `net` (excluding
/// couplings incident to `net` itself unless they also touch the cone).
#[must_use]
pub fn fanin_couplings(circuit: &Circuit, net: NetId) -> Vec<CouplingId> {
    let cone = circuit.transitive_fanin(net);
    let mut in_cone = vec![false; circuit.num_nets()];
    for n in &cone {
        in_cone[n.index()] = true;
    }
    let mut found = Vec::new();
    let mut seen = vec![false; circuit.num_couplings()];
    for n in cone {
        for &cc in circuit.couplings_on(n) {
            if !seen[cc.index()] {
                seen[cc.index()] = true;
                found.push(cc);
            }
        }
    }
    found
}

/// The order of primary aggressor `aggressor` (paper §2): one plus the
/// number of couplings that can disturb its transitive fanin cone.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_noise::order::aggressor_order;
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let t = b.input("t");
/// let mid = b.gate(CellKind::Buf, "mid", &[a])?;
/// let agg = b.gate(CellKind::Buf, "agg", &[mid])?;
/// b.output(agg);
/// // A tertiary coupling onto the aggressor's fanin.
/// b.coupling(t, mid, 3.0)?;
/// let circuit = b.build()?;
///
/// let agg_net = circuit.net_by_name("agg").unwrap();
/// assert_eq!(aggressor_order(&circuit, agg_net), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn aggressor_order(circuit: &Circuit, aggressor: NetId) -> usize {
    fanin_couplings(circuit, aggressor).len() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    #[test]
    fn isolated_aggressor_is_first_order() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let agg = b.gate(CellKind::Buf, "agg", &[a]).unwrap();
        b.output(agg);
        let c = b.build().unwrap();
        assert_eq!(aggressor_order(&c, agg), 1);
        assert!(fanin_couplings(&c, agg).is_empty());
    }

    #[test]
    fn each_fanin_coupling_raises_order() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let t1 = b.input("t1");
        let t2 = b.input("t2");
        let mid = b.gate(CellKind::Buf, "mid", &[a]).unwrap();
        let agg = b.gate(CellKind::Buf, "agg", &[mid]).unwrap();
        b.output(agg);
        b.coupling(t1, mid, 2.0).unwrap();
        b.coupling(t2, a, 2.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(aggressor_order(&c, agg), 3);
    }

    #[test]
    fn couplings_on_the_net_itself_do_not_count() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let agg = b.gate(CellKind::Buf, "agg", &[a]).unwrap();
        b.output(agg);
        // Coupling is on `agg` itself, not its fanin cone.
        b.coupling(x, agg, 2.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(aggressor_order(&c, agg), 1);
    }

    #[test]
    fn shared_coupling_counted_once() {
        // One coupling touching two cone nets counts once.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let mid = b.gate(CellKind::Buf, "mid", &[a]).unwrap();
        let agg = b.gate(CellKind::Buf, "agg", &[mid]).unwrap();
        b.output(agg);
        b.coupling(a, mid, 2.0).unwrap(); // both endpoints inside the cone
        let c = b.build().unwrap();
        assert_eq!(aggressor_order(&c, agg), 2);
    }
}
