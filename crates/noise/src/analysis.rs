//! The iterative linear noise analysis (paper §1–§2, refs \[3\]\[4\]\[5\]).

use dna_netlist::{Circuit, NetId};
use dna_sta::{LinearDelayModel, NetTiming, StaConfig, StaError, TimingReport};
use dna_waveform::{superposition, Envelope, TimeInterval};

use crate::{envelope_calc, ChargeSharingModel, CouplingMask};

/// How the delay-noise / timing-window iteration is seeded.
///
/// Per Zhou's lattice formulation (paper ref \[4\]) the iteration can start
/// from the optimistic assumption that no windows overlap (ascending
/// iteration) or the pessimistic assumption that all of them do
/// (descending iteration); both converge to fixpoints that bound the true
/// solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartAssumption {
    /// Start from zero delay noise (optimistic, ascending iteration).
    #[default]
    NoOverlap,
    /// Start from a pessimistic upper-bound noise (descending iteration).
    AllOverlap,
}

/// Configuration of the noise analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Boundary conditions of the underlying STA.
    pub sta: StaConfig,
    /// Electrical coupling model.
    pub coupling: ChargeSharingModel,
    /// Victim holding resistance (kΩ) used when the victim is a primary
    /// input (no driving cell).
    pub pi_resistance: f64,
    /// Iteration cap. Industrial tools report 3–4 iterations to converge
    /// (paper §1); the default leaves generous headroom.
    pub max_iterations: usize,
    /// Convergence threshold in ps on the largest per-net noise change.
    pub tolerance: f64,
    /// Iteration seed.
    pub start: StartAssumption,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            sta: StaConfig::default(),
            coupling: ChargeSharingModel::new(),
            pi_resistance: 1.0,
            max_iterations: 25,
            tolerance: 1e-6,
            start: StartAssumption::NoOverlap,
        }
    }
}

/// The iterative delay-noise analysis engine.
///
/// Runs the classical chicken-and-egg loop: timing windows determine noise
/// envelopes, delay noise widens timing windows, repeat until the per-net
/// noise vector stops changing. [`run`](Self::run) analyzes all couplings;
/// [`run_with_mask`](Self::run_with_mask) restricts the coupling set,
/// which is the primitive both top-k algorithms and the brute-force
/// baseline are built on.
///
/// # Example
///
/// ```
/// use dna_netlist::suite;
/// use dna_noise::{NoiseAnalysis, NoiseConfig};
///
/// let circuit = suite::benchmark("i1", 7)?;
/// let analysis = NoiseAnalysis::new(&circuit, NoiseConfig::default());
/// let report = analysis.run()?;
/// // Crosstalk can only slow the circuit down.
/// assert!(report.circuit_delay() >= report.noiseless_delay());
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoiseAnalysis<'c> {
    circuit: &'c Circuit,
    config: NoiseConfig,
    model: LinearDelayModel,
}

impl<'c> NoiseAnalysis<'c> {
    /// Creates an engine over `circuit`.
    #[must_use]
    pub fn new(circuit: &'c Circuit, config: NoiseConfig) -> Self {
        Self { circuit, config, model: LinearDelayModel::new() }
    }

    /// The analyzed circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Full noise analysis with every coupling enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying timing runs.
    pub fn run(&self) -> Result<NoiseReport, StaError> {
        self.run_with_mask(&CouplingMask::all(self.circuit))
    }

    /// Noise analysis with only the couplings enabled by `mask`.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the underlying timing runs.
    pub fn run_with_mask(&self, mask: &CouplingMask) -> Result<NoiseReport, StaError> {
        let noiseless = TimingReport::run(self.circuit, &self.model, &self.config.sta)?;
        let n = self.circuit.num_nets();

        let mut noise: Vec<f64> = match self.config.start {
            StartAssumption::NoOverlap => vec![0.0; n],
            StartAssumption::AllOverlap => self.pessimistic_seed(&noiseless, mask),
        };

        let mut iterations = 0;
        let mut converged = false;
        let mut timing =
            TimingReport::run_with_noise(self.circuit, &self.model, &self.config.sta, &noise)?;
        while iterations < self.config.max_iterations {
            iterations += 1;
            let fresh = self.noise_pass(timing.timings(), &noise, mask);
            // Ascending runs join with max: the noise vector only grows, so
            // the loop terminates at a (possibly conservative) fixpoint —
            // the update is not exactly monotone because a victim shifted
            // later by fanin noise can drift out of a fixed envelope, and
            // the join absorbs that. Descending runs iterate the update
            // directly from the pessimistic seed and rely on the delta
            // check; both land within tolerance of each other in practice.
            let mut delta: f64 = 0.0;
            for i in 0..n {
                let next = match self.config.start {
                    StartAssumption::NoOverlap => noise[i].max(fresh[i]),
                    StartAssumption::AllOverlap => fresh[i],
                };
                delta = delta.max((next - noise[i]).abs());
                noise[i] = next;
            }
            timing =
                TimingReport::run_with_noise(self.circuit, &self.model, &self.config.sta, &noise)?;
            if delta < self.config.tolerance {
                converged = true;
                break;
            }
        }

        Ok(NoiseReport { noiseless, noisy: timing, noise, iterations, converged })
    }

    /// One sweep: the delay noise each net would see given the current
    /// timing windows.
    ///
    /// Aggressor envelopes come from the *noisy* windows (that is how
    /// indirect aggressors act, paper Fig. 1), but each victim's own
    /// previously assigned noise is subtracted from its transition first —
    /// superimposing onto the already-shifted transition would double
    /// count.
    fn noise_pass(&self, timings: &[NetTiming], noise: &[f64], mask: &CouplingMask) -> Vec<f64> {
        self.circuit
            .net_ids()
            .map(|v| {
                let parts =
                    envelope_calc::victim_envelopes(self.circuit, &self.config, v, timings, |id| {
                        mask.is_enabled(id)
                    });
                if parts.is_empty() {
                    return 0.0;
                }
                let combined = Envelope::sum_all(parts.iter().map(|(_, e)| e));
                let t = &timings[v.index()];
                let base = NetTiming::new(
                    t.eat().min(t.lat() - noise[v.index()]),
                    t.lat() - noise[v.index()],
                    t.slew(),
                );
                superposition::delay_noise(&base.latest_transition(), &combined)
            })
            .collect()
    }

    /// Pessimistic per-net seed: every aggressor window stretched to the
    /// end of time (paper §3.2 uses the same construction for the
    /// dominance-interval upper bound).
    fn pessimistic_seed(&self, noiseless: &TimingReport, mask: &CouplingMask) -> Vec<f64> {
        let horizon = noiseless.circuit_delay() * 2.0 + 1_000.0;
        let widened: Vec<NetTiming> = noiseless
            .timings()
            .iter()
            .map(|t| NetTiming::new(t.eat(), t.lat() + horizon, t.slew()))
            .collect();
        // Victim transitions must stay at their noiseless positions while
        // aggressor windows are widened, so evaluate per victim.
        self.circuit
            .net_ids()
            .map(|v| {
                let parts = envelope_calc::victim_envelopes(
                    self.circuit,
                    &self.config,
                    v,
                    &widened,
                    |id| mask.is_enabled(id),
                );
                if parts.is_empty() {
                    return 0.0;
                }
                let combined = Envelope::sum_all(parts.iter().map(|(_, e)| e));
                superposition::delay_noise(
                    &noiseless.timings()[v.index()].latest_transition(),
                    &combined,
                )
            })
            .collect()
    }

    /// Upper bound on the delay noise of `victim` under `mask`, obtained by
    /// standard noise analysis with effectively infinite aggressor timing
    /// windows (paper §3.2). Also the source of the **dominance interval**.
    #[must_use]
    pub fn delay_noise_upper_bound(
        &self,
        victim: NetId,
        timings: &[NetTiming],
        mask: &CouplingMask,
    ) -> f64 {
        let horizon = timings.iter().map(NetTiming::lat).fold(0.0_f64, f64::max) * 2.0 + 1_000.0;
        let widened: Vec<NetTiming> =
            timings.iter().map(|t| NetTiming::new(t.eat(), t.lat() + horizon, t.slew())).collect();
        let parts =
            envelope_calc::victim_envelopes(self.circuit, &self.config, victim, &widened, |id| {
                mask.is_enabled(id)
            });
        if parts.is_empty() {
            return 0.0;
        }
        let combined = Envelope::sum_all(parts.iter().map(|(_, e)| e));
        superposition::delay_noise(&timings[victim.index()].latest_transition(), &combined)
    }

    /// The dominance interval of `victim` (paper §3.2): from the noiseless
    /// victim `t50` to the upper-bound noisy `t50`. Envelopes only need to
    /// encapsulate each other inside this interval to dominate.
    #[must_use]
    pub fn dominance_interval(
        &self,
        victim: NetId,
        timings: &[NetTiming],
        mask: &CouplingMask,
    ) -> TimeInterval {
        let t50 = timings[victim.index()].lat();
        let ub = self.delay_noise_upper_bound(victim, timings, mask);
        TimeInterval::new(t50, t50 + ub.max(self.config.tolerance))
    }
}

/// Result of an iterative noise analysis.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    noiseless: TimingReport,
    noisy: TimingReport,
    noise: Vec<f64>,
    iterations: usize,
    converged: bool,
}

impl NoiseReport {
    /// Circuit delay including crosstalk delay noise.
    #[must_use]
    pub fn circuit_delay(&self) -> f64 {
        self.noisy.circuit_delay()
    }

    /// Circuit delay of the noiseless analysis.
    #[must_use]
    pub fn noiseless_delay(&self) -> f64 {
        self.noiseless.circuit_delay()
    }

    /// Delay noise injected at `net` (ps).
    #[must_use]
    pub fn delay_noise(&self, net: NetId) -> f64 {
        self.noise[net.index()]
    }

    /// Per-net delay noise, indexed by net.
    #[must_use]
    pub fn noise(&self) -> &[f64] {
        &self.noise
    }

    /// Final (noisy) timing report.
    #[must_use]
    pub fn noisy_timing(&self) -> &TimingReport {
        &self.noisy
    }

    /// Noiseless timing report.
    #[must_use]
    pub fn noiseless_timing(&self) -> &TimingReport {
        &self.noiseless
    }

    /// Iterations the fixpoint loop performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the loop converged below tolerance before the iteration cap.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Total delay noise attributable to crosstalk at the circuit level.
    #[must_use]
    pub fn total_delay_noise(&self) -> f64 {
        self.circuit_delay() - self.noiseless_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{generator, CellKind, CircuitBuilder, CouplingId, Library};

    fn coupled_pair() -> (Circuit, CouplingId) {
        // Two parallel buffer chains with a coupling between their outputs.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        b.output(v);
        b.output(g);
        let cc = b.coupling(v, g, 8.0).unwrap();
        (b.build().unwrap(), cc)
    }

    #[test]
    fn noise_increases_circuit_delay() {
        let (c, _) = coupled_pair();
        let report = NoiseAnalysis::new(&c, NoiseConfig::default()).run().unwrap();
        assert!(report.converged());
        assert!(report.circuit_delay() > report.noiseless_delay());
        assert!(report.total_delay_noise() > 0.0);
    }

    #[test]
    fn masking_the_coupling_removes_noise() {
        let (c, cc) = coupled_pair();
        let engine = NoiseAnalysis::new(&c, NoiseConfig::default());
        let masked = engine.run_with_mask(&CouplingMask::all(&c).without(&[cc])).unwrap();
        assert!((masked.circuit_delay() - masked.noiseless_delay()).abs() < 1e-9);
        assert_eq!(masked.noise().iter().copied().fold(0.0_f64, f64::max), 0.0);
    }

    #[test]
    fn ascending_iteration_is_monotone_and_converges() {
        let c =
            generator::generate(&generator::GeneratorConfig::new(40, 120).with_seed(11)).unwrap();
        let report = NoiseAnalysis::new(&c, NoiseConfig::default()).run().unwrap();
        assert!(report.converged(), "did not converge in {} iterations", report.iterations());
        assert!(report.noise().iter().all(|&x| x >= 0.0));
        assert!(report.circuit_delay() >= report.noiseless_delay() - 1e-9);
    }

    #[test]
    fn pessimistic_start_bounds_optimistic() {
        let c = generator::generate(&generator::GeneratorConfig::new(30, 90).with_seed(3)).unwrap();
        let optimistic = NoiseAnalysis::new(&c, NoiseConfig::default()).run().unwrap();
        let pessimistic = NoiseAnalysis::new(
            &c,
            NoiseConfig { start: StartAssumption::AllOverlap, ..NoiseConfig::default() },
        )
        .run()
        .unwrap();
        // Both seeds converge to nearby solutions (the update is only
        // approximately monotone, see run_with_mask); agreement within a
        // few percent of the total noise is the practical criterion.
        assert!(pessimistic.converged());
        assert!(optimistic.converged());
        let gap = (pessimistic.circuit_delay() - optimistic.circuit_delay()).abs();
        assert!(
            gap <= 0.05 * optimistic.circuit_delay(),
            "fixpoints too far apart: {} vs {}",
            pessimistic.circuit_delay(),
            optimistic.circuit_delay()
        );
        // Both include at least the noiseless delay.
        assert!(pessimistic.circuit_delay() >= pessimistic.noiseless_delay() - 1e-9);
    }

    #[test]
    fn upper_bound_dominates_converged_noise() {
        let (c, _) = coupled_pair();
        let engine = NoiseAnalysis::new(&c, NoiseConfig::default());
        let mask = CouplingMask::all(&c);
        let report = engine.run().unwrap();
        for net in c.net_ids() {
            let ub = engine.delay_noise_upper_bound(net, report.noisy_timing().timings(), &mask);
            assert!(
                ub + 1e-9 >= report.delay_noise(net),
                "upper bound {ub} below converged noise {} at {net}",
                report.delay_noise(net)
            );
        }
    }

    #[test]
    fn dominance_interval_starts_at_victim_t50() {
        let (c, _) = coupled_pair();
        let engine = NoiseAnalysis::new(&c, NoiseConfig::default());
        let mask = CouplingMask::all(&c);
        let report = engine.run().unwrap();
        let v = c.net_by_name("v").unwrap();
        let iv = engine.dominance_interval(v, report.noisy_timing().timings(), &mask);
        assert!((iv.lo() - report.noisy_timing().timing(v).lat()).abs() < 1e-9);
        assert!(iv.width() > 0.0);
    }

    #[test]
    fn isolated_nets_have_zero_noise() {
        // No couplings at all.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "y", &[a]).unwrap();
        b.output(y);
        let c = b.build().unwrap();
        let report = NoiseAnalysis::new(&c, NoiseConfig::default()).run().unwrap();
        assert_eq!(report.total_delay_noise(), 0.0);
        assert_eq!(report.iterations(), 1);
        assert!(report.converged());
    }
}
