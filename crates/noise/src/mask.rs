//! Enabling/disabling individual coupling capacitors.
//!
//! Both flavors of top-k analysis re-run noise analysis under restricted
//! coupling sets: the *addition* set enables only a candidate subset, the
//! *elimination* set disables one. A [`CouplingMask`] captures that subset
//! selection without mutating the circuit.

use dna_netlist::{Circuit, CouplingId};

/// A subset of a circuit's coupling capacitors.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind, CouplingId};
/// use dna_noise::CouplingMask;
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let x = b.input("x");
/// let y = b.gate(CellKind::And2, "u", &[a, x])?;
/// b.output(y);
/// let c1 = b.coupling(a, y, 2.0)?;
/// let c2 = b.coupling(x, y, 3.0)?;
/// let circuit = b.build()?;
///
/// let mask = CouplingMask::all(&circuit).without(&[c1]);
/// assert!(!mask.is_enabled(c1));
/// assert!(mask.is_enabled(c2));
/// assert_eq!(mask.enabled_count(), 1);
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMask {
    enabled: Vec<bool>,
}

impl CouplingMask {
    /// Mask with every coupling enabled (conventional noise analysis).
    #[must_use]
    pub fn all(circuit: &Circuit) -> Self {
        Self { enabled: vec![true; circuit.num_couplings()] }
    }

    /// Mask with every coupling disabled (noiseless timing).
    #[must_use]
    pub fn none(circuit: &Circuit) -> Self {
        Self { enabled: vec![false; circuit.num_couplings()] }
    }

    /// This mask with the given couplings additionally disabled.
    #[must_use]
    pub fn without(mut self, ids: &[CouplingId]) -> Self {
        for &id in ids {
            self.enabled[id.index()] = false;
        }
        self
    }

    /// This mask with the given couplings additionally enabled.
    #[must_use]
    pub fn with(mut self, ids: &[CouplingId]) -> Self {
        for &id in ids {
            self.enabled[id.index()] = true;
        }
        self
    }

    /// Whether `id` participates in the analysis.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the circuit the mask was built
    /// for.
    #[must_use]
    pub fn is_enabled(&self, id: CouplingId) -> bool {
        self.enabled[id.index()]
    }

    /// Number of enabled couplings.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Ids of all enabled couplings.
    #[must_use]
    pub fn enabled_ids(&self) -> Vec<CouplingId> {
        (0..self.enabled.len() as u32)
            .map(CouplingId::new)
            .filter(|&id| self.enabled[id.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    fn two_coupling_circuit() -> (Circuit, CouplingId, CouplingId) {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let y = b.gate(CellKind::And2, "u", &[a, x]).unwrap();
        b.output(y);
        let c1 = b.coupling(a, y, 2.0).unwrap();
        let c2 = b.coupling(x, y, 3.0).unwrap();
        (b.build().unwrap(), c1, c2)
    }

    #[test]
    fn all_and_none() {
        let (c, c1, c2) = two_coupling_circuit();
        let all = CouplingMask::all(&c);
        assert!(all.is_enabled(c1) && all.is_enabled(c2));
        assert_eq!(all.enabled_count(), 2);
        let none = CouplingMask::none(&c);
        assert!(!none.is_enabled(c1) && !none.is_enabled(c2));
        assert_eq!(none.enabled_count(), 0);
    }

    #[test]
    fn with_and_without_compose() {
        let (c, c1, c2) = two_coupling_circuit();
        let m = CouplingMask::none(&c).with(&[c1, c2]).without(&[c1]);
        assert!(!m.is_enabled(c1));
        assert!(m.is_enabled(c2));
        assert_eq!(m.enabled_ids(), vec![c2]);
    }
}
