//! Electrical models mapping a coupling capacitor to a noise pulse.

use dna_waveform::NoisePulse;

/// Everything the electrical model needs to know about one
/// aggressor→victim coupling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingContext {
    /// Coupling capacitance in fF.
    pub coupling_cap: f64,
    /// Grounded capacitance on the victim net (everything except the
    /// coupling cap itself) in fF.
    pub victim_ground_cap: f64,
    /// Holding resistance of the victim driver in kΩ.
    pub victim_resistance: f64,
    /// Full-swing slew of the aggressor transition in ps.
    pub aggressor_slew: f64,
}

/// Computes the noise pulse one switching aggressor couples onto a quiet
/// victim.
///
/// Returned pulse times are relative to the aggressor's 50 %-Vdd switching
/// instant; the analysis layer shifts the pulse to the aggressor's timing
/// window (building the trapezoidal envelope of paper Fig. 2).
pub trait CouplingModel {
    /// The coupled noise pulse for the given context.
    fn noise_pulse(&self, ctx: &CouplingContext) -> NoisePulse;
}

/// Charge-sharing coupling model (the crate default).
///
/// A classic linear bound on capacitive crosstalk:
///
/// * **peak** `= min(Cc / (Cc + Cg), R_v · Cc / slew_a)` — the charge-
///   sharing limit for slow victims, throttled by the victim driver's
///   ability to fight fast aggressors,
/// * **width** `= slew_a + 2 · R_v · (Cc + Cg)` — the aggressor injects for
///   its slew and the victim RC discharges the bump afterwards,
/// * the pulse starts when the aggressor starts switching and peaks when
///   the aggressor finishes.
///
/// This preserves every behaviour the top-k algorithm depends on: peaks
/// grow with `Cc` and with weak victim drivers; widths grow with slow
/// aggressors and large victim RC. Absolute accuracy is explicitly traded
/// for runtime, as in the paper's linear framework (§2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeSharingModel {
    /// Global multiplier on pulse peaks (1.0 = nominal). Useful for
    /// pessimism sweeps.
    pub peak_factor: f64,
}

impl ChargeSharingModel {
    /// The nominal model.
    #[must_use]
    pub fn new() -> Self {
        Self { peak_factor: 1.0 }
    }
}

impl Default for ChargeSharingModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CouplingModel for ChargeSharingModel {
    fn noise_pulse(&self, ctx: &CouplingContext) -> NoisePulse {
        let cc = ctx.coupling_cap.max(0.0);
        let cg = ctx.victim_ground_cap.max(0.0);
        let rv = ctx.victim_resistance.max(1e-6);
        let slew = ctx.aggressor_slew.max(1e-6);

        let charge_limit = cc / (cc + cg).max(1e-9);
        let drive_limit = rv * cc / slew;
        let peak = (charge_limit.min(drive_limit) * self.peak_factor).min(0.95);

        let start = -slew / 2.0;
        let peak_time = slew / 2.0;
        let end = peak_time + 2.0 * rv * (cc + cg);
        NoisePulse::new(start, peak_time, peak, end.max(peak_time + 1e-6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CouplingContext {
        CouplingContext {
            coupling_cap: 5.0,
            victim_ground_cap: 15.0,
            victim_resistance: 2.0,
            aggressor_slew: 20.0,
        }
    }

    #[test]
    fn peak_grows_with_coupling_cap() {
        let m = ChargeSharingModel::new();
        let small = m.noise_pulse(&CouplingContext { coupling_cap: 2.0, ..ctx() });
        let big = m.noise_pulse(&CouplingContext { coupling_cap: 8.0, ..ctx() });
        assert!(big.peak() > small.peak());
    }

    #[test]
    fn weak_victim_driver_sees_more_noise() {
        let m = ChargeSharingModel::new();
        let strong = m.noise_pulse(&CouplingContext { victim_resistance: 0.2, ..ctx() });
        let weak = m.noise_pulse(&CouplingContext { victim_resistance: 5.0, ..ctx() });
        assert!(weak.peak() >= strong.peak());
    }

    #[test]
    fn slow_aggressor_widens_pulse() {
        let m = ChargeSharingModel::new();
        let fast = m.noise_pulse(&CouplingContext { aggressor_slew: 10.0, ..ctx() });
        let slow = m.noise_pulse(&CouplingContext { aggressor_slew: 50.0, ..ctx() });
        assert!(slow.width() > fast.width());
    }

    #[test]
    fn peak_bounded_by_charge_sharing_and_rail() {
        let m = ChargeSharingModel::new();
        // Huge coupling relative to ground cap, slow aggressor: the charge
        // sharing limit applies and stays under the 0.95 clamp.
        let p = m.noise_pulse(&CouplingContext {
            coupling_cap: 100.0,
            victim_ground_cap: 1.0,
            victim_resistance: 10.0,
            aggressor_slew: 5.0,
        });
        assert!(p.peak() <= 0.95);
        assert!(p.peak() >= 0.9); // 100/101 clamped at 0.95
    }

    #[test]
    fn pulse_times_bracket_aggressor_transition() {
        let m = ChargeSharingModel::new();
        let p = m.noise_pulse(&ctx());
        assert!((p.start() + ctx().aggressor_slew / 2.0).abs() < 1e-12);
        assert!((p.peak_time() - ctx().aggressor_slew / 2.0).abs() < 1e-12);
        assert!(p.end() > p.peak_time());
    }

    #[test]
    fn peak_factor_scales() {
        let nominal = ChargeSharingModel::new().noise_pulse(&ctx());
        let derated = ChargeSharingModel { peak_factor: 0.5 }.noise_pulse(&ctx());
        assert!((derated.peak() - 0.5 * nominal.peak()).abs() < 1e-12);
    }
}
