//! One fixture per rule: build a valid artifact, corrupt it through the
//! raw-parts escape hatches, and check the verifier names the violation.

use dna_lint::{
    lint_circuit, lint_config, lint_dirty_closure, lint_dirty_closure_certified, lint_envelope,
    lint_ilist, lint_pwl, lint_timing, Rule, Severity,
};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::{CellKind, CircuitBuilder, CouplingId, GateId, Library, NetId, NetSource};
use dna_noise::CouplingMask;
use dna_sta::NetTiming;
use dna_topk::dominance::DominanceDirection;
use dna_topk::{
    Candidate, CleanCertificate, CorridorBound, CouplingSet, MaskDelta, Mode, TopKAnalysis,
    TopKConfig, WhatIfSession,
};
use dna_waveform::{Envelope, NoisePulse, Pwl, TimeInterval};

/// A small valid circuit: two inverters in series plus a coupled side net,
/// enough structure for every corruption below.
fn valid() -> dna_netlist::Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let s = b.input("s");
    let m = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
    let y = b.gate(CellKind::Inv, "u2", &[m]).unwrap();
    let t = b.gate(CellKind::Buf, "u3", &[s]).unwrap();
    b.output(y);
    b.output(t);
    b.coupling(m, t, 2.5).unwrap();
    b.build().unwrap()
}

/// Applies `corrupt` to the raw parts of the valid circuit and lints the
/// reassembled wreck.
fn lint_corrupted(corrupt: impl FnOnce(&mut dna_netlist::CircuitParts)) -> dna_lint::Diagnostics {
    let mut parts = valid().into_parts();
    corrupt(&mut parts);
    lint_circuit(&dna_netlist::Circuit::from_parts_unchecked(parts))
}

#[test]
fn valid_circuit_is_clean() {
    let diags = lint_circuit(&valid());
    assert!(diags.is_empty(), "{}", diags.render_text());
}

#[test]
fn l001_gate_input_unresolved() {
    let diags = lint_corrupted(|p| p.gates[2].inputs[0] = NetId::new(99));
    assert!(diags.has(Rule::GateInputUnresolved), "{}", diags.render_text());
}

#[test]
fn l002_gate_output_unresolved() {
    let diags = lint_corrupted(|p| p.gates[2].output = NetId::new(99));
    assert!(diags.has(Rule::GateOutputUnresolved), "{}", diags.render_text());
}

#[test]
fn l003_dangling_driver() {
    let diags = lint_corrupted(|p| {
        for net in &mut p.nets {
            if net.source == NetSource::Gate(GateId::new(2)) {
                net.source = NetSource::Gate(GateId::new(77));
            }
        }
    });
    assert!(diags.has(Rule::DanglingDriver), "{}", diags.render_text());
}

#[test]
fn l004_driver_output_mismatch() {
    let diags = lint_corrupted(|p| {
        // Point u3's output net at u1 instead; u1 drives a different net.
        for net in &mut p.nets {
            if net.source == NetSource::Gate(GateId::new(2)) {
                net.source = NetSource::Gate(GateId::new(0));
            }
        }
    });
    assert!(diags.has(Rule::DriverOutputMismatch), "{}", diags.render_text());
}

#[test]
fn l005_load_list_mismatch_both_directions() {
    // A net lists a load gate with no matching input pin…
    let diags = lint_corrupted(|p| {
        let extra = GateId::new(2); // u3 reads `s`, not this net
        for net in &mut p.nets {
            if net.name == "a" {
                net.loads.push(extra);
            }
        }
    });
    assert!(diags.has(Rule::LoadListMismatch), "{}", diags.render_text());

    // …and the reverse: a gate reads a net whose load list omits it.
    let diags = lint_corrupted(|p| {
        for net in &mut p.nets {
            if net.name == "a" {
                net.loads.clear();
            }
        }
    });
    assert!(diags.has(Rule::LoadListMismatch), "{}", diags.render_text());
}

#[test]
fn l006_coupling_unresolved() {
    let diags = lint_corrupted(|p| p.couplings[0].a = NetId::new(42));
    assert!(diags.has(Rule::CouplingUnresolved), "{}", diags.render_text());

    // Self-coupling is equally meaningless.
    let diags = lint_corrupted(|p| p.couplings[0].a = p.couplings[0].b);
    assert!(diags.has(Rule::CouplingUnresolved), "{}", diags.render_text());
}

#[test]
fn l007_coupling_index_corrupt() {
    // The per-net index omits an incident coupling.
    let diags = lint_corrupted(|p| {
        for list in &mut p.couplings_by_net {
            list.clear();
        }
    });
    assert!(diags.has(Rule::CouplingIndexCorrupt), "{}", diags.render_text());

    // The index lists a coupling on a net it does not touch.
    let diags = lint_corrupted(|p| p.couplings_by_net[0].push(CouplingId::new(0)));
    assert!(diags.has(Rule::CouplingIndexCorrupt), "{}", diags.render_text());
}

#[test]
fn l008_output_list_corrupt() {
    let diags = lint_corrupted(|p| {
        let first = p.outputs[0];
        p.nets[first.index()].is_output = false;
    });
    assert!(diags.has(Rule::OutputListCorrupt), "{}", diags.render_text());

    let diags = lint_corrupted(|p| p.outputs.clear());
    assert!(diags.has(Rule::OutputListCorrupt), "{}", diags.render_text());
}

#[test]
fn l009_floating_net_is_a_warning() {
    let diags = lint_corrupted(|p| {
        // Detach u1's output from its only load and from the output list:
        // a driven net that goes nowhere.
        let m = p.gates[0].output;
        p.nets[m.index()].loads.clear();
        p.gates[1].inputs.clear();
    });
    assert!(diags.has(Rule::FloatingNet), "{}", diags.render_text());
    let floating = diags.iter().find(|d| d.rule == Rule::FloatingNet).expect("reported above");
    assert_eq!(floating.severity, Severity::Warning);
    assert!(!diags.has_errors(), "{}", diags.render_text());
}

#[test]
fn l010_topo_not_permutation() {
    let diags = lint_corrupted(|p| {
        let first = p.gate_topo[0];
        p.gate_topo.push(first);
    });
    assert!(diags.has(Rule::TopoNotPermutation), "{}", diags.render_text());
}

#[test]
fn l011_topo_order_violation() {
    let diags = lint_corrupted(|p| {
        // u2 consumes u1's output; listing u2 first breaks the order.
        let pos1 = p.gate_topo.iter().position(|g| g.index() == 0).unwrap();
        let pos2 = p.gate_topo.iter().position(|g| g.index() == 1).unwrap();
        p.gate_topo.swap(pos1, pos2);
    });
    assert!(diags.has(Rule::TopoOrderViolation), "{}", diags.render_text());
}

#[test]
fn l012_net_topo_corrupt() {
    let diags = lint_corrupted(|p| p.net_topo.reverse());
    assert!(diags.has(Rule::NetTopoCorrupt), "{}", diags.render_text());
}

#[test]
fn l013_cycle_diagnostic_names_the_loop() {
    let diags = lint_corrupted(|p| {
        // Feed u2's output back into u1's input: u1 -> u2 -> u1.
        let y = p.gates[1].output;
        let a = p.gates[0].inputs[0];
        p.gates[0].inputs[0] = y;
        p.nets[y.index()].loads.push(GateId::new(0));
        p.nets[a.index()].loads.clear();
    });
    assert!(diags.has(Rule::CombinationalCycle), "{}", diags.render_text());
    let cycle = diags.iter().find(|d| d.rule == Rule::CombinationalCycle).expect("reported above");
    // The message walks the whole loop, naming every member.
    assert!(cycle.message.contains("`u1`"), "{}", cycle.message);
    assert!(cycle.message.contains("`u2`"), "{}", cycle.message);
    assert!(cycle.message.contains("->"), "{}", cycle.message);
}

#[test]
fn l020_l021_pwl_rules() {
    let diags = lint_pwl(&Pwl::from_points_unchecked(vec![(0.0, 0.0), (1.0, f64::NAN)]));
    assert!(diags.has(Rule::PwlNonFinite), "{}", diags.render_text());

    let diags = lint_pwl(&Pwl::from_points_unchecked(vec![(0.0, 0.0), (0.0, 1.0)]));
    assert!(diags.has(Rule::PwlNonMonotone), "{}", diags.render_text());

    let diags = lint_pwl(&Pwl::new(vec![(0.0, 0.0), (1.0, 0.5)]).unwrap());
    assert!(diags.is_empty(), "{}", diags.render_text());
}

#[test]
fn l022_l024_timing_rules() {
    let circuit = valid();
    let good: Vec<NetTiming> =
        (0..circuit.num_nets()).map(|_| NetTiming::new(0.0, 10.0, 20.0)).collect();
    assert!(lint_timing(&circuit, &good).is_empty());

    let mut inverted = good.clone();
    inverted[0] = NetTiming::from_raw_unchecked(10.0, 0.0, 20.0);
    let diags = lint_timing(&circuit, &inverted);
    assert!(diags.has(Rule::WindowInverted), "{}", diags.render_text());

    let mut nonfinite = good.clone();
    nonfinite[1] = NetTiming::from_raw_unchecked(0.0, f64::INFINITY, 20.0);
    assert!(lint_timing(&circuit, &nonfinite).has(Rule::TimingNonFinite));

    let mut bad_slew = good;
    bad_slew[2] = NetTiming::from_raw_unchecked(0.0, 10.0, -1.0);
    assert!(lint_timing(&circuit, &bad_slew).has(Rule::TimingNonFinite));

    // A short table cannot be indexed by net id.
    assert!(lint_timing(&circuit, &[]).has(Rule::TimingNonFinite));
}

#[test]
fn l023_envelope_malformed() {
    // Negative values.
    let diags = lint_envelope(&Envelope::from_pwl_unchecked(
        Pwl::new(vec![(0.0, 0.0), (1.0, -0.5), (2.0, 0.0)]).unwrap(),
    ));
    assert!(diags.has(Rule::EnvelopeMalformed), "{}", diags.render_text());

    // Non-zero trailing tail.
    let diags = lint_envelope(&Envelope::from_pwl_unchecked(
        Pwl::new(vec![(0.0, 0.0), (1.0, 0.5)]).unwrap(),
    ));
    assert!(diags.has(Rule::EnvelopeMalformed), "{}", diags.render_text());

    let good = Envelope::from_pulse(&NoisePulse::symmetric(5.0, 0.3, 4.0));
    assert!(lint_envelope(&good).is_empty());
}

#[test]
fn l025_envelope_cache_stale() {
    let honest = Envelope::from_pulse(&NoisePulse::symmetric(5.0, 0.3, 4.0));
    assert!(lint_envelope(&honest).is_empty());

    // A lying peak: the dominance prefilter would wrongly reject pairs.
    let stale_peak = Envelope::with_cached_bounds_unchecked(
        honest.as_pwl().clone(),
        honest.peak() * 2.0,
        honest.peak_time(),
        honest.support_lo(),
        honest.support_hi(),
    );
    let diags = lint_envelope(&stale_peak);
    assert!(diags.has(Rule::EnvelopeCacheStale), "{}", diags.render_text());

    // A lying support interval.
    let stale_support = Envelope::with_cached_bounds_unchecked(
        honest.as_pwl().clone(),
        honest.peak(),
        honest.peak_time(),
        honest.support_lo() + 100.0,
        honest.support_hi() + 100.0,
    );
    let diags = lint_envelope(&stale_support);
    assert!(diags.has(Rule::EnvelopeCacheStale), "{}", diags.render_text());

    // Honest bounds rebuilt through the unchecked constructor stay clean.
    let copied = Envelope::with_cached_bounds_unchecked(
        honest.as_pwl().clone(),
        honest.peak(),
        honest.peak_time(),
        honest.support_lo(),
        honest.support_hi(),
    );
    assert!(lint_envelope(&copied).is_empty());
}

fn candidate(ids: &[u32], peak: f64, width: f64, dn: f64) -> Candidate {
    let set: CouplingSet = ids.iter().map(|&i| CouplingId::new(i)).collect();
    let env = Envelope::from_window(&NoisePulse::symmetric(0.0, peak, 4.0), 0.0, width);
    Candidate::new(set, env, dn)
}

#[test]
fn l030_dominated_candidate() {
    let iv = TimeInterval::new(-5.0, 40.0);
    // Ranked best-first, and the first envelope encapsulates the second.
    let list = vec![candidate(&[1], 0.4, 10.0, 3.0), candidate(&[2], 0.2, 5.0, 1.0)];
    let diags = lint_ilist(&list, iv, DominanceDirection::BiggerIsBetter, None);
    assert!(diags.has(Rule::DominatedCandidate), "{}", diags.render_text());

    // Disjoint supports: mutually non-dominated, clean.
    let a = Candidate::new(
        CouplingSet::singleton(CouplingId::new(1)),
        Envelope::from_pulse(&NoisePulse::symmetric(0.0, 0.3, 4.0)),
        1.0,
    );
    let b = Candidate::new(
        CouplingSet::singleton(CouplingId::new(2)),
        Envelope::from_pulse(&NoisePulse::symmetric(20.0, 0.3, 4.0)),
        1.0,
    );
    let diags = lint_ilist(&[a, b], iv, DominanceDirection::BiggerIsBetter, None);
    assert!(diags.is_empty(), "{}", diags.render_text());
}

#[test]
fn l031_duplicate_candidate_set() {
    let iv = TimeInterval::new(-5.0, 40.0);
    let list = vec![candidate(&[1, 2], 0.3, 6.0, 2.0), candidate(&[2, 1], 0.3, 6.0, 2.0)];
    let diags = lint_ilist(&list, iv, DominanceDirection::BiggerIsBetter, None);
    assert!(diags.has(Rule::DuplicateCandidateSet), "{}", diags.render_text());
}

#[test]
fn l032_over_capacity() {
    let iv = TimeInterval::new(-5.0, 200.0);
    let list: Vec<Candidate> = (0..3)
        .map(|i| {
            Candidate::new(
                CouplingSet::singleton(CouplingId::new(i)),
                Envelope::from_pulse(&NoisePulse::symmetric(f64::from(i) * 50.0, 0.3, 4.0)),
                f64::from(i),
            )
        })
        .collect();
    let diags = lint_ilist(&list, iv, DominanceDirection::BiggerIsBetter, Some(2));
    assert!(diags.has(Rule::OverCapacity), "{}", diags.render_text());
    assert!(
        !lint_ilist(&list, iv, DominanceDirection::BiggerIsBetter, Some(3)).has(Rule::OverCapacity)
    );
}

#[test]
fn l033_bad_delay_noise() {
    let iv = TimeInterval::new(-5.0, 40.0);
    let c = candidate(&[1], 0.3, 6.0, 1.0);
    let c = Candidate::from_raw_unchecked(c.set().clone(), c.envelope().clone(), f64::NAN);
    let diags = lint_ilist(&[c], iv, DominanceDirection::BiggerIsBetter, None);
    assert!(diags.has(Rule::BadDelayNoise), "{}", diags.render_text());
}

#[test]
fn l035_session_cache_incoherent() {
    // valid(): coupling 0 joins m (u1's output, loading u2 -> y) and t.
    let circuit = valid();
    let flipped = CouplingId::new(0);
    let before = CouplingMask::all(&circuit);
    let after = before.clone().without(&[flipped]);
    let c = circuit.coupling(flipped);
    let seeds = [c.a(), c.b()];

    // The engine's own closure of the flipped endpoints is sound.
    let dirty = circuit.dirty_closure(&seeds);
    let diags = lint_dirty_closure(&circuit, &before, &after, &dirty);
    assert!(diags.is_empty(), "{}", diags.render_text());

    // Over-approximation is fine: everything dirty is still coherent.
    let all = vec![true; circuit.num_nets()];
    assert!(lint_dirty_closure(&circuit, &before, &after, &all).is_empty());

    // A truncated vector cannot cover the circuit.
    let diags = lint_dirty_closure(&circuit, &before, &after, &dirty[..2]);
    assert!(diags.has(Rule::SessionCacheIncoherent), "{}", diags.render_text());

    // An all-clean vector misses the flipped coupling's endpoints.
    let none = vec![false; circuit.num_nets()];
    let diags = lint_dirty_closure(&circuit, &before, &after, &none);
    assert!(diags.has(Rule::SessionCacheIncoherent), "{}", diags.render_text());

    // Seeds without their fanout: m is dirty but u2's output y is not.
    let mut seeds_only = vec![false; circuit.num_nets()];
    for s in seeds {
        seeds_only[s.index()] = true;
    }
    let diags = lint_dirty_closure(&circuit, &before, &after, &seeds_only);
    assert!(diags.has(Rule::SessionCacheIncoherent), "{}", diags.render_text());

    // No delta, no dirt: a clean vector is coherent when masks agree.
    assert!(lint_dirty_closure(&circuit, &before, &before, &none).is_empty());
}

#[test]
fn l050_l051_l052_certified_closure() {
    let circuit = generate(&GeneratorConfig::new(30, 40).with_seed(3)).expect("generator succeeds");
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
    let before = session.mask().clone();
    let outcome = session.apply(&MaskDelta::remove(&[CouplingId::new(0)])).unwrap();
    let after = session.mask().clone();
    let witness = engine.derive_clean_witness(Mode::Elimination, &before, &after).unwrap();

    // The session's own damped state verifies clean end to end.
    let diags = lint_dirty_closure_certified(
        &circuit,
        &before,
        &after,
        outcome.dirty_flags(),
        outcome.certificates(),
        &witness,
    );
    assert!(diags.is_empty(), "{}", diags.render_text());
    assert_eq!(outcome.certificates().len(), outcome.proven_clean_victims());

    // L050: claim a re-swept victim clean with a fabricated certificate.
    // The re-derived witness contradicts the claim, and no re-derived
    // counterpart certificate exists (L051).
    let dirty_vi = outcome.dirty_flags().iter().position(|&d| d).expect("something re-swept");
    let mut forged = outcome.certificates().to_vec();
    forged.push(CleanCertificate::new(NetId::new(dirty_vi as u32), 7, 7, Vec::new()));
    let mut damped = outcome.dirty_flags().to_vec();
    damped[dirty_vi] = false;
    let diags = lint_dirty_closure_certified(&circuit, &before, &after, &damped, &forged, &witness);
    assert!(diags.has(Rule::CleanCertificateInvalid), "{}", diags.render_text());
    assert!(diags.has(Rule::CorridorCacheStale), "{}", diags.render_text());

    // L050 + L051: a genuine certificate whose stored digest drifted.
    if let Some(first) = outcome.certificates().first() {
        let mut tampered = outcome.certificates().to_vec();
        tampered[0] = CleanCertificate::new(
            first.victim(),
            first.digest_old() ^ 1,
            first.digest_new(),
            first.edges().to_vec(),
        );
        let diags = lint_dirty_closure_certified(
            &circuit,
            &before,
            &after,
            outcome.dirty_flags(),
            &tampered,
            &witness,
        );
        assert!(diags.has(Rule::CleanCertificateInvalid), "{}", diags.render_text());
        assert!(diags.has(Rule::CorridorCacheStale), "{}", diags.render_text());
    }

    // L052: a refuting edge whose zero-shift contribution exceeds the
    // claimed corridor bound — the bound cannot be monotone in the shift
    // freedom, so the certificate's inequality proves nothing.
    let clean_vi = outcome.dirty_flags().iter().position(|&d| !d).expect("something cached");
    let bad_edge = CorridorBound::new(
        CouplingId::new(0),
        NetId::new(0),
        0.0,
        0.1,
        0.5,
        TimeInterval::new(0.0, 1.0),
        TimeInterval::new(0.0, 1.0),
    );
    let forged = vec![CleanCertificate::new(NetId::new(clean_vi as u32), 0, 0, vec![bad_edge])];
    let diags = lint_dirty_closure_certified(
        &circuit,
        &before,
        &after,
        outcome.dirty_flags(),
        &forged,
        &witness,
    );
    assert!(diags.has(Rule::BoundNotMonotone), "{}", diags.render_text());

    // Extended L035: dropping a certificate leaves its victim neither
    // re-swept nor certified — a stale serve with no proof.
    if !outcome.certificates().is_empty() {
        let mut missing = outcome.certificates().to_vec();
        missing.remove(0);
        let diags = lint_dirty_closure_certified(
            &circuit,
            &before,
            &after,
            outcome.dirty_flags(),
            &missing,
            &witness,
        );
        assert!(diags.has(Rule::SessionCacheIncoherent), "{}", diags.render_text());
    }
}

#[test]
fn l042_bad_config() {
    assert!(lint_config(&TopKConfig::default()).is_empty());

    let mut c = TopKConfig::default();
    c.noise.tolerance = -1.0;
    assert!(lint_config(&c).has(Rule::BadConfig));

    let mut c = TopKConfig::default();
    c.noise.max_iterations = 0;
    assert!(lint_config(&c).has(Rule::BadConfig));

    let c = TopKConfig { max_list_width: Some(0), ..TopKConfig::default() };
    assert!(lint_config(&c).has(Rule::BadConfig));

    let c = TopKConfig { validation_pool: 0, ..TopKConfig::default() };
    assert!(lint_config(&c).has(Rule::BadConfig));
}

#[test]
fn l040_l041_library_and_capacitance() {
    let diags = lint_corrupted(|p| {
        p.nets[0].wire_cap = -3.0;
        p.couplings[0].cap = f64::NAN;
    });
    assert!(diags.has(Rule::BadCapacitance), "{}", diags.render_text());
    assert_eq!(
        diags.iter().filter(|d| d.rule == Rule::BadCapacitance).count(),
        2,
        "{}",
        diags.render_text()
    );
    // L040 needs a corrupted library; Cell fields are public, so build one.
    let mut cells: Vec<_> = Library::cmos013().cells().cloned().collect();
    cells[0].drive_resistance = 0.0;
    let mut parts = valid().into_parts();
    parts.library = Library::new("broken", cells);
    let diags = lint_circuit(&dna_netlist::Circuit::from_parts_unchecked(parts));
    assert!(diags.has(Rule::CellNotMonotone), "{}", diags.render_text());
}
