//! Property tests: randomly generated circuits always satisfy the
//! referential-integrity and topology invariants the verifier re-derives.

use dna_lint::lint_circuit;
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::Circuit;
use proptest::prelude::*;

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (0u64..500, 5usize..40, 0usize..60).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator can only produce circuits through the validated
    /// builder, so every one must pass the full circuit verifier — any
    /// diagnostic here means a lint rule or a builder invariant is wrong.
    #[test]
    fn generated_circuits_lint_clean(circuit in circuit_strategy()) {
        let diags = lint_circuit(&circuit);
        prop_assert!(diags.is_empty(), "{}", diags.render_text());
    }

    /// Raw-parts round trip is the identity, and the reassembled circuit
    /// still lints clean.
    #[test]
    fn parts_round_trip_stays_clean(circuit in circuit_strategy()) {
        let stats = circuit.stats();
        let round = Circuit::from_parts_unchecked(circuit.into_parts());
        prop_assert_eq!(round.stats(), stats);
        let diags = lint_circuit(&round);
        prop_assert!(diags.is_empty(), "{}", diags.render_text());
    }
}
