//! Every artifact the toolkit itself produces must lint clean: the
//! verifier checks invariants the validated constructors already enforce,
//! so a diagnostic on first-party output is a bug in one or the other.

use dna_lint::{lint_circuit, lint_config, lint_result, lint_timing};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::{format, suite};
use dna_sta::{LinearDelayModel, StaConfig, TimingReport};
use dna_topk::{CouplingSet, TopKAnalysis, TopKConfig};

#[test]
fn benchmark_suite_lints_clean() {
    for (spec, circuit) in suite::full_suite(7).expect("suite generates") {
        let diags = lint_circuit(&circuit);
        assert!(diags.is_empty(), "{}:\n{}", spec.name, diags.render_text());

        let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
            .expect("sta runs");
        let diags = lint_timing(&circuit, timing.timings());
        assert!(diags.is_empty(), "{} timing:\n{}", spec.name, diags.render_text());
    }
}

#[test]
fn generated_circuits_survive_format_round_trip() {
    for seed in [0, 1, 17] {
        let circuit =
            generate(&GeneratorConfig::new(40, 60).with_seed(seed)).expect("generator succeeds");
        let reparsed = format::parse(&format::write(&circuit)).expect("round trip parses");
        let diags = lint_circuit(&reparsed);
        assert!(diags.is_empty(), "seed {seed}:\n{}", diags.render_text());
    }
}

#[test]
fn known_bad_corpus_warns_but_has_no_errors() {
    let text = include_str!("corpus/floating.ckt");
    let circuit = format::parse(text).expect("corpus parses");
    let diags = lint_circuit(&circuit);
    assert!(diags.has(dna_lint::Rule::FloatingNet), "{}", diags.render_text());
    assert!(!diags.has_errors(), "{}", diags.render_text());
}

#[test]
fn default_config_lints_clean() {
    assert!(lint_config(&TopKConfig::default()).is_empty());
    assert!(lint_config(&TopKConfig::exact()).is_empty());
}

#[test]
fn engine_results_lint_clean() {
    let circuit = generate(&GeneratorConfig::new(30, 40).with_seed(3)).expect("generator succeeds");
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    for k in [1, 3] {
        let result = engine.addition_set(k).expect("engine runs");
        let diags = lint_result(&circuit, &result, &CouplingSet::new());
        assert!(diags.is_empty(), "k = {k}:\n{}", diags.render_text());
    }
}

#[test]
fn l034_false_aggressor_leaking_into_a_result_is_reported() {
    let circuit = generate(&GeneratorConfig::new(30, 40).with_seed(3)).expect("generator succeeds");
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.addition_set(2).expect("engine runs");
    // Declare the winning set itself excluded: every member is now a false
    // aggressor that leaked into the answer.
    let diags = lint_result(&circuit, &result, result.set());
    assert!(diags.has(dna_lint::Rule::FalseAggressorInSet), "{}", diags.render_text());
    assert_eq!(
        diags.iter().filter(|d| d.rule == dna_lint::Rule::FalseAggressorInSet).count(),
        result.set().len()
    );
}
