//! Waveform passes: piecewise-linear curves, noise envelopes and timing
//! windows.

use dna_netlist::Circuit;
use dna_sta::NetTiming;
use dna_waveform::{Envelope, Pwl, PwlError};

use crate::{Diagnostics, Location, Rule};

/// Checks one piecewise-linear curve (`L020`, `L021`).
///
/// A well-formed [`Pwl`] is non-empty, has only finite coordinates and has
/// strictly increasing breakpoint times — exactly what [`Pwl::new`]
/// enforces, re-audited here for curves built through the unchecked
/// constructor or deserialized from external data.
#[must_use]
pub fn lint_pwl(curve: &Pwl) -> Diagnostics {
    let mut diags = Diagnostics::new();
    match curve.is_well_formed() {
        Ok(()) => {}
        Err(PwlError::Empty) => {
            diags.report(Rule::PwlNonFinite, Location::Global, "curve has no breakpoints");
        }
        Err(PwlError::NonFinite(i)) => {
            let (t, v) = curve.points()[i];
            diags.report(
                Rule::PwlNonFinite,
                Location::Curve { index: i },
                format!("non-finite coordinate ({t}, {v})"),
            );
        }
        Err(PwlError::NonIncreasing(i)) => {
            diags.report(
                Rule::PwlNonMonotone,
                Location::Curve { index: i },
                format!(
                    "breakpoint time {} does not increase past {}",
                    curve.points()[i].0,
                    curve.points()[i - 1].0
                ),
            );
        }
    }
    diags
}

/// Tolerance for "zero" envelope tails and "non-negative" values. Matches
/// the tail tolerance [`Envelope::from_curve`] accepts before clamping.
const ENVELOPE_TOL: f64 = 1e-6;

/// Checks one noise envelope (`L020`, `L021`, `L023`, `L025`).
///
/// On top of the underlying curve being well-formed, an [`Envelope`] must
/// be non-negative everywhere and decay to zero at both ends of its
/// support — the trapezoid model of the paper's §3 bounds every glitch by
/// a pulse that starts and ends quiet. The cached peak/support bounds
/// (the dominance prefilter's O(1) inputs) must also agree with the curve
/// — a stale cache silently corrupts pruning decisions.
#[must_use]
pub fn lint_envelope(envelope: &Envelope) -> Diagnostics {
    let mut diags = lint_pwl(envelope.as_pwl());
    if diags.has_errors() {
        // Value checks on a structurally broken curve would double-report.
        return diags;
    }
    if !envelope.cache_is_consistent() {
        diags.report(
            Rule::EnvelopeCacheStale,
            Location::Global,
            format!(
                "cached bounds (peak {} at t = {}, support [{}, {}]) disagree with the curve \
                 (max value {})",
                envelope.peak(),
                envelope.peak_time(),
                envelope.support_lo(),
                envelope.support_hi(),
                envelope.as_pwl().max_value()
            ),
        );
    }
    let points = envelope.as_pwl().points();
    for (i, (t, v)) in points.iter().enumerate() {
        if *v < -ENVELOPE_TOL {
            diags.report(
                Rule::EnvelopeMalformed,
                Location::Curve { index: i },
                format!("negative envelope value {v} at t = {t}"),
            );
        }
    }
    if points.len() > 1 {
        for (label, (t, v)) in [("leading", points[0]), ("trailing", points[points.len() - 1])] {
            if v.abs() > ENVELOPE_TOL {
                diags.report(
                    Rule::EnvelopeMalformed,
                    Location::Global,
                    format!("{label} tail is {v} at t = {t}, expected 0"),
                );
            }
        }
    }
    diags
}

/// Checks a per-net timing table against a circuit (`L022`, `L024`).
///
/// `timings` is expected to hold one [`NetTiming`] per net, indexed by net
/// id — the layout produced by
/// [`TimingReport::timings`](dna_sta::TimingReport::timings).
#[must_use]
pub fn lint_timing(circuit: &Circuit, timings: &[NetTiming]) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if timings.len() != circuit.num_nets() {
        diags.report(
            Rule::TimingNonFinite,
            Location::Global,
            format!("timing table has {} entries for {} nets", timings.len(), circuit.num_nets()),
        );
        return diags;
    }
    for net in circuit.net_ids() {
        let t = &timings[net.index()];
        let loc = || Location::Net { id: net.index(), name: circuit.net(net).name().to_string() };
        if !t.eat().is_finite() || !t.lat().is_finite() {
            diags.report(
                Rule::TimingNonFinite,
                loc(),
                format!("non-finite arrival window [{}, {}]", t.eat(), t.lat()),
            );
            continue;
        }
        if !t.slew().is_finite() || t.slew() <= 0.0 {
            diags.report(
                Rule::TimingNonFinite,
                loc(),
                format!("slew {} ps is not finite and positive", t.slew()),
            );
        }
        if t.eat() > t.lat() {
            diags.report(
                Rule::WindowInverted,
                loc(),
                format!("EAT {} ps is later than LAT {} ps", t.eat(), t.lat()),
            );
        }
    }
    diags
}
