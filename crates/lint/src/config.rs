//! Configuration pass: sanity ranges on analysis knobs (`L042`).

use dna_topk::TopKConfig;

use crate::{Diagnostics, Location, Rule};

/// Checks a top-k analysis configuration (`L042`).
///
/// These are the out-of-range values the constructors cannot reject
/// because [`TopKConfig`] is a plain-old-data struct users fill in by
/// hand: a zero iteration cap (the noise fixpoint never runs), a
/// non-positive or non-finite convergence tolerance (the fixpoint never
/// terminates), a non-positive holding resistance, a zero beam width, and
/// a validation pool of zero when validation is requested.
#[must_use]
pub fn lint_config(config: &TopKConfig) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if config.noise.max_iterations == 0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "noise.max_iterations" },
            "iteration cap of 0 means the noise analysis never runs",
        );
    }
    if !config.noise.tolerance.is_finite() || config.noise.tolerance <= 0.0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "noise.tolerance" },
            format!(
                "convergence tolerance {} ps is not finite and positive",
                config.noise.tolerance
            ),
        );
    }
    if !config.noise.pi_resistance.is_finite() || config.noise.pi_resistance <= 0.0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "noise.pi_resistance" },
            format!(
                "holding resistance {} kOhm is not finite and positive",
                config.noise.pi_resistance
            ),
        );
    }
    if !config.noise.sta.input_slew.is_finite() || config.noise.sta.input_slew <= 0.0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "noise.sta.input_slew" },
            format!("input slew {} ps is not finite and positive", config.noise.sta.input_slew),
        );
    }
    if !config.noise.sta.input_arrival.is_finite() {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "noise.sta.input_arrival" },
            format!("input arrival {} ps is not finite", config.noise.sta.input_arrival),
        );
    }
    if config.max_list_width == Some(0) {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "max_list_width" },
            "a beam width of 0 prunes every candidate",
        );
    }
    if config.validate && config.validation_pool == 0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "validation_pool" },
            "validation is enabled but the validation pool is empty",
        );
    }
    if config.higher_order && config.widener_depth == 0 {
        diags.report(
            Rule::BadConfig,
            Location::Config { field: "widener_depth" },
            "higher-order aggressors are enabled but the widener searches 0 levels",
        );
    }

    diags.sort();
    diags
}
