//! Circuit IR passes: referential integrity, topology, capacitance and
//! library sanity.

use dna_netlist::{find_cycle, Circuit, CircuitParts, NetSource};

use crate::{Diagnostics, Location, Rule};

/// Runs every circuit-level pass and returns the combined findings.
///
/// Passes, in order: referential integrity (`L001`–`L009`), topology
/// (`L010`–`L013`), capacitance sanity (`L041`) and library sanity
/// (`L040`). A circuit produced by
/// [`CircuitBuilder`](dna_netlist::CircuitBuilder), the generator or the
/// text parser is expected to come back clean; the rules exist to catch
/// corruption introduced by raw-parts construction, future deserializers
/// or bugs in IR-producing code.
///
/// The verifier never panics on corrupt input: every id is range-checked
/// before use, which is why it works on a raw [`CircuitParts`] view rather
/// than the panicking [`Circuit`] accessors.
#[must_use]
pub fn lint_circuit(circuit: &Circuit) -> Diagnostics {
    let parts = circuit.clone().into_parts();
    let mut diags = Diagnostics::new();
    referential_integrity(&parts, &mut diags);
    topology(&parts, &mut diags);
    capacitances(&parts, &mut diags);
    library(&parts, &mut diags);
    diags.sort();
    diags
}

fn gate_loc(parts: &CircuitParts, id: usize) -> Location {
    let name = parts.gates.get(id).map(|g| g.name.clone()).unwrap_or_default();
    Location::Gate { id, name }
}

fn net_loc(parts: &CircuitParts, id: usize) -> Location {
    let name = parts.nets.get(id).map(|n| n.name.clone()).unwrap_or_default();
    Location::Net { id, name }
}

fn referential_integrity(parts: &CircuitParts, diags: &mut Diagnostics) {
    let nets = parts.nets.len();
    let gates = parts.gates.len();
    let couplings = parts.couplings.len();

    // L001/L002: every net id a gate mentions must resolve.
    for (gi, gate) in parts.gates.iter().enumerate() {
        for (pin, input) in gate.inputs.iter().enumerate() {
            if input.index() >= nets {
                diags.report(
                    Rule::GateInputUnresolved,
                    gate_loc(parts, gi),
                    format!("input pin {pin} references nonexistent net #{}", input.index()),
                );
            }
        }
        if gate.output.index() >= nets {
            diags.report(
                Rule::GateOutputUnresolved,
                gate_loc(parts, gi),
                format!("output references nonexistent net #{}", gate.output.index()),
            );
        }
    }

    // L003/L004: net sources resolve and actually drive the net.
    for (ni, net) in parts.nets.iter().enumerate() {
        if let NetSource::Gate(g) = net.source {
            if g.index() >= gates {
                diags.report(
                    Rule::DanglingDriver,
                    net_loc(parts, ni),
                    format!("driver gate #{} does not exist", g.index()),
                );
            } else if parts.gates[g.index()].output.index() != ni {
                diags.report(
                    Rule::DriverOutputMismatch,
                    net_loc(parts, ni),
                    format!(
                        "claims driver `{}`, which drives net #{} instead",
                        parts.gates[g.index()].name,
                        parts.gates[g.index()].output.index()
                    ),
                );
            }
        }
    }

    // L005, both directions: gate inputs <-> net load lists.
    for (ni, net) in parts.nets.iter().enumerate() {
        for load in &net.loads {
            if load.index() >= gates {
                diags.report(
                    Rule::LoadListMismatch,
                    net_loc(parts, ni),
                    format!("load gate #{} does not exist", load.index()),
                );
            } else if !parts.gates[load.index()].inputs.iter().any(|i| i.index() == ni) {
                diags.report(
                    Rule::LoadListMismatch,
                    net_loc(parts, ni),
                    format!(
                        "lists load `{}`, which has no input pin on this net",
                        parts.gates[load.index()].name
                    ),
                );
            }
        }
    }
    for (gi, gate) in parts.gates.iter().enumerate() {
        for input in &gate.inputs {
            let Some(net) = parts.nets.get(input.index()) else { continue };
            if !net.loads.iter().any(|l| l.index() == gi) {
                diags.report(
                    Rule::LoadListMismatch,
                    gate_loc(parts, gi),
                    format!("reads net `{}`, whose load list omits this gate", net.name),
                );
            }
        }
    }

    // L006: coupling endpoints.
    for (ci, cc) in parts.couplings.iter().enumerate() {
        for end in [cc.a, cc.b] {
            if end.index() >= nets {
                diags.report(
                    Rule::CouplingUnresolved,
                    Location::Coupling { id: ci },
                    format!("endpoint references nonexistent net #{}", end.index()),
                );
            }
        }
        if cc.a == cc.b {
            diags.report(
                Rule::CouplingUnresolved,
                Location::Coupling { id: ci },
                format!("couples net #{} to itself", cc.a.index()),
            );
        }
    }

    // L007: the per-net coupling index must mirror the coupling list.
    if parts.couplings_by_net.len() != nets {
        diags.report(
            Rule::CouplingIndexCorrupt,
            Location::Global,
            format!(
                "coupling index has {} entries for {} nets",
                parts.couplings_by_net.len(),
                nets
            ),
        );
    }
    for (ni, list) in parts.couplings_by_net.iter().enumerate().take(nets) {
        for id in list {
            if id.index() >= couplings {
                diags.report(
                    Rule::CouplingIndexCorrupt,
                    net_loc(parts, ni),
                    format!("index lists nonexistent coupling cc{}", id.index()),
                );
            } else {
                let cc = &parts.couplings[id.index()];
                if cc.a.index() != ni && cc.b.index() != ni {
                    diags.report(
                        Rule::CouplingIndexCorrupt,
                        net_loc(parts, ni),
                        format!("index lists cc{}, which does not touch this net", id.index()),
                    );
                }
            }
        }
    }
    for (ci, cc) in parts.couplings.iter().enumerate() {
        for end in [cc.a, cc.b] {
            if let Some(list) = parts.couplings_by_net.get(end.index()) {
                if !list.iter().any(|x| x.index() == ci) {
                    diags.report(
                        Rule::CouplingIndexCorrupt,
                        net_loc(parts, end.index()),
                        format!("index omits incident coupling cc{ci}"),
                    );
                }
            }
        }
    }

    // L008: the output list and per-net output flags must agree.
    if parts.outputs.is_empty() {
        diags.report(Rule::OutputListCorrupt, Location::Global, "circuit has no primary outputs");
    }
    let mut listed = vec![false; nets];
    for out in &parts.outputs {
        if out.index() >= nets {
            diags.report(
                Rule::OutputListCorrupt,
                Location::Global,
                format!("output list references nonexistent net #{}", out.index()),
            );
            continue;
        }
        if listed[out.index()] {
            diags.report(
                Rule::OutputListCorrupt,
                net_loc(parts, out.index()),
                "appears twice in the output list",
            );
        }
        listed[out.index()] = true;
        if !parts.nets[out.index()].is_output {
            diags.report(
                Rule::OutputListCorrupt,
                net_loc(parts, out.index()),
                "listed as a primary output but not flagged as one",
            );
        }
    }
    for (ni, net) in parts.nets.iter().enumerate() {
        if net.is_output && !listed[ni] {
            diags.report(
                Rule::OutputListCorrupt,
                net_loc(parts, ni),
                "flagged as a primary output but missing from the output list",
            );
        }
    }

    // L009: gate-driven nets that feed nothing and sink nothing.
    for (ni, net) in parts.nets.iter().enumerate() {
        if matches!(net.source, NetSource::Gate(_)) && net.loads.is_empty() && !net.is_output {
            diags.report(
                Rule::FloatingNet,
                net_loc(parts, ni),
                "driven net has no loads and is not a primary output",
            );
        }
    }
}

fn topology(parts: &CircuitParts, diags: &mut Diagnostics) {
    let gates = parts.gates.len();
    let nets = parts.nets.len();

    // L013 first: cycle diagnostics name the whole loop, and an order
    // check against a cyclic graph would only add noise.
    let cycle = find_cycle(&parts.gates, &parts.nets);
    if let Some(cycle) = &cycle {
        let names: Vec<String> = cycle
            .iter()
            .map(|g| {
                parts
                    .gates
                    .get(g.index())
                    .map_or_else(|| format!("#{}", g.index()), |gate| format!("`{}`", gate.name))
            })
            .collect();
        diags.report(
            Rule::CombinationalCycle,
            gate_loc(parts, cycle[0].index()),
            format!("combinational cycle: {}", names.join(" -> ")),
        );
    }

    // L010: the cached gate order must be a permutation of all gates.
    let mut gate_pos = vec![usize::MAX; gates];
    let mut gate_order_ok = parts.gate_topo.len() == gates;
    if parts.gate_topo.len() != gates {
        diags.report(
            Rule::TopoNotPermutation,
            Location::Global,
            format!("gate order lists {} of {} gates", parts.gate_topo.len(), gates),
        );
    }
    for (pos, g) in parts.gate_topo.iter().enumerate() {
        if g.index() >= gates {
            diags.report(
                Rule::TopoNotPermutation,
                Location::Global,
                format!("gate order references nonexistent gate #{}", g.index()),
            );
            gate_order_ok = false;
        } else if gate_pos[g.index()] != usize::MAX {
            diags.report(
                Rule::TopoNotPermutation,
                gate_loc(parts, g.index()),
                "appears twice in the gate order",
            );
            gate_order_ok = false;
        } else {
            gate_pos[g.index()] = pos;
        }
    }

    // L011: drivers must precede loads. Only meaningful for a permutation
    // of an acyclic graph (a cycle makes every order wrong by definition).
    if gate_order_ok && cycle.is_none() {
        for (gi, gate) in parts.gates.iter().enumerate() {
            for input in &gate.inputs {
                let Some(net) = parts.nets.get(input.index()) else { continue };
                let NetSource::Gate(driver) = net.source else { continue };
                if driver.index() >= gates {
                    continue; // reported as L003
                }
                if gate_pos[driver.index()] > gate_pos[gi] {
                    diags.report(
                        Rule::TopoOrderViolation,
                        gate_loc(parts, gi),
                        format!(
                            "listed before its driver `{}` in the gate order",
                            parts.gates[driver.index()].name
                        ),
                    );
                }
            }
        }
    }

    // L012: the cached net order must be a permutation in which every
    // gate-driven net follows all of its driver's input nets.
    let mut net_pos = vec![usize::MAX; nets];
    let mut net_order_ok = parts.net_topo.len() == nets;
    if parts.net_topo.len() != nets {
        diags.report(
            Rule::NetTopoCorrupt,
            Location::Global,
            format!("net order lists {} of {} nets", parts.net_topo.len(), nets),
        );
    }
    for (pos, n) in parts.net_topo.iter().enumerate() {
        if n.index() >= nets {
            diags.report(
                Rule::NetTopoCorrupt,
                Location::Global,
                format!("net order references nonexistent net #{}", n.index()),
            );
            net_order_ok = false;
        } else if net_pos[n.index()] != usize::MAX {
            diags.report(
                Rule::NetTopoCorrupt,
                net_loc(parts, n.index()),
                "appears twice in the net order",
            );
            net_order_ok = false;
        } else {
            net_pos[n.index()] = pos;
        }
    }
    if net_order_ok && cycle.is_none() {
        for (ni, net) in parts.nets.iter().enumerate() {
            let NetSource::Gate(driver) = net.source else { continue };
            let Some(gate) = parts.gates.get(driver.index()) else { continue };
            for input in &gate.inputs {
                if input.index() >= nets {
                    continue; // reported as L001
                }
                if net_pos[input.index()] > net_pos[ni] {
                    diags.report(
                        Rule::NetTopoCorrupt,
                        net_loc(parts, ni),
                        format!(
                            "listed before its driver's input `{}` in the net order",
                            parts.nets[input.index()].name
                        ),
                    );
                }
            }
        }
    }
}

fn capacitances(parts: &CircuitParts, diags: &mut Diagnostics) {
    for (ni, net) in parts.nets.iter().enumerate() {
        if !net.wire_cap.is_finite() || net.wire_cap < 0.0 {
            diags.report(
                Rule::BadCapacitance,
                net_loc(parts, ni),
                format!("wire capacitance {} fF is not finite and non-negative", net.wire_cap),
            );
        }
    }
    for (ci, cc) in parts.couplings.iter().enumerate() {
        if !cc.cap.is_finite() || cc.cap < 0.0 {
            diags.report(
                Rule::BadCapacitance,
                Location::Coupling { id: ci },
                format!("coupling capacitance {} fF is not finite and non-negative", cc.cap),
            );
        }
    }
}

fn library(parts: &CircuitParts, diags: &mut Diagnostics) {
    for cell in parts.library.cells() {
        let fields = [
            ("intrinsic_delay", cell.intrinsic_delay),
            ("drive_resistance", cell.drive_resistance),
            ("input_cap", cell.input_cap),
            ("intrinsic_slew", cell.intrinsic_slew),
        ];
        for (field, value) in fields {
            if !value.is_finite() || value <= 0.0 {
                diags.report(
                    Rule::CellNotMonotone,
                    Location::Cell { name: cell.kind.name() },
                    format!(
                        "{field} = {value}; the linear model needs finite positive \
                         coefficients for delay to grow with load"
                    ),
                );
            }
        }
    }
}
