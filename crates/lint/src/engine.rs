//! Engine passes: irredundant candidate lists and top-k results.

use std::collections::HashSet;

use dna_netlist::Circuit;
use dna_noise::CouplingMask;
use dna_topk::dominance::{find_dominated_pair, DominanceDirection};
use dna_topk::{Candidate, CleanCertificate, CleanWitness, CouplingSet, SchedAudit, TopKResult};
use dna_waveform::TimeInterval;

use crate::{lint_envelope, Diagnostics, Location, Rule};

/// Checks a pruned candidate list — the paper's irredundant I-list
/// (`L020`–`L023`, `L030`–`L033`).
///
/// After dominance pruning, no candidate may be dominated by a
/// better-ranked one over `dominance_interval` — the list is assumed
/// ranked best-first, as [`irredundant`](dna_topk::dominance::irredundant)
/// produces it (Theorem 1 guarantees dropping dominated sets is lossless
/// only if every survivor earns its slot). The list must also carry no
/// duplicate coupling set, must respect the beam cap `max_width`, and every
/// candidate must have a finite, non-negative delay noise and a well-formed
/// envelope.
#[must_use]
pub fn lint_ilist(
    candidates: &[Candidate],
    dominance_interval: TimeInterval,
    direction: DominanceDirection,
    max_width: Option<usize>,
) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if let Some(cap) = max_width {
        if candidates.len() > cap {
            diags.report(
                Rule::OverCapacity,
                Location::Global,
                format!("list holds {} candidates, beam cap is {cap}", candidates.len()),
            );
        }
    }

    let mut seen: HashSet<&CouplingSet> = HashSet::with_capacity(candidates.len());
    for (i, cand) in candidates.iter().enumerate() {
        if !seen.insert(cand.set()) {
            diags.report(
                Rule::DuplicateCandidateSet,
                Location::Candidate { index: i },
                format!("coupling set {:?} appears more than once", cand.set().ids()),
            );
        }
        let dn = cand.delay_noise();
        if !dn.is_finite() || dn < 0.0 {
            diags.report(
                Rule::BadDelayNoise,
                Location::Candidate { index: i },
                format!("cached delay noise {dn} ps is not finite and non-negative"),
            );
        }
        let env = lint_envelope(cand.envelope());
        if !env.is_empty() {
            diags.report(
                Rule::EnvelopeMalformed,
                Location::Candidate { index: i },
                format!("candidate envelope is malformed: {}", summarize(&env)),
            );
        }
    }

    if let Some((winner, loser)) = find_dominated_pair(candidates, dominance_interval, direction) {
        diags.report(
            Rule::DominatedCandidate,
            Location::Candidate { index: loser },
            format!(
                "dominated by candidate {winner} (set {:?}) over {:?}",
                candidates[winner].set().ids(),
                dominance_interval
            ),
        );
    }

    diags.sort();
    diags
}

/// Checks a finished top-k analysis result against the circuit it came
/// from (`L006`, `L008`, `L032`–`L034`).
///
/// `false_aggressors` lists couplings a logic-correlation pass excluded;
/// the reported worst set must be disjoint from it (paper §6: false
/// aggressor sets only shrink the search space, they must never leak back
/// into an answer). Pass an empty set when no exclusions apply.
#[must_use]
pub fn lint_result(
    circuit: &Circuit,
    result: &TopKResult,
    false_aggressors: &CouplingSet,
) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if result.set().len() > result.requested_k() {
        diags.report(
            Rule::OverCapacity,
            Location::Global,
            format!(
                "worst set has {} couplings, only k = {} were requested",
                result.set().len(),
                result.requested_k()
            ),
        );
    }

    for &id in result.set().ids() {
        if id.index() >= circuit.num_couplings() {
            diags.report(
                Rule::CouplingUnresolved,
                Location::Coupling { id: id.index() },
                "worst set references a nonexistent coupling",
            );
        }
        if false_aggressors.contains(id) {
            diags.report(
                Rule::FalseAggressorInSet,
                Location::Coupling { id: id.index() },
                "worst set contains a coupling excluded as a false aggressor",
            );
        }
    }

    let sink = result.sink();
    if sink.index() >= circuit.num_nets() {
        diags.report(
            Rule::OutputListCorrupt,
            Location::Net { id: sink.index(), name: String::new() },
            "result sink is not a net of this circuit",
        );
    } else if !circuit.net(sink).is_output {
        diags.report(
            Rule::OutputListCorrupt,
            Location::Net { id: sink.index(), name: circuit.net(sink).name().to_string() },
            "result sink is not a primary output",
        );
    }

    for (label, delay) in [
        ("quiet delay", result.delay_before()),
        ("noisy delay", result.delay_after()),
        ("predicted delay", result.predicted_delay()),
    ] {
        if !delay.is_finite() || delay < 0.0 {
            diags.report(
                Rule::BadDelayNoise,
                Location::Global,
                format!("{label} {delay} ps is not finite and non-negative"),
            );
        }
    }

    diags.sort();
    diags
}

/// Checks a what-if session's dirty set against the mask delta it was
/// derived from (`L035`).
///
/// A [`WhatIfSession`](dna_topk::WhatIfSession) serves every net whose
/// `dirty` flag is false straight from its cache, so the flags must be a
/// **sound over-approximation** of the nets the mask change can affect:
///
/// 1. the flag vector covers every net of the circuit;
/// 2. both endpoints of every coupling whose enable bit differs between
///    `before` and `after` are dirty (they are the seeds of the change);
/// 3. the dirty set is closed under the two propagation edge kinds —
///    gate fanout (a dirty net's arrival feeds its load gates' outputs)
///    and **mask-aware** coupling adjacency (a dirty net injects noise
///    into every net coupled to it through a coupling enabled in `before`
///    *or* `after`; a coupling disabled in both worlds injects nothing in
///    either, so its edge cannot carry a difference and is exempt).
///
/// Any violation names a net that would be served stale from the session
/// cache. Extra dirty nets are *not* reported: over-approximation costs
/// recompute time, never correctness.
#[must_use]
pub fn lint_dirty_closure(
    circuit: &Circuit,
    before: &CouplingMask,
    after: &CouplingMask,
    dirty: &[bool],
) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if dirty.len() != circuit.num_nets() {
        diags.report(
            Rule::SessionCacheIncoherent,
            Location::Global,
            format!("dirty vector covers {} nets, circuit has {}", dirty.len(), circuit.num_nets()),
        );
        diags.sort();
        return diags;
    }
    let is_dirty = |i: usize| dirty.get(i).copied().unwrap_or(false);

    // Seeds: every endpoint of a coupling the delta flipped.
    for cc in circuit.coupling_ids() {
        if before.is_enabled(cc) == after.is_enabled(cc) {
            continue;
        }
        let c = circuit.coupling(cc);
        for end in [c.a(), c.b()] {
            if !is_dirty(end.index()) {
                diags.report(
                    Rule::SessionCacheIncoherent,
                    Location::Net { id: end.index(), name: circuit.net(end).name().to_string() },
                    format!("endpoint of flipped coupling {} is not dirty", cc.index()),
                );
            }
        }
    }

    // Closure under gate-fanout and coupling-adjacency edges.
    for n in circuit.net_ids() {
        if !is_dirty(n.index()) {
            continue;
        }
        for &g in circuit.net(n).loads() {
            let out = circuit.gate(g).output();
            if !is_dirty(out.index()) {
                diags.report(
                    Rule::SessionCacheIncoherent,
                    Location::Net { id: out.index(), name: circuit.net(out).name().to_string() },
                    format!(
                        "in the fanout of dirty net {} ({}) but not dirty",
                        n.index(),
                        circuit.net(n).name()
                    ),
                );
            }
        }
        for &cc in circuit.couplings_on(n) {
            if !before.is_enabled(cc) && !after.is_enabled(cc) {
                // Disabled in both worlds: zero noise injected either way,
                // so this edge cannot propagate a state difference.
                continue;
            }
            let Some(other) = circuit.coupling(cc).other(n) else { continue };
            if !is_dirty(other.index()) {
                diags.report(
                    Rule::SessionCacheIncoherent,
                    Location::Net {
                        id: other.index(),
                        name: circuit.net(other).name().to_string(),
                    },
                    format!(
                        "coupled to dirty net {} ({}) through coupling {} but not dirty",
                        n.index(),
                        circuit.net(n).name(),
                        cc.index()
                    ),
                );
            }
        }
    }

    diags.sort();
    diags
}

/// Checks a semantically damped dirty set and its clean certificates
/// against an independently re-derived prover verdict
/// (`L035`, `L050`–`L052`).
///
/// Under [`Damping::Semantic`](dna_topk::Damping::Semantic) a session's
/// `dirty` flags are the structural closure *minus* the victims the
/// corridor prover certified clean, so the bare [`lint_dirty_closure`]
/// coherence check no longer applies verbatim: a certified victim sits
/// inside the structural closure without being flagged. This pass checks
/// the damped state end to end:
///
/// 1. **Bound argument (extended `L035`).** `dirty ∪ certified` must be a
///    sound structural closure of the mask delta — every net the bare
///    rule would demand dirty is either re-swept or carries a
///    certificate. A net that is neither is served stale with *no* proof.
/// 2. **Certificate validity (`L050`).** Each certificate must cover an
///    in-range victim exactly once, must not cover a victim the session
///    re-swept anyway, must record an unchanged semantic digest, and the
///    re-derived witness — produced from scratch by
///    [`derive_clean_witness`](dna_topk::TopKAnalysis::derive_clean_witness),
///    which never consults fault-injection hooks — must agree the victim
///    is clean.
/// 3. **Cache freshness (`L051`).** Every emitted certificate must
///    bitwise equal its re-derived counterpart (same digests, same
///    refuted edges with the same bound values); a missing or differing
///    counterpart means the session's cached corridor state has drifted.
/// 4. **Bound monotonicity (`L052`).** Within each refuting edge, the
///    envelope contribution at zero shift can never exceed the claimed
///    bound over the whole shift corridor (the corridor is a pointwise
///    upper bound, so widening the shift freedom only grows it).
#[must_use]
pub fn lint_dirty_closure_certified(
    circuit: &Circuit,
    before: &CouplingMask,
    after: &CouplingMask,
    dirty: &[bool],
    certificates: &[CleanCertificate],
    witness: &CleanWitness,
) -> Diagnostics {
    let mut diags = Diagnostics::new();

    let nets = circuit.num_nets();
    if dirty.len() != nets {
        diags.report(
            Rule::SessionCacheIncoherent,
            Location::Global,
            format!("dirty vector covers {} nets, circuit has {nets}", dirty.len()),
        );
        diags.sort();
        return diags;
    }
    if witness.dirty().len() != nets {
        diags.report(
            Rule::CorridorCacheStale,
            Location::Global,
            format!("witness covers {} nets, circuit has {nets}", witness.dirty().len()),
        );
        diags.sort();
        return diags;
    }

    let net_loc = |vi: usize| Location::Net {
        id: vi,
        name: circuit.net(dna_netlist::NetId::new(vi as u32)).name().to_string(),
    };

    let mut certified = vec![false; nets];
    for cert in certificates {
        let vi = cert.victim().index();
        if vi >= nets {
            diags.report(
                Rule::CleanCertificateInvalid,
                Location::Global,
                format!("certificate victim {vi} is not a net of this circuit"),
            );
            continue;
        }
        if certified[vi] {
            diags.report(
                Rule::CleanCertificateInvalid,
                net_loc(vi),
                "victim carries more than one clean certificate",
            );
        }
        certified[vi] = true;
        if dirty[vi] {
            diags.report(
                Rule::CleanCertificateInvalid,
                net_loc(vi),
                "certificate covers a victim the session re-swept anyway",
            );
        }
        if cert.digest_old() != cert.digest_new() {
            diags.report(
                Rule::CleanCertificateInvalid,
                net_loc(vi),
                format!(
                    "semantic digest changed ({:#018x} -> {:#018x}) under a clean claim",
                    cert.digest_old(),
                    cert.digest_new()
                ),
            );
        }
        if witness.dirty()[vi] {
            diags.report(
                Rule::CleanCertificateInvalid,
                net_loc(vi),
                "re-derived prover verdict marks this victim dirty — the clean claim is unsound",
            );
        }
        match witness.certificates().iter().find(|w| w.victim() == cert.victim()) {
            None => diags.report(
                Rule::CorridorCacheStale,
                net_loc(vi),
                "no re-derived certificate exists for this victim",
            ),
            Some(rederived) if rederived != cert => diags.report(
                Rule::CorridorCacheStale,
                net_loc(vi),
                "certificate does not bitwise match its re-derivation",
            ),
            Some(_) => {}
        }
        for (e, edge) in cert.edges().iter().enumerate() {
            if edge.peak_at_zero() > edge.peak_bound() + 1e-12 {
                diags.report(
                    Rule::BoundNotMonotone,
                    net_loc(vi),
                    format!(
                        "edge {e} (coupling {}): contribution at zero shift {} exceeds \
                         corridor bound {}",
                        edge.coupling().index(),
                        edge.peak_at_zero(),
                        edge.peak_bound()
                    ),
                );
            }
        }
    }

    // Extended L035: certified victims count as covered — the closure
    // must hold for `dirty ∪ certified`, so every skip is either re-swept
    // or certified.
    let effective: Vec<bool> = dirty.iter().zip(&certified).map(|(&d, &c)| d || c).collect();
    diags.merge(lint_dirty_closure(circuit, before, after, &effective));

    diags.sort();
    diags
}

/// Checks that batch what-if evaluation is submission-order independent
/// (`L043`).
///
/// `forward` and `reordered` must hold results for the **same scenarios in
/// the same index space** — the caller evaluates the batch twice (once as
/// submitted, once under a permutation, mapped back to submission order)
/// and hands both here. Scenarios are independent queries against one
/// session snapshot, so every observable field must be f64-bit-identical;
/// any divergence means scenario evaluation leaked state between
/// scenarios.
#[must_use]
pub fn lint_batch_order(forward: &[TopKResult], reordered: &[TopKResult]) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if forward.len() != reordered.len() {
        diags.report(
            Rule::BatchOrderDependent,
            Location::Global,
            format!(
                "batch evaluated {} scenarios forward but {} reordered",
                forward.len(),
                reordered.len()
            ),
        );
        diags.sort();
        return diags;
    }

    for (i, (a, b)) in forward.iter().zip(reordered).enumerate() {
        let mismatch = if a.couplings() != b.couplings() {
            Some("worst coupling set")
        } else if a.sink() != b.sink() {
            Some("sink output")
        } else if a.delay_before().to_bits() != b.delay_before().to_bits()
            || a.delay_after().to_bits() != b.delay_after().to_bits()
            || a.predicted_delay().to_bits() != b.predicted_delay().to_bits()
        {
            Some("delay (bitwise)")
        } else if a.peak_list_width() != b.peak_list_width()
            || a.generated_candidates() != b.generated_candidates()
        {
            Some("sweep counters")
        } else {
            None
        };
        if let Some(field) = mismatch {
            diags.report(
                Rule::BatchOrderDependent,
                Location::Global,
                format!("scenario {i}: {field} differs under batch reordering"),
            );
        }
    }

    diags.sort();
    diags
}

/// Checks a scheduler determinism audit (`L060`).
///
/// The caller runs [`TopKAnalysis::sched_audit`](dna_topk::TopKAnalysis::sched_audit),
/// which replays the work-stealing sweep on the serial reference
/// schedule and compares every victim's published result slot (I-lists
/// and counters, f64-bit-exact) plus its pre-partitioned budget share
/// against the parallel run. Any surviving entry here means steal order
/// or thread count leaked into the output — the determinism contract
/// every identity test builds on is broken.
#[must_use]
pub fn lint_sched_replay(audit: &SchedAudit) -> Diagnostics {
    let mut diags = Diagnostics::new();

    for &i in &audit.mismatched_slots {
        diags.report(
            Rule::SchedulerResultSlotMismatch,
            Location::Net { id: i, name: String::new() },
            "published I-lists or counters differ between the parallel sweep and its serial replay",
        );
    }
    for &i in &audit.share_violations {
        diags.report(
            Rule::SchedulerResultSlotMismatch,
            Location::Net { id: i, name: String::new() },
            "skip decision contradicts the victim's pre-partitioned budget share",
        );
    }

    diags.sort();
    diags
}

fn summarize(diags: &Diagnostics) -> String {
    diags.iter().map(|d| d.message.clone()).collect::<Vec<_>>().join("; ")
}
