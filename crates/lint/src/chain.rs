//! L07x — artifact chain integrity: the crash-safe versioned store's
//! generation chain against its ordering, linking and replay contracts.

use dna_topk::{ChainFault, ChainSummary, RecordKind};

use crate::{Diagnostics, Location, Rule};

/// Lints an artifact chain summary (from [`dna_topk::chain_summary`] or,
/// to also catch replay-level defects, [`dna_topk::chain_summary_checked`])
/// against the L07x rules:
///
/// * **L070** — records out of order: the base is not a checkpoint, a
///   checkpoint appears mid-chain, or generations are not contiguous;
/// * **L071** — a record is corrupt or unlinked (CRC failure, broken
///   predecessor hash, or replay rejecting a CRC-valid record);
/// * **L072** — a delta's replayed mask diverges from its recorded
///   digest, so the chain no longer reproduces its own history;
/// * **L073** *(warning)* — a torn tail: the file ends mid-record, the
///   recoverable signature of an interrupted append.
///
/// The committed records are re-checked structurally here even though the
/// scanner enforces the same ordering, so a summary assembled by buggy
/// code — not just a damaged file — is caught and named too.
#[must_use]
pub fn lint_chain(summary: &ChainSummary) -> Diagnostics {
    let mut diags = Diagnostics::new();

    for (i, r) in summary.records.iter().enumerate() {
        let at = Location::Record { generation: r.generation };
        if i == 0 {
            if r.kind != RecordKind::Checkpoint {
                diags.report(
                    Rule::ChainOutOfOrder,
                    at,
                    "the chain base is not a checkpoint record",
                );
            }
            continue;
        }
        if r.kind == RecordKind::Checkpoint {
            diags.report(
                Rule::ChainOutOfOrder,
                at.clone(),
                "checkpoint record after the base (compaction rewrites, it never appends)",
            );
        }
        let prev = &summary.records[i - 1];
        if r.generation != prev.generation.wrapping_add(1) {
            diags.report(
                Rule::ChainOutOfOrder,
                at,
                format!(
                    "generation {} follows {} (must increase by exactly 1)",
                    r.generation, prev.generation
                ),
            );
        }
    }

    for fault in &summary.faults {
        match fault {
            ChainFault::OutOfOrder { generation, what } => diags.report(
                Rule::ChainOutOfOrder,
                Location::Record { generation: *generation },
                what.clone(),
            ),
            ChainFault::LinkBroken { generation } => diags.report(
                Rule::ChainRecordCorrupt,
                Location::Record { generation: *generation },
                "predecessor link hash does not match the record before it",
            ),
            ChainFault::Corrupt { error } => {
                diags.report(Rule::ChainRecordCorrupt, Location::Global, error.clone());
            }
            ChainFault::ReplayRejected { error } => diags.report(
                Rule::ChainRecordCorrupt,
                Location::Global,
                format!("replay rejected a CRC-valid record: {error}"),
            ),
            ChainFault::MaskDivergence { generation } => diags.report(
                Rule::ChainMaskDivergence,
                Location::Record { generation: *generation },
                "replayed mask does not hash to the digest the record committed",
            ),
            ChainFault::TornTail { bytes } => diags.report(
                Rule::ChainTornTail,
                Location::Global,
                format!(
                    "{bytes} uncommitted byte(s) past the last whole record; \
                     truncating to the committed prefix repairs the chain"
                ),
            ),
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_topk::RecordMeta;

    fn rec(kind: RecordKind, generation: u64) -> RecordMeta {
        RecordMeta { kind, generation, payload_bytes: 16, offset: 12 }
    }

    #[test]
    fn healthy_chain_is_clean() {
        let summary = ChainSummary {
            records: vec![
                rec(RecordKind::Checkpoint, 2),
                rec(RecordKind::Delta, 3),
                rec(RecordKind::Delta, 4),
            ],
            faults: vec![],
        };
        let diags = lint_chain(&summary);
        assert!(diags.is_empty(), "{}", diags.render_text());
    }

    #[test]
    fn structural_disorder_is_l070() {
        let summary = ChainSummary {
            records: vec![
                rec(RecordKind::Delta, 0),
                rec(RecordKind::Checkpoint, 1),
                rec(RecordKind::Delta, 5),
            ],
            faults: vec![],
        };
        let diags = lint_chain(&summary);
        assert!(diags.has(Rule::ChainOutOfOrder));
        // Delta base, mid-chain checkpoint, and the generation gap.
        assert_eq!(diags.error_count(), 3, "{}", diags.render_text());
    }

    #[test]
    fn faults_map_to_their_codes() {
        let summary = ChainSummary {
            records: vec![rec(RecordKind::Checkpoint, 0)],
            faults: vec![
                ChainFault::LinkBroken { generation: 1 },
                ChainFault::Corrupt { error: "checksum mismatch".into() },
                ChainFault::MaskDivergence { generation: 2 },
                ChainFault::ReplayRejected { error: "bad payload".into() },
            ],
        };
        let diags = lint_chain(&summary);
        assert!(diags.has(Rule::ChainRecordCorrupt));
        assert!(diags.has(Rule::ChainMaskDivergence));
        assert_eq!(diags.error_count(), 4, "{}", diags.render_text());
    }

    #[test]
    fn torn_tail_is_a_warning_not_an_error() {
        let summary = ChainSummary {
            records: vec![rec(RecordKind::Checkpoint, 0), rec(RecordKind::Delta, 1)],
            faults: vec![ChainFault::TornTail { bytes: 17 }],
        };
        let diags = lint_chain(&summary);
        assert!(diags.has(Rule::ChainTornTail));
        assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
        assert_eq!(diags.warning_count(), 1);
    }
}
