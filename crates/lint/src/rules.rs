//! The rule catalog: every invariant the verifier checks, with a stable id.

use std::fmt;

use crate::Severity;

/// One lint rule.
///
/// Codes are **stable**: a rule keeps its `L0xx` code forever (new rules
/// take fresh codes, retired codes are never reused), so scripts and test
/// corpora can match on them. The hundreds digit groups rules by pass:
///
/// * `L00x` — referential integrity of the circuit IR,
/// * `L01x` — topology (orders, cycles),
/// * `L02x` — waveform well-formedness,
/// * `L03x` — engine invariants (irredundant lists, results),
/// * `L04x` — library / configuration sanity,
/// * `L05x` — semantic damping certificates (the corridor prover's
///   clean-victim proofs),
/// * `L06x` — scheduler determinism (the work-stealing sweep against
///   its serial replay),
/// * `L07x` — artifact chain integrity (the crash-safe versioned
///   store's generation chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A gate input references a net id out of range.
    GateInputUnresolved,
    /// A gate output references a net id out of range.
    GateOutputUnresolved,
    /// A net claims a driver gate that does not exist.
    DanglingDriver,
    /// A net's driver gate does not actually drive that net.
    DriverOutputMismatch,
    /// Gate inputs and net load lists disagree (one side is missing).
    LoadListMismatch,
    /// A coupling endpoint is out of range, or both endpoints coincide.
    CouplingUnresolved,
    /// The per-net coupling index disagrees with the coupling list.
    CouplingIndexCorrupt,
    /// The primary-output list is corrupt (bad id, flag mismatch, empty).
    OutputListCorrupt,
    /// A gate-driven net has no loads and is not a primary output.
    FloatingNet,
    /// The cached gate order is not a permutation of all gates.
    TopoNotPermutation,
    /// The cached gate order lists a gate before one of its drivers.
    TopoOrderViolation,
    /// The cached net order is corrupt (not a permutation, or a net
    /// precedes its driver's inputs).
    NetTopoCorrupt,
    /// The gate graph contains a combinational cycle.
    CombinationalCycle,
    /// A piecewise-linear curve has no points or a non-finite coordinate.
    PwlNonFinite,
    /// A piecewise-linear curve's breakpoint times do not increase.
    PwlNonMonotone,
    /// A timing window has its bounds inverted (EAT after LAT).
    WindowInverted,
    /// A noise envelope violates its invariants (negative values or
    /// non-zero tails).
    EnvelopeMalformed,
    /// Timing data carries a non-finite bound or a non-positive slew.
    TimingNonFinite,
    /// An envelope's cached peak/support bounds disagree with its curve.
    EnvelopeCacheStale,
    /// An irredundant list contains a dominated candidate.
    DominatedCandidate,
    /// Two candidates in one list carry the same coupling set.
    DuplicateCandidateSet,
    /// A candidate list or result set exceeds its configured capacity.
    OverCapacity,
    /// A cached delay noise or result delay is non-finite or negative.
    BadDelayNoise,
    /// A result set contains a coupling declared a false aggressor.
    FalseAggressorInSet,
    /// A what-if session's dirty set is not a sound closure of its mask
    /// delta: a net the delta can affect would be served stale from the
    /// session cache.
    SessionCacheIncoherent,
    /// A library cell's linear model is not monotone in load.
    CellNotMonotone,
    /// A wire or coupling capacitance is negative or non-finite.
    BadCapacitance,
    /// An analysis configuration field is out of its sane range.
    BadConfig,
    /// A batch what-if scenario's result depends on the order scenarios
    /// were submitted in: the same delta produced different answers in a
    /// reordered batch.
    BatchOrderDependent,
    /// A clean certificate is internally inconsistent or contradicts the
    /// independently re-derived prover verdict: it covers a victim the
    /// session still re-sweeps, records a changed semantic digest, is
    /// duplicated, or claims clean a victim the re-derivation proves
    /// dirty.
    CleanCertificateInvalid,
    /// A clean certificate does not bitwise match its independently
    /// re-derived counterpart — the session's cached corridor state has
    /// drifted from the world it claims to describe.
    CorridorCacheStale,
    /// A certificate's refuting corridor bound is not monotone: the
    /// envelope contribution at zero shift exceeds the claimed bound over
    /// the whole shift corridor.
    BoundNotMonotone,
    /// A work-stealing sweep's result slot or budget share disagrees
    /// with the serial replay: a victim's published I-lists or counters
    /// differ from the single-threaded reference schedule, or its skip
    /// decision contradicts the pre-partitioned budget share — the
    /// scheduler's determinism contract is broken.
    SchedulerResultSlotMismatch,
    /// An artifact chain's records are out of order: the base is not a
    /// checkpoint, a checkpoint appears mid-chain, or generations are
    /// not contiguous.
    ChainOutOfOrder,
    /// A chain record is corrupt or unlinked: its framing CRC fails,
    /// its predecessor hash does not match the record before it, or a
    /// CRC-valid record is rejected by replay — splicing, bit rot or a
    /// misdirected append.
    ChainRecordCorrupt,
    /// A delta record's replayed mask does not hash to its recorded
    /// digest: the chain's history no longer reproduces the states it
    /// claims to have committed.
    ChainMaskDivergence,
    /// The chain ends mid-record — the torn tail of an append that was
    /// interrupted (`kill -9`, power loss). Recoverable by design:
    /// truncating to the committed prefix repairs the file, so this is
    /// a warning, not an error.
    ChainTornTail,
}

impl Rule {
    /// The stable diagnostic code.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rule::GateInputUnresolved => "L001",
            Rule::GateOutputUnresolved => "L002",
            Rule::DanglingDriver => "L003",
            Rule::DriverOutputMismatch => "L004",
            Rule::LoadListMismatch => "L005",
            Rule::CouplingUnresolved => "L006",
            Rule::CouplingIndexCorrupt => "L007",
            Rule::OutputListCorrupt => "L008",
            Rule::FloatingNet => "L009",
            Rule::TopoNotPermutation => "L010",
            Rule::TopoOrderViolation => "L011",
            Rule::NetTopoCorrupt => "L012",
            Rule::CombinationalCycle => "L013",
            Rule::PwlNonFinite => "L020",
            Rule::PwlNonMonotone => "L021",
            Rule::WindowInverted => "L022",
            Rule::EnvelopeMalformed => "L023",
            Rule::TimingNonFinite => "L024",
            Rule::EnvelopeCacheStale => "L025",
            Rule::DominatedCandidate => "L030",
            Rule::DuplicateCandidateSet => "L031",
            Rule::OverCapacity => "L032",
            Rule::BadDelayNoise => "L033",
            Rule::FalseAggressorInSet => "L034",
            Rule::SessionCacheIncoherent => "L035",
            Rule::CellNotMonotone => "L040",
            Rule::BadCapacitance => "L041",
            Rule::BadConfig => "L042",
            Rule::BatchOrderDependent => "L043",
            Rule::CleanCertificateInvalid => "L050",
            Rule::CorridorCacheStale => "L051",
            Rule::BoundNotMonotone => "L052",
            Rule::SchedulerResultSlotMismatch => "L060",
            Rule::ChainOutOfOrder => "L070",
            Rule::ChainRecordCorrupt => "L071",
            Rule::ChainMaskDivergence => "L072",
            Rule::ChainTornTail => "L073",
        }
    }

    /// Default severity of violations of this rule.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::FloatingNet | Rule::ChainTornTail => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Short human-readable rule title.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            Rule::GateInputUnresolved => "gate input unresolved",
            Rule::GateOutputUnresolved => "gate output unresolved",
            Rule::DanglingDriver => "dangling driver",
            Rule::DriverOutputMismatch => "driver/output mismatch",
            Rule::LoadListMismatch => "load list mismatch",
            Rule::CouplingUnresolved => "coupling unresolved",
            Rule::CouplingIndexCorrupt => "coupling index corrupt",
            Rule::OutputListCorrupt => "output list corrupt",
            Rule::FloatingNet => "floating net",
            Rule::TopoNotPermutation => "topological order not a permutation",
            Rule::TopoOrderViolation => "topological order violation",
            Rule::NetTopoCorrupt => "net order corrupt",
            Rule::CombinationalCycle => "combinational cycle",
            Rule::PwlNonFinite => "non-finite curve",
            Rule::PwlNonMonotone => "non-monotone curve",
            Rule::WindowInverted => "inverted timing window",
            Rule::EnvelopeMalformed => "malformed envelope",
            Rule::TimingNonFinite => "non-finite timing",
            Rule::EnvelopeCacheStale => "stale envelope cache",
            Rule::DominatedCandidate => "dominated candidate",
            Rule::DuplicateCandidateSet => "duplicate candidate set",
            Rule::OverCapacity => "over capacity",
            Rule::BadDelayNoise => "bad delay noise",
            Rule::FalseAggressorInSet => "false aggressor in set",
            Rule::SessionCacheIncoherent => "session cache incoherent",
            Rule::CellNotMonotone => "cell model not monotone",
            Rule::BadCapacitance => "bad capacitance",
            Rule::BadConfig => "bad configuration",
            Rule::BatchOrderDependent => "batch order dependent",
            Rule::CleanCertificateInvalid => "clean certificate invalid",
            Rule::CorridorCacheStale => "stale corridor cache",
            Rule::BoundNotMonotone => "bound not monotone",
            Rule::SchedulerResultSlotMismatch => "scheduler result slot mismatch",
            Rule::ChainOutOfOrder => "chain records out of order",
            Rule::ChainRecordCorrupt => "chain record corrupt or unlinked",
            Rule::ChainMaskDivergence => "chain mask digest divergence",
            Rule::ChainTornTail => "chain torn tail",
        }
    }

    /// Every rule, ordered by code.
    #[must_use]
    pub fn all() -> &'static [Rule] {
        &[
            Rule::GateInputUnresolved,
            Rule::GateOutputUnresolved,
            Rule::DanglingDriver,
            Rule::DriverOutputMismatch,
            Rule::LoadListMismatch,
            Rule::CouplingUnresolved,
            Rule::CouplingIndexCorrupt,
            Rule::OutputListCorrupt,
            Rule::FloatingNet,
            Rule::TopoNotPermutation,
            Rule::TopoOrderViolation,
            Rule::NetTopoCorrupt,
            Rule::CombinationalCycle,
            Rule::PwlNonFinite,
            Rule::PwlNonMonotone,
            Rule::WindowInverted,
            Rule::EnvelopeMalformed,
            Rule::TimingNonFinite,
            Rule::EnvelopeCacheStale,
            Rule::DominatedCandidate,
            Rule::DuplicateCandidateSet,
            Rule::OverCapacity,
            Rule::BadDelayNoise,
            Rule::FalseAggressorInSet,
            Rule::SessionCacheIncoherent,
            Rule::CellNotMonotone,
            Rule::BadCapacitance,
            Rule::BadConfig,
            Rule::BatchOrderDependent,
            Rule::CleanCertificateInvalid,
            Rule::CorridorCacheStale,
            Rule::BoundNotMonotone,
            Rule::SchedulerResultSlotMismatch,
            Rule::ChainOutOfOrder,
            Rule::ChainRecordCorrupt,
            Rule::ChainMaskDivergence,
            Rule::ChainTornTail,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.title())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        let codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be unique and listed in order");
    }

    #[test]
    fn display_mentions_code_and_title() {
        let s = Rule::CombinationalCycle.to_string();
        assert!(s.contains("L013"));
        assert!(s.contains("cycle"));
    }
}
