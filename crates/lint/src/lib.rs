//! Static analyzer and invariant verifier for the delay-noise toolkit,
//! modeled on a compiler's IR verifier.
//!
//! The other crates of this workspace maintain their invariants through
//! validated constructors: [`CircuitBuilder`](dna_netlist::CircuitBuilder)
//! rejects cycles and dangling references, [`Pwl::new`](dna_waveform::Pwl::new)
//! rejects non-finite and non-monotone breakpoints, and so on. This crate is
//! the second line of defense — it *re-derives* those invariants from the
//! data, so that corruption introduced by raw-parts escape hatches, future
//! deserializers, or plain bugs in IR-producing code is caught and named
//! instead of silently producing wrong analysis results.
//!
//! The design follows a compiler diagnostics pipeline:
//!
//! * every invariant is a [`Rule`] with a **stable code** (`L001`…) that
//!   scripts and corpora can match on, grouped by pass
//!   (`L00x` referential integrity, `L01x` topology, `L02x` waveforms,
//!   `L03x` engine state, `L04x` library/config, `L05x` semantic damping
//!   certificates, `L06x` scheduler determinism, `L07x` artifact chain
//!   integrity);
//! * every finding is a [`Diagnostic`] with a severity and a span-like
//!   [`Location`];
//! * passes report into a [`Diagnostics`] collector that renders as
//!   plain text or JSON.
//!
//! Entry points, one per artifact kind:
//!
//! * [`lint_circuit`] — referential integrity, topology, capacitance and
//!   library sanity of a [`Circuit`](dna_netlist::Circuit);
//! * [`lint_pwl`] / [`lint_envelope`] — waveform well-formedness;
//! * [`lint_timing`] — arrival windows and slews of a timing table;
//! * [`lint_ilist`] — pairwise non-dominance and capacity of a pruned
//!   candidate list (the paper's irredundant I-list);
//! * [`lint_result`] — a finished top-k answer against its circuit;
//! * [`lint_dirty_closure`] — a what-if session's dirty set against the
//!   mask delta it claims to cover;
//! * [`lint_dirty_closure_certified`] — a semantically damped dirty set
//!   plus its clean certificates against an independently re-derived
//!   prover verdict;
//! * [`lint_sched_replay`] — a work-stealing sweep's result slots and
//!   budget shares against their serial replay;
//! * [`lint_chain`] — a session artifact chain's record ordering, links
//!   and replayability (the crash-safe versioned store);
//! * [`lint_config`] — sanity ranges on analysis knobs.
//!
//! # Example
//!
//! ```
//! use dna_netlist::{CellKind, CircuitBuilder, Library};
//! use dna_lint::lint_circuit;
//!
//! let mut b = CircuitBuilder::new(Library::cmos013());
//! let a = b.input("a");
//! let y = b.gate(CellKind::Inv, "u1", &[a])?;
//! b.output(y);
//! let circuit = b.build()?;
//!
//! let diags = lint_circuit(&circuit);
//! assert!(diags.is_empty(), "{}", diags.render_text());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod circuit;
mod config;
mod diag;
mod engine;
mod rules;
mod waveform;

pub use chain::lint_chain;
pub use circuit::lint_circuit;
pub use config::lint_config;
pub use diag::{Diagnostic, Diagnostics, Location, Severity};
pub use engine::{
    lint_batch_order, lint_dirty_closure, lint_dirty_closure_certified, lint_ilist, lint_result,
    lint_sched_replay,
};
pub use rules::Rule;
pub use waveform::{lint_envelope, lint_pwl, lint_timing};
