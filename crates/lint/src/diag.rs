//! Diagnostics: severities, locations and the collector, modeled on a
//! compiler's diagnostic pipeline.

use std::fmt;
use std::fmt::Write as _;

use crate::Rule;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail a lint run.
    Warning,
    /// An invariant violation; analyses on this input are unsound.
    Error,
}

impl Severity {
    /// Lower-case name as rendered in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the analyzed artifact a diagnostic points — the lint analogue
/// of a compiler's source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A gate instance.
    Gate {
        /// Gate index.
        id: usize,
        /// Instance name (empty when the id itself is out of range).
        name: String,
    },
    /// A net.
    Net {
        /// Net index.
        id: usize,
        /// Net name (empty when the id itself is out of range).
        name: String,
    },
    /// A coupling capacitor.
    Coupling {
        /// Coupling index.
        id: usize,
    },
    /// A breakpoint of a piecewise-linear curve.
    Curve {
        /// Breakpoint index.
        index: usize,
    },
    /// An entry of a candidate list.
    Candidate {
        /// Position in the list.
        index: usize,
    },
    /// A characterized library cell.
    Cell {
        /// Cell kind name.
        name: &'static str,
    },
    /// A configuration field.
    Config {
        /// Field path, e.g. `noise.tolerance`.
        field: &'static str,
    },
    /// A record of a session artifact chain.
    Record {
        /// Generation the record produces (or claims to).
        generation: u64,
    },
    /// The artifact as a whole.
    Global,
}

impl Location {
    /// Lower-case kind tag, used by the JSON rendering.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Location::Gate { .. } => "gate",
            Location::Net { .. } => "net",
            Location::Coupling { .. } => "coupling",
            Location::Curve { .. } => "curve",
            Location::Candidate { .. } => "candidate",
            Location::Cell { .. } => "cell",
            Location::Config { .. } => "config",
            Location::Record { .. } => "record",
            Location::Global => "global",
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Gate { id, name } if name.is_empty() => write!(f, "gate #{id}"),
            Location::Gate { id, name } => write!(f, "gate #{id} `{name}`"),
            Location::Net { id, name } if name.is_empty() => write!(f, "net #{id}"),
            Location::Net { id, name } => write!(f, "net #{id} `{name}`"),
            Location::Coupling { id } => write!(f, "coupling cc{id}"),
            Location::Curve { index } => write!(f, "breakpoint {index}"),
            Location::Candidate { index } => write!(f, "candidate {index}"),
            Location::Cell { name } => write!(f, "cell `{name}`"),
            Location::Config { field } => write!(f, "config `{field}`"),
            Location::Record { generation } => write!(f, "chain record @ generation {generation}"),
            Location::Global => f.write_str("(global)"),
        }
    }
}

/// One finding: a rule violation at a location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Severity (the rule's default).
    pub severity: Severity,
    /// Where the violation is.
    pub location: Location,
    /// Human-readable description of this particular violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.rule.code(), self.location, self.message)
    }
}

/// Collector all lint passes report into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finding with the rule's default severity.
    pub fn report(&mut self, rule: Rule, location: Location, message: impl Into<String>) {
        self.diags.push(Diagnostic {
            rule,
            severity: rule.severity(),
            location,
            message: message.into(),
        });
    }

    /// Absorbs every finding of another collector.
    pub fn merge(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// All findings, in report order (stable: code, then emission order).
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diags.iter()
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether nothing was found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether rule `rule` was violated at least once.
    #[must_use]
    pub fn has(&self, rule: Rule) -> bool {
        self.diags.iter().any(|d| d.rule == rule)
    }

    /// Sorts findings by rule code, keeping emission order within a rule.
    pub fn sort(&mut self) {
        self.diags.sort_by_key(|d| d.rule.code());
    }

    /// Human-readable multi-line report, ending with a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            let _ = writeln!(out, "{d}");
        }
        let _ = write!(
            out,
            "{} error{}, {} warning{}",
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
        );
        out
    }

    /// Machine-readable JSON report: an object with a `diagnostics` array
    /// and summary counts. Hand-rolled (the workspace builds offline, so no
    /// serde) but escapes strings properly.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"location\": {}, \
                 \"message\": \"{}\"}}",
                d.rule.code(),
                d.severity,
                location_json(&d.location),
                escape_json(&d.message),
            );
        }
        if !self.diags.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}",
            self.error_count(),
            self.warning_count()
        );
        out
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

fn location_json(loc: &Location) -> String {
    let mut out = format!("{{\"kind\": \"{}\"", loc.kind());
    match loc {
        Location::Gate { id, name } | Location::Net { id, name } => {
            let _ = write!(out, ", \"id\": {id}, \"name\": \"{}\"", escape_json(name));
        }
        Location::Coupling { id } => {
            let _ = write!(out, ", \"id\": {id}");
        }
        Location::Curve { index } | Location::Candidate { index } => {
            let _ = write!(out, ", \"index\": {index}");
        }
        Location::Cell { name } => {
            let _ = write!(out, ", \"name\": \"{}\"", escape_json(name));
        }
        Location::Config { field } => {
            let _ = write!(out, ", \"field\": \"{}\"", escape_json(field));
        }
        Location::Record { generation } => {
            let _ = write!(out, ", \"generation\": {generation}");
        }
        Location::Global => {}
    }
    out.push('}');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut d = Diagnostics::new();
        d.report(Rule::FloatingNet, Location::Net { id: 3, name: "n3".into() }, "no loads");
        d.report(
            Rule::DanglingDriver,
            Location::Net { id: 1, name: "a\"b".into() },
            "driver #9 does not exist",
        );
        d
    }

    #[test]
    fn counts_and_queries() {
        let d = sample();
        assert_eq!(d.len(), 2);
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.warning_count(), 1);
        assert!(d.has_errors());
        assert!(d.has(Rule::DanglingDriver));
        assert!(!d.has(Rule::CombinationalCycle));
    }

    #[test]
    fn sort_orders_by_code() {
        let mut d = sample();
        d.sort();
        let codes: Vec<&str> = d.iter().map(|x| x.rule.code()).collect();
        assert_eq!(codes, vec!["L003", "L009"]);
    }

    #[test]
    fn text_render_has_summary() {
        let text = sample().render_text();
        assert!(text.contains("error[L003]"));
        assert!(text.contains("warning[L009]"));
        assert!(text.ends_with("1 error, 1 warning"));
    }

    #[test]
    fn json_render_escapes_and_counts() {
        let json = sample().render_json();
        assert!(json.contains("\"rule\": \"L003\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 1"));
        // Empty collector still renders a valid skeleton.
        let empty = Diagnostics::new().render_json();
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn merge_combines() {
        let mut a = sample();
        a.merge(sample());
        assert_eq!(a.len(), 4);
    }
}
