//! Ablation of the paper's two key techniques — pseudo aggressors (§3.1)
//! and dominance pruning (§3.2) — plus the higher-order aggressors of
//! §3.3. The paper attributes its tractability to the first two; this
//! bench measures what each switch costs or saves on a mid-size circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dna_netlist::suite;
use dna_topk::{TopKAnalysis, TopKConfig};

const K: usize = 10;

fn config_variants() -> Vec<(&'static str, TopKConfig)> {
    let base = TopKConfig::default();
    vec![
        ("full", base),
        ("no_dominance", TopKConfig { dominance_pruning: false, ..base }),
        ("no_pseudo", TopKConfig { pseudo_aggressors: false, ..base }),
        ("no_higher_order", TopKConfig { higher_order: false, ..base }),
        ("no_validation", TopKConfig { validate: false, ..base }),
    ]
}

fn ablation_addition(c: &mut Criterion) {
    let circuit = suite::benchmark("i2", dna_bench::DEFAULT_SEED).unwrap();
    let mut group = c.benchmark_group("ablation_addition/i2_k10");
    group.sample_size(10);
    for (label, config) in config_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            let engine = TopKAnalysis::new(&circuit, *cfg);
            b.iter(|| engine.addition_set(K).unwrap());
        });
    }
    group.finish();
}

fn ablation_elimination(c: &mut Criterion) {
    let circuit = suite::benchmark("i1", dna_bench::DEFAULT_SEED).unwrap();
    let mut group = c.benchmark_group("ablation_elimination/i1_k10");
    group.sample_size(10);
    for (label, config) in config_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            let engine = TopKAnalysis::new(&circuit, *cfg);
            b.iter(|| engine.elimination_set(K).unwrap());
        });
    }
    group.finish();
}

fn beam_width_sweep(c: &mut Criterion) {
    let circuit = suite::benchmark("i2", dna_bench::DEFAULT_SEED).unwrap();
    let mut group = c.benchmark_group("beam_width/i2_k10");
    group.sample_size(10);
    for beam in [4usize, 12, 24, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(beam), &beam, |b, &beam| {
            let config = TopKConfig { max_list_width: Some(beam), ..TopKConfig::default() };
            let engine = TopKAnalysis::new(&circuit, config);
            b.iter(|| engine.addition_set(K).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_addition, ablation_elimination, beam_width_sweep);
criterion_main!(benches);
