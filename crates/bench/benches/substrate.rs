//! Microbenchmarks of the substrates the top-k engine is built on: the
//! STA arrival pass, the iterative noise analysis and the waveform
//! algebra hot loop (envelope summation and superposition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dna_netlist::suite;
use dna_noise::{NoiseAnalysis, NoiseConfig};
use dna_sta::{LinearDelayModel, StaConfig, TimingReport};
use dna_waveform::{superposition, Edge, Envelope, NoisePulse, Transition};

fn sta_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_arrival_pass");
    for name in ["i1", "i5", "i10"] {
        let circuit = suite::benchmark(name, dna_bench::DEFAULT_SEED).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn iterative_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterative_noise_analysis");
    group.sample_size(10);
    for name in ["i1", "i3", "i5"] {
        let circuit = suite::benchmark(name, dna_bench::DEFAULT_SEED).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
            b.iter(|| engine.run().unwrap());
        });
    }
    group.finish();
}

fn envelope_algebra(c: &mut Criterion) {
    // Sum of n trapezoids followed by a superposition: the innermost
    // operation of candidate construction.
    let victim = Transition::new(0.0, 20.0, Edge::Rising);
    let mut group = c.benchmark_group("envelope_sum_and_superpose");
    for n in [4usize, 16, 64] {
        let envelopes: Vec<Envelope> = (0..n)
            .map(|i| {
                let pulse = NoisePulse::symmetric(-2.0, 0.05, 6.0);
                Envelope::from_window(&pulse, i as f64, i as f64 + 10.0)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let combined = Envelope::sum_all(envelopes.iter());
                superposition::delay_noise(&victim, &combined)
            });
        });
    }
    group.finish();
}

fn circuit_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_generation");
    group.sample_size(10);
    for name in ["i1", "i5"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| suite::benchmark(name, dna_bench::DEFAULT_SEED).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, sta_arrival, iterative_noise, envelope_algebra, circuit_generation);
criterion_main!(benches);
