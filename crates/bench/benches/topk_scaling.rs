//! Runtime scaling of the top-k algorithms with k and with circuit size —
//! the quantitative backing for the paper's claim that the proposed
//! algorithm "achieves practical runtimes for large values of k" while
//! brute force explodes combinatorially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dna_netlist::suite;
use dna_topk::{brute_force, BruteForceConfig, Mode, TopKAnalysis, TopKConfig};
use std::time::Duration;

fn proposed_vs_k(c: &mut Criterion) {
    let circuit = suite::benchmark("i1", dna_bench::DEFAULT_SEED).unwrap();
    let mut group = c.benchmark_group("addition_set_vs_k/i1");
    group.sample_size(10);
    for k in [1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
            b.iter(|| engine.addition_set(k).unwrap());
        });
    }
    group.finish();
}

fn proposed_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("addition_set_vs_size/k5");
    group.sample_size(10);
    for name in ["i1", "i2", "i3"] {
        let circuit = suite::benchmark(name, dna_bench::DEFAULT_SEED).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
            b.iter(|| engine.addition_set(5).unwrap());
        });
    }
    group.finish();
}

fn elimination_vs_k(c: &mut Criterion) {
    let circuit = suite::benchmark("i1", dna_bench::DEFAULT_SEED).unwrap();
    let mut group = c.benchmark_group("elimination_set_vs_k/i1");
    group.sample_size(10);
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
            b.iter(|| engine.elimination_set(k).unwrap());
        });
    }
    group.finish();
}

fn brute_force_vs_k(c: &mut Criterion) {
    // Tiny circuit so the exhaustive baseline terminates: C(10, k) runs.
    let circuit = dna_netlist::generator::generate(
        &dna_netlist::generator::GeneratorConfig::new(12, 10).with_seed(0),
    )
    .unwrap();
    let cfg =
        BruteForceConfig { time_budget: Duration::from_secs(600), ..BruteForceConfig::default() };
    let mut group = c.benchmark_group("brute_force_vs_k/tiny");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| brute_force(&circuit, &cfg, Mode::Addition, k).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, proposed_vs_k, proposed_vs_size, elimination_vs_k, brute_force_vs_k);
criterion_main!(benches);
