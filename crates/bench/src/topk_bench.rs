//! The tracked top-k scaling benchmark: serial vs. work-stealing sweep.
//!
//! Runs the i1/i5/i10 suite through [`TopKAnalysis`] once per thread
//! configuration and records wall-clock time plus the result fingerprint,
//! so the work-stealing sweep is *measured* against the serial reference
//! path — and proven bit-identical to it — on every tracked run. The
//! report serializes to `BENCH_topk.json` (schema [`SCHEMA`]); the JSON is
//! hand-rolled and hand-parsed because the workspace carries no serde.
//!
//! Entry points: `cargo run -p dna-bench --bin bench_topk` or
//! `dna bench --json`.

use std::time::Instant;

use dna_netlist::{suite, CouplingId, NetId};
use dna_topk::{
    commit_chain, CommitOptions, Damping, MaskDelta, Mode, SaveKind, TopKAnalysis, TopKConfig,
    TopKResult, WhatIfBatch, WhatIfSession,
};

use crate::{Table, DEFAULT_SEED};

/// Schema marker written into (and required from) every report.
///
/// `v2` added the `whatif` section: incremental-vs-full wall clock for the
/// session-based fix loop, gated on bit-identity to the from-scratch run.
///
/// `v3` added the `session_persistence` section: artifact save/load wall
/// clock and size, the cold-load-vs-from-scratch speedup, and a gate that
/// a session resumed from an artifact still answers bit-identically to a
/// from-scratch reference.
///
/// `v4` added the `batch` section (one `apply_batch` over N scenarios vs
/// N sequential `fork().apply` calls, gated on bit-identity) and the
/// `peeled` section (the incremental peel loop vs the from-scratch
/// reference, gated on bit-identity).
///
/// `v5` added the corridor-prover damping fields: `whatif` and `batch`
/// entries report `structural_dirty_victims` / `proven_clean_victims`,
/// and a new `damping` section times the semantic apply against the
/// structural apply on the same delta, gated on bit-identity of both to
/// the from-scratch reference (`identical_to_full`).
///
/// `v6` added the `scheduler` section: work-stealing counters (resolved
/// workers, tasks, steals, tail-task share) of the tracked parallel
/// configuration plus its `speedup_over_serial`, gated `> 1.0` — but the
/// speedup gate is **skipped** (not failed) when the report's
/// `host_threads` is below 4 (a narrow host cannot express the
/// parallelism the gate measures) or when the entry's serial reference
/// ran under 500 ms (smoke-sized circuits are overhead dominated).
/// Identity gates are never skipped.
///
/// `v7` makes that skip *loud*: every scheduler entry carries a
/// `gate_status` string — `"armed"` or `"skipped (<reason>)"` — written
/// at measurement time. The validator re-derives the expected status
/// from `host_threads` and `wall_ms_serial` and rejects a report whose
/// stored status disagrees, so a skipped gate can never masquerade as a
/// passed one, and `dna bench --check` prints each skip with its reason.
///
/// `v8` added the `versioned_store` section: the generation-chain save
/// path (a delta record appended after a weakest-coupling fix — the
/// small-perturbation sensitivity workload) against the full checkpoint
/// rewrite of the same post-apply state, gated on the delta costing
/// under 10% of the checkpoint bytes — armed only in addition mode
/// (elimination's aggressor windows re-derive from the masked noisy
/// timing, so any flip perturbs every victim and the delta is a
/// near-checkpoint by engine construction) and only where the
/// checkpoint is at least 8 MiB, so smoke-sized chains whose fixed
/// framing dominates never fail it (same `gate_status` discipline as
/// v7) — and on the chain tip replaying bit-identically to the live
/// session (`identical_to_full`, never skipped).
pub const SCHEMA: &str = "dna-bench-topk/v8";

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Benchmark circuit names (the paper's scaling suite by default).
    pub circuits: Vec<String>,
    /// The k requested from every addition/elimination run.
    pub k: usize,
    /// Timing samples per configuration; the fastest is reported.
    pub samples: usize,
    /// Circuit generator seed.
    pub seed: u64,
    /// Which engine modes to exercise.
    pub modes: Vec<Mode>,
}

impl Default for BenchSpec {
    fn default() -> Self {
        Self {
            circuits: vec!["i1".into(), "i5".into(), "i10".into()],
            k: 10,
            samples: 1,
            seed: DEFAULT_SEED,
            modes: vec![Mode::Addition, Mode::Elimination],
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Configured [`TopKConfig::threads`] (0 = auto).
    pub threads: usize,
    /// What that configuration resolved to on this host.
    pub effective_threads: usize,
    /// Fastest wall-clock time over the samples, in milliseconds.
    pub wall_ms: f64,
    /// Delay before applying the set, picoseconds.
    pub delay_before_ps: f64,
    /// Delay after applying the set, picoseconds.
    pub delay_after_ps: f64,
    /// Candidates generated before pruning.
    pub generated: usize,
    /// Largest irredundant-list width observed.
    pub peak_list_width: usize,
    /// Whether the result is bit-identical to the serial (`threads: 1`)
    /// run of the same circuit and mode.
    pub identical_to_serial: bool,
}

/// Work-stealing scheduler counters of the tracked parallel configuration
/// (the last entry of [`thread_configs`]) for one circuit × mode, with
/// its wall-clock speedup over the serial reference.
#[derive(Debug, Clone)]
pub struct SchedulerEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Workers the sweep actually ran on (resolved, never the raw 0).
    pub threads: usize,
    /// Victim tasks executed by the sweep.
    pub tasks: usize,
    /// Tasks taken from another worker's deque.
    pub steals: usize,
    /// Share of total busy time spent in the single longest task, in
    /// `[0, 1]` — near 1 means one victim dominates and no scheduler can
    /// help.
    pub tail_task_share: f64,
    /// Fastest serial (`threads = 1`) wall-clock time, milliseconds.
    pub wall_ms_serial: f64,
    /// Fastest wall-clock time of this parallel configuration.
    pub wall_ms_parallel: f64,
    /// `wall_ms_serial / wall_ms_parallel` — the v6 gate requires
    /// `> 1.0` on hosts with at least 4 threads.
    pub speedup_over_serial: f64,
    /// Whether the speedup gate applies to this entry: `"armed"`, or
    /// `"skipped (<reason>)"` naming exactly why (narrow host or a
    /// serial reference under the smoke floor). Recorded at measurement
    /// time and cross-checked by [`validate_json`], so a skipped gate is
    /// always visible in the report and in `dna bench --check` output.
    pub gate_status: String,
}

/// The v7 speedup-gate status for one scheduler entry, derived from the
/// report's host width and the entry's serial reference time. Shared by
/// the runner (which records it) and the validator (which re-derives it
/// and rejects disagreement).
#[must_use]
pub fn speedup_gate_status(host_threads: f64, serial_ms: f64) -> String {
    if host_threads < 4.0 {
        format!(
            "skipped ({host_threads:.0}-thread host cannot express the parallelism; gate needs 4)"
        )
    } else if serial_ms < 500.0 {
        format!("skipped (serial reference {serial_ms:.0} ms is under the 500 ms smoke floor)")
    } else {
        "armed".to_owned()
    }
}

/// One measured what-if fix loop: full analysis, mask out the reported
/// worst set, re-verify incrementally through a [`WhatIfSession`].
#[derive(Debug, Clone)]
pub struct WhatIfEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Fastest wall-clock time of a from-scratch run under the same
    /// reduced mask the incremental run solves, in milliseconds.
    pub full_ms: f64,
    /// Fastest wall-clock time of the incremental re-analysis after
    /// removing the worst set, in milliseconds.
    pub incremental_ms: f64,
    /// Victims re-swept by the incremental run (the dirty cone after
    /// corridor refinement).
    pub recomputed_victims: usize,
    /// Total victims in the circuit.
    pub total_victims: usize,
    /// Victims the structural closure alone would have re-swept.
    pub structural_dirty_victims: usize,
    /// Structurally dirty victims the corridor prover certified clean
    /// (each skip carries a machine-checkable certificate).
    pub proven_clean_victims: usize,
    /// Whether the incremental result is bit-identical to a from-scratch
    /// run under the same mask.
    pub identical_to_full: bool,
}

/// One measured save → load → re-verify cycle of the session artifact
/// path: how much a checksummed artifact costs to write, how much faster
/// resuming from it is than recomputing the session, and whether the
/// resumed session still answers bit-identically.
#[derive(Debug, Clone)]
pub struct PersistEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Fastest wall-clock time to serialize the session, in milliseconds.
    pub save_ms: f64,
    /// Fastest wall-clock time to validate + deserialize the artifact
    /// into a live session (the cold-load path), in milliseconds.
    pub load_ms: f64,
    /// Serialized artifact size in bytes.
    pub artifact_bytes: usize,
    /// Fastest wall-clock time to build the same session from scratch
    /// (full sweep), in milliseconds — the baseline a cold load replaces.
    pub from_scratch_ms: f64,
    /// Whether applying the fix-loop delta to the **loaded** session
    /// produced a result bit-identical to a from-scratch run under the
    /// same mask.
    pub identical_to_full: bool,
}

/// One measured generation-chain save cycle of the versioned store: the
/// delta record appended after a fix apply against the full checkpoint
/// rewrite of the same post-apply state, plus a replay of the chain tip
/// bit-compared to the live session.
#[derive(Debug, Clone)]
pub struct VersionedStoreEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Bytes a full checkpoint of the post-apply session costs — what
    /// every save wrote before the generation chain existed.
    pub checkpoint_bytes: usize,
    /// Bytes the delta append actually wrote for the same state change.
    pub delta_bytes: usize,
    /// `delta_bytes / checkpoint_bytes` — the v8 gate requires `< 0.10`
    /// where it is armed.
    pub delta_fraction: f64,
    /// Fastest wall-clock time of the full checkpoint commit, ms.
    pub checkpoint_ms: f64,
    /// Fastest wall-clock time of the delta append commit, ms.
    pub delta_ms: f64,
    /// The chain's tip generation after the delta commit.
    pub tip_generation: usize,
    /// Whether resuming the chain at its tip reproduced the live
    /// session's result bit-for-bit. Never skipped.
    pub identical_to_full: bool,
    /// Whether the delta-fraction gate applies: `"armed"`, or
    /// `"skipped (<reason>)"` when the checkpoint is under the 8 MiB
    /// floor (fixed record framing dominates tiny chains) or the mode is
    /// elimination (whose aggressor windows re-derive from the masked
    /// noisy timing, so any flip perturbs every victim's state — the
    /// delta is a near-checkpoint by engine construction, see DESIGN.md
    /// §17.4). Recorded at measurement time and cross-checked by
    /// [`validate_json`].
    pub gate_status: String,
}

/// The v8 delta-fraction gate status for one versioned-store entry,
/// derived from its recorded mode and checkpoint size. Shared by the
/// runner (which records it) and the validator (which re-derives it and
/// rejects disagreement).
#[must_use]
pub fn delta_gate_status(mode: &str, checkpoint_bytes: f64) -> String {
    const FLOOR: f64 = 8.0 * 1024.0 * 1024.0;
    if mode == "elimination" {
        "skipped (elimination windows re-derive from the masked noisy timing, so every victim's \
         state shifts on any flip and the delta is a near-checkpoint by construction)"
            .to_owned()
    } else if checkpoint_bytes < FLOOR {
        format!(
            "skipped (checkpoint {checkpoint_bytes:.0} bytes is under the 8 MiB floor where \
             record framing dominates)"
        )
    } else {
        "armed".to_owned()
    }
}

/// One measured batch what-if run: N scenarios evaluated through a single
/// [`dna_topk::WhatIfSession::apply_batch`] sweep, against the same N
/// scenarios run as sequential `fork().apply` calls.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Scenarios submitted to the batch.
    pub scenarios: usize,
    /// Distinct scenarios after flip-set dedup.
    pub distinct_scenarios: usize,
    /// Fastest wall-clock time of the single `apply_batch` call, ms.
    pub batch_ms: f64,
    /// Fastest wall-clock time of the N sequential `fork().apply` calls
    /// answering the same scenarios, ms.
    pub sequential_ms: f64,
    /// Mask-aware structurally dirty victims across all distinct
    /// scenarios (what the batch would re-sweep without the prover).
    pub dirty_victims: usize,
    /// What a mask-oblivious closure would have re-swept instead.
    pub unmasked_dirty_victims: usize,
    /// Structurally dirty victims the corridor prover certified clean
    /// across all distinct scenarios.
    pub proven_clean_victims: usize,
    /// Closure frames actually built by the shared prefix trie.
    pub closure_frames_built: usize,
    /// Closure frames reused from a shared prefix instead of rebuilt.
    pub closure_frames_shared: usize,
    /// Whether every batch scenario is bit-identical to its sequential
    /// `fork().apply` twin.
    pub identical_to_sequential: bool,
}

/// One measured peeled-elimination run: the incremental peel loop (rounds
/// after the first re-sweep only the peeled cones through the session
/// cache) against the from-scratch reference that re-sweeps every round.
#[derive(Debug, Clone)]
pub struct PeelEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Total set size requested across all rounds.
    pub k: usize,
    /// Couplings peeled per round.
    pub step: usize,
    /// Rounds the loop ran (`ceil(k / step)`).
    pub rounds: usize,
    /// Fastest wall-clock time of the from-scratch peel loop, ms.
    pub scratch_ms: f64,
    /// Fastest wall-clock time of the incremental peel loop, ms.
    pub session_ms: f64,
    /// Whether the incremental loop's result is bit-identical to the
    /// from-scratch reference.
    pub identical_to_scratch: bool,
}

/// One measured damping comparison: the same worst-set removal applied
/// once under [`dna_topk::Damping::Semantic`] (corridor prover on) and
/// once under [`dna_topk::Damping::Structural`] (prover off), both
/// bit-compared to a from-scratch run under the same mask.
#[derive(Debug, Clone)]
pub struct DampingEntry {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Engine mode (`"addition"` / `"elimination"`).
    pub mode: String,
    /// Fastest wall-clock time of the semantically damped apply, ms.
    pub semantic_ms: f64,
    /// Fastest wall-clock time of the structurally damped apply, ms.
    pub structural_ms: f64,
    /// Victims the structural closure re-sweeps.
    pub structural_dirty_victims: usize,
    /// Victims the corridor prover certified clean and skipped.
    pub proven_clean_victims: usize,
    /// Clean certificates emitted by the semantic apply (one per skip).
    pub certificates: usize,
    /// Whether the semantic and structural applies are bit-identical to
    /// each other *and* to the from-scratch reference.
    pub identical_to_full: bool,
}

/// A full benchmark run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `std::thread::available_parallelism()` on the measuring host —
    /// read this before comparing serial and parallel wall times: on a
    /// single-core host the sweep degenerates to one worker and no
    /// speedup is possible (or expected).
    pub host_threads: usize,
    /// The k measured.
    pub k: usize,
    /// Timing samples per configuration.
    pub samples: usize,
    /// Circuit generator seed.
    pub seed: u64,
    /// One entry per circuit × mode × thread configuration.
    pub entries: Vec<BenchEntry>,
    /// One entry per circuit × mode: scheduler counters and speedup of
    /// the tracked parallel configuration.
    pub scheduler: Vec<SchedulerEntry>,
    /// One entry per circuit × mode: the incremental fix loop.
    pub whatif: Vec<WhatIfEntry>,
    /// One entry per circuit × mode: the artifact save/load cycle.
    pub session_persistence: Vec<PersistEntry>,
    /// One entry per circuit × mode: delta append vs checkpoint rewrite.
    pub versioned_store: Vec<VersionedStoreEntry>,
    /// One entry per circuit × mode: batch vs sequential what-if.
    pub batch: Vec<BatchEntry>,
    /// One entry per circuit: incremental vs from-scratch peel loop.
    pub peeled: Vec<PeelEntry>,
    /// One entry per circuit × mode: semantic vs structural damping.
    pub damping: Vec<DampingEntry>,
}

/// Everything that must agree between a serial and a parallel run.
/// Wall-clock time and the embedded runtime are deliberately excluded.
#[derive(PartialEq)]
struct Fingerprint {
    set: Vec<CouplingId>,
    sink: NetId,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    Fingerprint {
        set: r.couplings().to_vec(),
        sink: r.sink(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
    }
}

/// The thread configurations one run measures: the serial reference and
/// auto parallelism, plus a forced 4-thread run on single-core hosts so
/// the parallel sweep (and its identity to serial) is exercised even
/// where `0` resolves to one worker.
#[must_use]
pub fn thread_configs() -> Vec<usize> {
    let auto = TopKConfig::default().effective_threads();
    if auto == 1 {
        vec![1, 0, 4]
    } else {
        vec![1, 0]
    }
}

/// Runs the benchmark matrix.
///
/// Validation is disabled ([`TopKConfig::validate`] = false) so the
/// timings isolate the enumeration sweep this benchmark tracks, not the
/// iterative noise analysis replaying the winner.
///
/// # Errors
///
/// Returns a message for unknown circuit names or engine failures.
pub fn run(spec: &BenchSpec) -> Result<BenchReport, String> {
    // Resolve host parallelism exactly once; every `threads = 0` entry
    // below reports this count instead of re-resolving (or echoing 1).
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let configs = thread_configs();
    let sched_config = *configs.last().expect("thread_configs is never empty");
    let mut entries = Vec::new();
    let mut scheduler = Vec::new();
    let mut whatif = Vec::new();
    let mut session_persistence = Vec::new();
    let mut versioned_store = Vec::new();
    let mut batch = Vec::new();
    let mut peeled = Vec::new();
    let mut damping = Vec::new();
    for name in &spec.circuits {
        let circuit = suite::benchmark(name, spec.seed).map_err(|e| e.to_string())?;
        peeled.push(bench_peeled(&circuit, name, spec)?);
        for &mode in &spec.modes {
            whatif.push(bench_whatif(&circuit, name, mode, spec)?);
            session_persistence.push(bench_persist(&circuit, name, mode, spec)?);
            versioned_store.push(bench_versioned_store(&circuit, name, mode, spec)?);
            batch.push(bench_batch(&circuit, name, mode, spec)?);
            damping.push(bench_damping(&circuit, name, mode, spec)?);
            let mut serial: Option<Fingerprint> = None;
            let mut serial_ms = f64::INFINITY;
            for &threads in &configs {
                let config = TopKConfig { threads, validate: false, ..TopKConfig::default() };
                let engine = TopKAnalysis::new(&circuit, config);
                let mut wall_ms = f64::INFINITY;
                let mut result = None;
                for _ in 0..spec.samples.max(1) {
                    let start = Instant::now();
                    let r = match mode {
                        Mode::Addition => engine.addition_set(spec.k),
                        Mode::Elimination => engine.elimination_set(spec.k),
                    }
                    .map_err(|e| e.to_string())?;
                    wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
                    result = Some(r);
                }
                let r = result.expect("samples >= 1");
                let fp = fingerprint(&r);
                let identical_to_serial = match &serial {
                    // The first configuration *is* the serial reference.
                    None => {
                        serial = Some(fp);
                        serial_ms = wall_ms;
                        true
                    }
                    Some(reference) => *reference == fp,
                };
                if threads == sched_config && threads != 1 {
                    let s = r.scheduler_stats();
                    // Derive the gate status from the serial time as it
                    // will be serialized (3 decimals), so the validator's
                    // re-derivation from the JSON can never disagree at
                    // the floor boundary.
                    let serial_as_written = (serial_ms * 1e3).round() / 1e3;
                    scheduler.push(SchedulerEntry {
                        circuit: name.clone(),
                        mode: mode.name().to_owned(),
                        threads: s.threads(),
                        tasks: s.tasks(),
                        steals: s.steals(),
                        tail_task_share: s.tail_task_share(),
                        wall_ms_serial: serial_ms,
                        wall_ms_parallel: wall_ms,
                        speedup_over_serial: serial_ms / wall_ms.max(1e-9),
                        gate_status: speedup_gate_status(host_threads as f64, serial_as_written),
                    });
                }
                entries.push(BenchEntry {
                    circuit: name.clone(),
                    mode: mode.name().to_owned(),
                    threads,
                    effective_threads: if threads == 0 { host_threads } else { threads },
                    wall_ms,
                    delay_before_ps: r.delay_before(),
                    delay_after_ps: r.delay_after(),
                    generated: r.generated_candidates(),
                    peak_list_width: r.peak_list_width(),
                    identical_to_serial,
                });
            }
        }
    }
    Ok(BenchReport {
        host_threads,
        k: spec.k,
        samples: spec.samples,
        seed: spec.seed,
        entries,
        scheduler,
        whatif,
        session_persistence,
        versioned_store,
        batch,
        peeled,
        damping,
    })
}

/// Measures one damping comparison: the same fix-loop delta applied once
/// with the corridor prover on ([`Damping::Semantic`], the default) and
/// once with it off ([`Damping::Structural`]), both cross-checked for
/// bit-identity against each other and against a from-scratch run under
/// the same mask — the contract that semantic damping never changes an
/// output bit, only removes re-sweep work it can certify.
fn bench_damping(
    circuit: &dna_netlist::Circuit,
    name: &str,
    mode: Mode,
    spec: &BenchSpec,
) -> Result<DampingEntry, String> {
    let semantic_cfg =
        TopKConfig { validate: false, damping: Damping::Semantic, ..TopKConfig::default() };
    let structural_cfg = TopKConfig { damping: Damping::Structural, ..semantic_cfg };
    let sem_engine = TopKAnalysis::new(circuit, semantic_cfg);
    let str_engine = TopKAnalysis::new(circuit, structural_cfg);
    let mut semantic_ms = f64::INFINITY;
    let mut structural_ms = f64::INFINITY;
    let mut measured = None;
    for _ in 0..spec.samples.max(1) {
        let mut sem = WhatIfSession::start(&sem_engine, mode, spec.k).map_err(|e| e.to_string())?;
        let fix: Vec<CouplingId> = sem.result().couplings().to_vec();
        let delta = MaskDelta::remove(&fix);

        let start = Instant::now();
        let sem_out = sem.apply(&delta).map_err(|e| e.to_string())?;
        semantic_ms = semantic_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let mut st = WhatIfSession::start(&str_engine, mode, spec.k).map_err(|e| e.to_string())?;
        let start = Instant::now();
        let str_out = st.apply(&delta).map_err(|e| e.to_string())?;
        structural_ms = structural_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let scratch =
            sem_engine.run_with_mask(mode, spec.k, sem.mask()).map_err(|e| e.to_string())?;
        let identical = fingerprint(sem_out.result()) == fingerprint(str_out.result())
            && fingerprint(sem_out.result()) == fingerprint(&scratch);
        measured = Some((
            sem_out.structural_dirty_victims(),
            sem_out.proven_clean_victims(),
            sem_out.certificates().len(),
            identical,
        ));
    }
    let (structural_dirty_victims, proven_clean_victims, certificates, identical_to_full) =
        measured.expect("samples >= 1");
    Ok(DampingEntry {
        circuit: name.to_owned(),
        mode: mode.name().to_owned(),
        semantic_ms,
        structural_ms,
        structural_dirty_victims,
        proven_clean_victims,
        certificates,
        identical_to_full,
    })
}

/// Measures one batch what-if run: start a session, submit the fix-triage
/// scenario menu (single removal of each of the worst set's first three
/// couplings, the whole set at once, and a duplicate of the whole set —
/// concurrent triage traffic repeats queries, and flip-set dedup is part
/// of what the batch engine amortizes) as one batch, then answer the
/// same scenarios with sequential `fork().apply` calls and cross-check
/// every pair for bit-identity.
fn bench_batch(
    circuit: &dna_netlist::Circuit,
    name: &str,
    mode: Mode,
    spec: &BenchSpec,
) -> Result<BatchEntry, String> {
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    let mut batch_ms = f64::INFINITY;
    let mut sequential_ms = f64::INFINITY;
    let mut measured = None;
    for _ in 0..spec.samples.max(1) {
        let session = WhatIfSession::start(&engine, mode, spec.k).map_err(|e| e.to_string())?;
        let fix: Vec<CouplingId> = session.result().couplings().to_vec();
        let mut scenarios = WhatIfBatch::new();
        for &c in fix.iter().take(3) {
            scenarios.push(MaskDelta::remove(&[c]));
        }
        scenarios.push(MaskDelta::remove(&fix));
        scenarios.push(MaskDelta::remove(&fix));

        let start = Instant::now();
        let out = session.apply_batch(&scenarios).map_err(|e| e.to_string())?;
        batch_ms = batch_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let sequential: Vec<_> = scenarios
            .deltas()
            .iter()
            .map(|delta| session.fork().apply(delta))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        sequential_ms = sequential_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let identical = out
            .scenarios()
            .iter()
            .zip(&sequential)
            .all(|(b, s)| fingerprint(b.result()) == fingerprint(s.result()));
        measured = Some((scenarios.len(), out.stats(), identical));
    }
    let (submitted, stats, identical_to_sequential) = measured.expect("samples >= 1");
    Ok(BatchEntry {
        circuit: name.to_owned(),
        mode: mode.name().to_owned(),
        scenarios: submitted,
        distinct_scenarios: stats.distinct_scenarios(),
        batch_ms,
        sequential_ms,
        dirty_victims: stats.dirty_victims(),
        unmasked_dirty_victims: stats.unmasked_dirty_victims(),
        proven_clean_victims: stats.proven_clean_victims(),
        closure_frames_built: stats.closure_frames_built(),
        closure_frames_shared: stats.closure_frames_shared(),
        identical_to_sequential,
    })
}

/// Measures one peeled-elimination run (elimination only — peeling is an
/// elimination-mode loop): the incremental session-cached peel against
/// the from-scratch reference, bit-compared. `k` is floored at 4 and the
/// step set to `k / 2` so the loop always runs at least two rounds — the
/// second round is where the incremental path starts paying off.
fn bench_peeled(
    circuit: &dna_netlist::Circuit,
    name: &str,
    spec: &BenchSpec,
) -> Result<PeelEntry, String> {
    let k = spec.k.max(4);
    let step = (k / 2).max(1);
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    let mut scratch_ms = f64::INFINITY;
    let mut session_ms = f64::INFINITY;
    let mut identical = None;
    for _ in 0..spec.samples.max(1) {
        let start = Instant::now();
        let inc = engine.elimination_set_peeled(k, step).map_err(|e| e.to_string())?;
        session_ms = session_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let scr = engine.elimination_set_peeled_scratch(k, step).map_err(|e| e.to_string())?;
        scratch_ms = scratch_ms.min(start.elapsed().as_secs_f64() * 1e3);

        identical = Some(fingerprint(&inc) == fingerprint(&scr));
    }
    Ok(PeelEntry {
        circuit: name.to_owned(),
        k,
        step,
        rounds: k.div_ceil(step),
        scratch_ms,
        session_ms,
        identical_to_scratch: identical.expect("samples >= 1"),
    })
}

/// Measures one incremental fix loop: full run (session start), remove
/// the reported worst set, re-verify incrementally, and cross-check the
/// incremental answer against a from-scratch run under the same mask.
///
/// `full_ms` times that from-scratch reference — the *same* reduced-mask
/// instance the incremental run solves — so the speedup column compares
/// like with like (the initial session start solves a different, full-mask
/// instance and is deliberately not the baseline).
fn bench_whatif(
    circuit: &dna_netlist::Circuit,
    name: &str,
    mode: Mode,
    spec: &BenchSpec,
) -> Result<WhatIfEntry, String> {
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    let mut full_ms = f64::INFINITY;
    let mut incremental_ms = f64::INFINITY;
    let mut measured = None;
    for _ in 0..spec.samples.max(1) {
        let mut session = WhatIfSession::start(&engine, mode, spec.k).map_err(|e| e.to_string())?;
        let fix: Vec<CouplingId> = session.result().couplings().to_vec();
        let start = Instant::now();
        let outcome = session.apply(&MaskDelta::remove(&fix)).map_err(|e| e.to_string())?;
        incremental_ms = incremental_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let scratch =
            engine.run_with_mask(mode, spec.k, session.mask()).map_err(|e| e.to_string())?;
        full_ms = full_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let identical = fingerprint(outcome.result()) == fingerprint(&scratch);
        measured = Some((
            outcome.recomputed_victims(),
            outcome.total_victims(),
            outcome.structural_dirty_victims(),
            outcome.proven_clean_victims(),
            identical,
        ));
    }
    let (
        recomputed_victims,
        total_victims,
        structural_dirty_victims,
        proven_clean_victims,
        identical_to_full,
    ) = measured.expect("samples >= 1");
    Ok(WhatIfEntry {
        circuit: name.to_owned(),
        mode: mode.name().to_owned(),
        full_ms,
        incremental_ms,
        recomputed_victims,
        total_victims,
        structural_dirty_victims,
        proven_clean_victims,
        identical_to_full,
    })
}

/// Measures one artifact cycle: build a session, serialize it, resume a
/// fresh session from the bytes, then run the fix loop **on the resumed
/// session** and cross-check it against a from-scratch run under the same
/// mask. `from_scratch_ms` times the session build the cold load replaces;
/// the report's speedup column is `from_scratch_ms / load_ms`.
fn bench_persist(
    circuit: &dna_netlist::Circuit,
    name: &str,
    mode: Mode,
    spec: &BenchSpec,
) -> Result<PersistEntry, String> {
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    let mut save_ms = f64::INFINITY;
    let mut load_ms = f64::INFINITY;
    let mut from_scratch_ms = f64::INFINITY;
    let mut artifact_bytes = 0;
    let mut identical = None;
    for _ in 0..spec.samples.max(1) {
        let start = Instant::now();
        let session = WhatIfSession::start(&engine, mode, spec.k).map_err(|e| e.to_string())?;
        from_scratch_ms = from_scratch_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let artifact = session.save_artifact();
        save_ms = save_ms.min(start.elapsed().as_secs_f64() * 1e3);
        artifact_bytes = artifact.len();
        drop(session);

        let start = Instant::now();
        let mut loaded = WhatIfSession::resume(&engine, &artifact).map_err(|e| e.to_string())?;
        load_ms = load_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let fix: Vec<CouplingId> = loaded.result().couplings().to_vec();
        let outcome = loaded.apply(&MaskDelta::remove(&fix)).map_err(|e| e.to_string())?;
        let scratch =
            engine.run_with_mask(mode, spec.k, loaded.mask()).map_err(|e| e.to_string())?;
        identical = Some(fingerprint(outcome.result()) == fingerprint(&scratch));
    }
    Ok(PersistEntry {
        circuit: name.to_owned(),
        mode: mode.name().to_owned(),
        save_ms,
        load_ms,
        artifact_bytes,
        from_scratch_ms,
        identical_to_full: identical.expect("samples >= 1"),
    })
}

/// Measures one generation-chain save cycle: checkpoint a session (the
/// chain base), apply a *small* fix — the weakest enabled coupling in
/// the design, the "small perturbation should cost small re-analysis"
/// sensitivity workload — commit again (which appends one delta record),
/// then commit the same post-apply state as a full checkpoint to a
/// sibling file (what every save cost before the chain existed). The
/// replay gate resumes the chain at its tip and bit-compares against the
/// live session.
fn bench_versioned_store(
    circuit: &dna_netlist::Circuit,
    name: &str,
    mode: Mode,
    spec: &BenchSpec,
) -> Result<VersionedStoreEntry, String> {
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    let dir = std::env::temp_dir().join("dna_bench_chain");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let pid = std::process::id();
    let chain = dir.join(format!("{name}-{}-{pid}.dnawifa", mode.name()));
    let full = dir.join(format!("{name}-{}-{pid}-full.dnawifa", mode.name()));
    let mut delta_ms = f64::INFINITY;
    let mut checkpoint_ms = f64::INFINITY;
    let mut measured = None;
    for _ in 0..spec.samples.max(1) {
        let _ = std::fs::remove_file(&chain);
        let mut session = WhatIfSession::start(&engine, mode, spec.k).map_err(|e| e.to_string())?;
        commit_chain(&mut session, &chain, &CommitOptions::default()).map_err(|e| e.to_string())?;
        let weakest = (0..circuit.num_couplings())
            .map(|i| CouplingId::new(i as u32))
            .min_by(|&a, &b| {
                circuit
                    .coupling(a)
                    .cap()
                    .total_cmp(&circuit.coupling(b).cap())
                    .then(a.index().cmp(&b.index()))
            })
            .ok_or("versioned store: circuit has no couplings")?;
        session.apply(&MaskDelta::remove(&[weakest])).map_err(|e| e.to_string())?;

        let start = Instant::now();
        let delta = commit_chain(&mut session, &chain, &CommitOptions::default())
            .map_err(|e| e.to_string())?;
        delta_ms = delta_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if !matches!(delta.kind, SaveKind::Delta(_)) {
            return Err(format!("versioned store: expected a delta append, got {:?}", delta.kind));
        }

        let start = Instant::now();
        let checkpoint = commit_chain(
            &mut session,
            &full,
            &CommitOptions { force_checkpoint: true, ..CommitOptions::default() },
        )
        .map_err(|e| e.to_string())?;
        checkpoint_ms = checkpoint_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let bytes = std::fs::read(&chain).map_err(|e| e.to_string())?;
        let replayed = WhatIfSession::resume_at(&engine, &bytes, delta.generation)
            .map_err(|e| e.to_string())?;
        let identical = fingerprint(replayed.result()) == fingerprint(session.result());
        measured = Some((
            delta.bytes_written as usize,
            checkpoint.bytes_written as usize,
            delta.generation as usize,
            identical,
        ));
    }
    let _ = std::fs::remove_file(&chain);
    let _ = std::fs::remove_file(&full);
    let (delta_bytes, checkpoint_bytes, tip_generation, identical_to_full) =
        measured.expect("samples >= 1");
    Ok(VersionedStoreEntry {
        circuit: name.to_owned(),
        mode: mode.name().to_owned(),
        checkpoint_bytes,
        delta_bytes,
        delta_fraction: delta_bytes as f64 / (checkpoint_bytes as f64).max(1.0),
        checkpoint_ms,
        delta_ms,
        tip_generation,
        identical_to_full,
        gate_status: delta_gate_status(mode.name(), checkpoint_bytes as f64),
    })
}

impl BenchReport {
    /// Serializes the report (schema [`SCHEMA`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"k\": {},\n", self.k));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"threads\": {},\n", e.threads));
            out.push_str(&format!("      \"effective_threads\": {},\n", e.effective_threads));
            out.push_str(&format!("      \"wall_ms\": {:.3},\n", e.wall_ms));
            out.push_str(&format!("      \"delay_before_ps\": {:.6},\n", e.delay_before_ps));
            out.push_str(&format!("      \"delay_after_ps\": {:.6},\n", e.delay_after_ps));
            out.push_str(&format!("      \"generated\": {},\n", e.generated));
            out.push_str(&format!("      \"peak_list_width\": {},\n", e.peak_list_width));
            out.push_str(&format!("      \"identical_to_serial\": {}\n", e.identical_to_serial));
            out.push_str(if i + 1 < self.entries.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"scheduler\": [\n");
        for (i, e) in self.scheduler.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"threads\": {},\n", e.threads));
            out.push_str(&format!("      \"tasks\": {},\n", e.tasks));
            out.push_str(&format!("      \"steals\": {},\n", e.steals));
            out.push_str(&format!("      \"tail_task_share\": {:.6},\n", e.tail_task_share));
            out.push_str(&format!("      \"wall_ms_serial\": {:.3},\n", e.wall_ms_serial));
            out.push_str(&format!("      \"wall_ms_parallel\": {:.3},\n", e.wall_ms_parallel));
            out.push_str(&format!(
                "      \"speedup_over_serial\": {:.3},\n",
                e.speedup_over_serial
            ));
            out.push_str(&format!("      \"gate_status\": {}\n", json_string(&e.gate_status)));
            out.push_str(if i + 1 < self.scheduler.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"whatif\": [\n");
        for (i, e) in self.whatif.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"full_ms\": {:.3},\n", e.full_ms));
            out.push_str(&format!("      \"incremental_ms\": {:.3},\n", e.incremental_ms));
            out.push_str(&format!("      \"recomputed_victims\": {},\n", e.recomputed_victims));
            out.push_str(&format!("      \"total_victims\": {},\n", e.total_victims));
            out.push_str(&format!(
                "      \"structural_dirty_victims\": {},\n",
                e.structural_dirty_victims
            ));
            out.push_str(&format!("      \"proven_clean_victims\": {},\n", e.proven_clean_victims));
            out.push_str(&format!("      \"identical_to_full\": {}\n", e.identical_to_full));
            out.push_str(if i + 1 < self.whatif.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"session_persistence\": [\n");
        for (i, e) in self.session_persistence.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"save_ms\": {:.3},\n", e.save_ms));
            out.push_str(&format!("      \"load_ms\": {:.3},\n", e.load_ms));
            out.push_str(&format!("      \"artifact_bytes\": {},\n", e.artifact_bytes));
            out.push_str(&format!("      \"from_scratch_ms\": {:.3},\n", e.from_scratch_ms));
            out.push_str(&format!("      \"identical_to_full\": {}\n", e.identical_to_full));
            out.push_str(if i + 1 < self.session_persistence.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"versioned_store\": [\n");
        for (i, e) in self.versioned_store.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"checkpoint_bytes\": {},\n", e.checkpoint_bytes));
            out.push_str(&format!("      \"delta_bytes\": {},\n", e.delta_bytes));
            out.push_str(&format!("      \"delta_fraction\": {:.6},\n", e.delta_fraction));
            out.push_str(&format!("      \"checkpoint_ms\": {:.3},\n", e.checkpoint_ms));
            out.push_str(&format!("      \"delta_ms\": {:.3},\n", e.delta_ms));
            out.push_str(&format!("      \"tip_generation\": {},\n", e.tip_generation));
            out.push_str(&format!("      \"identical_to_full\": {},\n", e.identical_to_full));
            out.push_str(&format!("      \"gate_status\": {}\n", json_string(&e.gate_status)));
            out.push_str(if i + 1 < self.versioned_store.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"batch\": [\n");
        for (i, e) in self.batch.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"scenarios\": {},\n", e.scenarios));
            out.push_str(&format!("      \"distinct_scenarios\": {},\n", e.distinct_scenarios));
            out.push_str(&format!("      \"batch_ms\": {:.3},\n", e.batch_ms));
            out.push_str(&format!("      \"sequential_ms\": {:.3},\n", e.sequential_ms));
            out.push_str(&format!("      \"dirty_victims\": {},\n", e.dirty_victims));
            out.push_str(&format!(
                "      \"unmasked_dirty_victims\": {},\n",
                e.unmasked_dirty_victims
            ));
            out.push_str(&format!("      \"proven_clean_victims\": {},\n", e.proven_clean_victims));
            out.push_str(&format!("      \"closure_frames_built\": {},\n", e.closure_frames_built));
            out.push_str(&format!(
                "      \"closure_frames_shared\": {},\n",
                e.closure_frames_shared
            ));
            out.push_str(&format!(
                "      \"identical_to_sequential\": {}\n",
                e.identical_to_sequential
            ));
            out.push_str(if i + 1 < self.batch.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"peeled\": [\n");
        for (i, e) in self.peeled.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"k\": {},\n", e.k));
            out.push_str(&format!("      \"step\": {},\n", e.step));
            out.push_str(&format!("      \"rounds\": {},\n", e.rounds));
            out.push_str(&format!("      \"scratch_ms\": {:.3},\n", e.scratch_ms));
            out.push_str(&format!("      \"session_ms\": {:.3},\n", e.session_ms));
            out.push_str(&format!("      \"identical_to_scratch\": {}\n", e.identical_to_scratch));
            out.push_str(if i + 1 < self.peeled.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"damping\": [\n");
        for (i, e) in self.damping.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"circuit\": {},\n", json_string(&e.circuit)));
            out.push_str(&format!("      \"mode\": {},\n", json_string(&e.mode)));
            out.push_str(&format!("      \"semantic_ms\": {:.3},\n", e.semantic_ms));
            out.push_str(&format!("      \"structural_ms\": {:.3},\n", e.structural_ms));
            out.push_str(&format!(
                "      \"structural_dirty_victims\": {},\n",
                e.structural_dirty_victims
            ));
            out.push_str(&format!("      \"proven_clean_victims\": {},\n", e.proven_clean_victims));
            out.push_str(&format!("      \"certificates\": {},\n", e.certificates));
            out.push_str(&format!("      \"identical_to_full\": {}\n", e.identical_to_full));
            out.push_str(if i + 1 < self.damping.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report as an aligned text table, with a speedup column
    /// comparing each configuration against the serial run of the same
    /// circuit and mode.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut table = Table::new(&[
            "circuit",
            "mode",
            "threads",
            "eff",
            "wall ms",
            "speedup",
            "width",
            "generated",
            "identical",
        ]);
        for e in &self.entries {
            let serial_ms = self
                .entries
                .iter()
                .find(|s| s.circuit == e.circuit && s.mode == e.mode && s.threads == 1)
                .map_or(e.wall_ms, |s| s.wall_ms);
            table.row(vec![
                e.circuit.clone(),
                e.mode.clone(),
                e.threads.to_string(),
                e.effective_threads.to_string(),
                format!("{:.1}", e.wall_ms),
                format!("{:.2}x", serial_ms / e.wall_ms.max(1e-9)),
                e.peak_list_width.to_string(),
                e.generated.to_string(),
                if e.identical_to_serial { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        let mut out = table.render();
        if !self.scheduler.is_empty() {
            let mut stable = Table::new(&[
                "circuit",
                "mode",
                "workers",
                "tasks",
                "steals",
                "tail share",
                "serial ms",
                "parallel ms",
                "speedup",
                "gate",
            ]);
            for e in &self.scheduler {
                stable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    e.threads.to_string(),
                    e.tasks.to_string(),
                    e.steals.to_string(),
                    format!("{:.0}%", e.tail_task_share * 100.0),
                    format!("{:.1}", e.wall_ms_serial),
                    format!("{:.1}", e.wall_ms_parallel),
                    format!("{:.2}x", e.speedup_over_serial),
                    e.gate_status.clone(),
                ]);
            }
            out.push_str("\nwork-stealing scheduler (tracked parallel configuration):\n");
            out.push_str(&stable.render());
        }
        if !self.whatif.is_empty() {
            let mut wtable = Table::new(&[
                "circuit",
                "mode",
                "full ms",
                "incr ms",
                "speedup",
                "reswept",
                "clean",
                "total",
                "identical",
            ]);
            for e in &self.whatif {
                wtable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    format!("{:.1}", e.full_ms),
                    format!("{:.1}", e.incremental_ms),
                    format!("{:.2}x", e.full_ms / e.incremental_ms.max(1e-9)),
                    e.recomputed_victims.to_string(),
                    e.proven_clean_victims.to_string(),
                    e.total_victims.to_string(),
                    if e.identical_to_full { "yes" } else { "NO" }.to_owned(),
                ]);
            }
            out.push_str("\nwhat-if fix loop (incremental vs full re-analysis):\n");
            out.push_str(&wtable.render());
        }
        if !self.session_persistence.is_empty() {
            let mut ptable = Table::new(&[
                "circuit",
                "mode",
                "save ms",
                "load ms",
                "bytes",
                "scratch ms",
                "cold-load speedup",
                "identical",
            ]);
            for e in &self.session_persistence {
                ptable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    format!("{:.2}", e.save_ms),
                    format!("{:.2}", e.load_ms),
                    e.artifact_bytes.to_string(),
                    format!("{:.1}", e.from_scratch_ms),
                    format!("{:.2}x", e.from_scratch_ms / e.load_ms.max(1e-9)),
                    if e.identical_to_full { "yes" } else { "NO" }.to_owned(),
                ]);
            }
            out.push_str("\nsession persistence (artifact save/load vs from-scratch build):\n");
            out.push_str(&ptable.render());
        }
        if !self.versioned_store.is_empty() {
            let mut vtable = Table::new(&[
                "circuit",
                "mode",
                "checkpoint B",
                "delta B",
                "fraction",
                "ckpt ms",
                "delta ms",
                "tip",
                "identical",
                "gate",
            ]);
            for e in &self.versioned_store {
                vtable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    e.checkpoint_bytes.to_string(),
                    e.delta_bytes.to_string(),
                    format!("{:.4}", e.delta_fraction),
                    format!("{:.2}", e.checkpoint_ms),
                    format!("{:.2}", e.delta_ms),
                    e.tip_generation.to_string(),
                    if e.identical_to_full { "yes" } else { "NO" }.to_owned(),
                    e.gate_status.clone(),
                ]);
            }
            out.push_str("\nversioned store (delta append vs full checkpoint rewrite):\n");
            out.push_str(&vtable.render());
        }
        if !self.batch.is_empty() {
            let mut btable = Table::new(&[
                "circuit",
                "mode",
                "scenarios",
                "batch ms",
                "seq ms",
                "speedup",
                "dirty",
                "unmasked",
                "frames",
                "identical",
            ]);
            for e in &self.batch {
                btable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    format!("{} ({})", e.scenarios, e.distinct_scenarios),
                    format!("{:.1}", e.batch_ms),
                    format!("{:.1}", e.sequential_ms),
                    format!("{:.2}x", e.sequential_ms / e.batch_ms.max(1e-9)),
                    e.dirty_victims.to_string(),
                    e.unmasked_dirty_victims.to_string(),
                    format!("{}+{}", e.closure_frames_built, e.closure_frames_shared),
                    if e.identical_to_sequential { "yes" } else { "NO" }.to_owned(),
                ]);
            }
            out.push_str("\nbatch what-if (one shared sweep vs N sequential applies):\n");
            out.push_str(&btable.render());
        }
        if !self.peeled.is_empty() {
            let mut ptable = Table::new(&[
                "circuit",
                "k",
                "step",
                "rounds",
                "scratch ms",
                "session ms",
                "speedup",
                "identical",
            ]);
            for e in &self.peeled {
                ptable.row(vec![
                    e.circuit.clone(),
                    e.k.to_string(),
                    e.step.to_string(),
                    e.rounds.to_string(),
                    format!("{:.1}", e.scratch_ms),
                    format!("{:.1}", e.session_ms),
                    format!("{:.2}x", e.scratch_ms / e.session_ms.max(1e-9)),
                    if e.identical_to_scratch { "yes" } else { "NO" }.to_owned(),
                ]);
            }
            out.push_str("\npeeled elimination (incremental rounds vs from-scratch):\n");
            out.push_str(&ptable.render());
        }
        if !self.damping.is_empty() {
            let mut dtable = Table::new(&[
                "circuit",
                "mode",
                "semantic ms",
                "structural ms",
                "struct dirty",
                "proven clean",
                "certs",
                "identical",
            ]);
            for e in &self.damping {
                dtable.row(vec![
                    e.circuit.clone(),
                    e.mode.clone(),
                    format!("{:.1}", e.semantic_ms),
                    format!("{:.1}", e.structural_ms),
                    e.structural_dirty_victims.to_string(),
                    e.proven_clean_victims.to_string(),
                    e.certificates.to_string(),
                    if e.identical_to_full { "yes" } else { "NO" }.to_owned(),
                ]);
            }
            out.push_str("\ncorridor damping (semantic vs structural dirty closure):\n");
            out.push_str(&dtable.render());
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value — just enough of the grammar to audit a report.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_owned())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Audits a serialized report: well-formed JSON, the [`SCHEMA`] marker,
/// every required field, non-empty `entries`, `whatif`,
/// `session_persistence`, `versioned_store`, `batch`, `peeled`, and
/// `damping` lists — and,
/// semantically, that every entry reported results identical to its
/// serial reference, every what-if loop and resumed session identical to
/// its from-scratch reference, every batch scenario identical to its
/// sequential twin, every chain-tip replay identical to its live
/// session (with the delta-fraction gate where the checkpoint clears
/// the 8 MiB floor), every incremental peel identical to the
/// from-scratch peel, and every semantically damped apply identical to its structural
/// and from-scratch references (the CI gates for the work-stealing
/// sweep, the incremental session path, the batch engine, and the
/// corridor prover) — and that the scheduler section's parallel
/// configuration beat serial wherever the speedup gate applies.
///
/// # Errors
///
/// Returns a message describing the first problem found.
pub fn validate_json(text: &str) -> Result<(), String> {
    validate_json_notes(text).map(|_notes| ())
}

/// [`validate_json`], but also returns one note line per gate the report
/// skipped (e.g. `scheduler i5/addition speedup gate: skipped (...)`).
/// `dna bench --check` prints these so a skipped gate is never silent.
///
/// # Errors
///
/// Returns a message describing the first problem found.
pub fn validate_json_notes(text: &str) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();
    let report = parse(text)?;
    match report.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(Json::Str(s)) => return Err(format!("unknown schema `{s}` (expected `{SCHEMA}`)")),
        _ => return Err("missing `schema` marker".into()),
    }
    for field in ["host_threads", "k", "samples", "seed"] {
        if report.get(field).and_then(Json::as_num).is_none() {
            return Err(format!("missing or non-numeric `{field}`"));
        }
    }
    let entries = match report.get("entries") {
        Some(Json::Arr(entries)) if !entries.is_empty() => entries,
        Some(Json::Arr(_)) => return Err("`entries` is empty".into()),
        _ => return Err("missing `entries` array".into()),
    };
    for (i, entry) in entries.iter().enumerate() {
        for field in ["wall_ms", "threads", "effective_threads", "generated", "peak_list_width"] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("entry {i}: missing `{field}`"));
            }
        }
        match entry.get("identical_to_serial") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!("entry {i}: parallel result differs from the serial reference"))
            }
            _ => return Err(format!("entry {i}: missing `identical_to_serial`")),
        }
    }
    let host_threads =
        report.get("host_threads").and_then(Json::as_num).expect("checked numeric above");
    let scheduler = match report.get("scheduler") {
        Some(Json::Arr(s)) if !s.is_empty() => s,
        Some(Json::Arr(_)) => return Err("`scheduler` is empty".into()),
        _ => return Err("missing `scheduler` array (required by v6)".into()),
    };
    for (i, entry) in scheduler.iter().enumerate() {
        for field in [
            "threads",
            "tasks",
            "steals",
            "tail_task_share",
            "wall_ms_serial",
            "wall_ms_parallel",
            "speedup_over_serial",
        ] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("scheduler entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("scheduler entry {i}: missing `{field}`"));
            }
        }
        // The speedup gate only means something where the host can run
        // the workers it measures: on narrow hosts (< 4 threads) the
        // tracked parallel configuration is oversubscribed by design, so
        // the gate is skipped — never the identity gates above. It is
        // also skipped for entries whose serial reference is under half a
        // second (smoke-sized circuits are scheduling-overhead dominated);
        // the tracked i5/i10 runs sit well above that floor. Since v7 the
        // entry *records* that decision in `gate_status`; the stored
        // status and the one re-derived here must agree, so a report can
        // never pass with a silently skipped gate.
        let serial_ms = entry.get("wall_ms_serial").and_then(Json::as_num).expect("checked above");
        let expected = speedup_gate_status(host_threads, serial_ms);
        let stored = match entry.get("gate_status") {
            Some(Json::Str(s)) => s,
            _ => return Err(format!("scheduler entry {i}: missing `gate_status` string")),
        };
        if (stored == "armed") != (expected == "armed") {
            return Err(format!(
                "scheduler entry {i}: gate_status says `{stored}` but host_threads \
                 {host_threads:.0} / serial {serial_ms:.0} ms imply `{expected}`"
            ));
        }
        if expected == "armed" {
            let speedup =
                entry.get("speedup_over_serial").and_then(Json::as_num).expect("checked above");
            if speedup <= 1.0 {
                return Err(format!(
                    "scheduler entry {i}: no speedup over serial ({speedup:.3}x <= 1.0 on a \
                     {host_threads:.0}-thread host)"
                ));
            }
        } else {
            let circuit = match entry.get("circuit") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            };
            let mode = match entry.get("mode") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            };
            notes.push(format!("scheduler {circuit}/{mode} speedup gate: {stored}"));
        }
    }
    let whatif = match report.get("whatif") {
        Some(Json::Arr(whatif)) if !whatif.is_empty() => whatif,
        Some(Json::Arr(_)) => return Err("`whatif` is empty".into()),
        _ => return Err("missing `whatif` array (required by v2)".into()),
    };
    for (i, entry) in whatif.iter().enumerate() {
        for field in [
            "full_ms",
            "incremental_ms",
            "recomputed_victims",
            "total_victims",
            "structural_dirty_victims",
            "proven_clean_victims",
        ] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("whatif entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("whatif entry {i}: missing `{field}`"));
            }
        }
        match entry.get("identical_to_full") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "whatif entry {i}: incremental result differs from the from-scratch reference"
                ))
            }
            _ => return Err(format!("whatif entry {i}: missing `identical_to_full`")),
        }
    }
    let persistence = match report.get("session_persistence") {
        Some(Json::Arr(p)) if !p.is_empty() => p,
        Some(Json::Arr(_)) => return Err("`session_persistence` is empty".into()),
        _ => return Err("missing `session_persistence` array (required by v3)".into()),
    };
    for (i, entry) in persistence.iter().enumerate() {
        for field in ["save_ms", "load_ms", "artifact_bytes", "from_scratch_ms"] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("persistence entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("persistence entry {i}: missing `{field}`"));
            }
        }
        match entry.get("identical_to_full") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "persistence entry {i}: loaded-session result differs from the \
                     from-scratch reference"
                ))
            }
            _ => return Err(format!("persistence entry {i}: missing `identical_to_full`")),
        }
    }
    let versioned = match report.get("versioned_store") {
        Some(Json::Arr(v)) if !v.is_empty() => v,
        Some(Json::Arr(_)) => return Err("`versioned_store` is empty".into()),
        _ => return Err("missing `versioned_store` array (required by v8)".into()),
    };
    for (i, entry) in versioned.iter().enumerate() {
        for field in
            ["checkpoint_bytes", "delta_bytes", "delta_fraction", "checkpoint_ms", "delta_ms"]
        {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("versioned_store entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("versioned_store entry {i}: missing `{field}`"));
            }
        }
        // The replay gate is unconditional: whatever the chain's size,
        // resuming its tip must reproduce the live session bit-for-bit.
        match entry.get("identical_to_full") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "versioned_store entry {i}: chain-tip replay differs from the live session"
                ))
            }
            _ => return Err(format!("versioned_store entry {i}: missing `identical_to_full`")),
        }
        // The delta-fraction gate arms only in addition mode (elimination
        // windows re-derive from the masked noisy timing, so every flip
        // perturbs every victim's state and the delta is a
        // near-checkpoint by engine construction) and only where the
        // checkpoint clears the 8 MiB floor (below it, fixed record
        // framing dominates and the ratio measures nothing). The stored
        // status must agree with the one re-derived here from the entry's
        // own recorded mode and bytes — a skip can never be silent, a lie
        // never passes. The fraction itself is re-derived from the two
        // byte counts so a misreported `delta_fraction` can't sneak a
        // fat delta through.
        let checkpoint_bytes =
            entry.get("checkpoint_bytes").and_then(Json::as_num).expect("checked above");
        let delta_bytes = entry.get("delta_bytes").and_then(Json::as_num).expect("checked above");
        let entry_mode = match entry.get("mode") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "?",
        };
        let expected = delta_gate_status(entry_mode, checkpoint_bytes);
        let stored = match entry.get("gate_status") {
            Some(Json::Str(s)) => s,
            _ => return Err(format!("versioned_store entry {i}: missing `gate_status` string")),
        };
        if (stored == "armed") != (expected == "armed") {
            return Err(format!(
                "versioned_store entry {i}: gate_status says `{stored}` but a \
                 {checkpoint_bytes:.0}-byte `{entry_mode}` checkpoint implies `{expected}`"
            ));
        }
        if expected == "armed" {
            let fraction = delta_bytes / checkpoint_bytes.max(1.0);
            if fraction >= 0.10 {
                return Err(format!(
                    "versioned_store entry {i}: delta append cost {fraction:.3} of the \
                     checkpoint bytes (gate requires < 0.10)"
                ));
            }
        } else {
            let circuit = match entry.get("circuit") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            };
            let mode = match entry.get("mode") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            };
            notes.push(format!("versioned_store {circuit}/{mode} delta gate: {stored}"));
        }
    }
    let batch = match report.get("batch") {
        Some(Json::Arr(b)) if !b.is_empty() => b,
        Some(Json::Arr(_)) => return Err("`batch` is empty".into()),
        _ => return Err("missing `batch` array (required by v4)".into()),
    };
    for (i, entry) in batch.iter().enumerate() {
        for field in [
            "scenarios",
            "distinct_scenarios",
            "batch_ms",
            "sequential_ms",
            "dirty_victims",
            "unmasked_dirty_victims",
            "proven_clean_victims",
            "closure_frames_built",
            "closure_frames_shared",
        ] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("batch entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("batch entry {i}: missing `{field}`"));
            }
        }
        match entry.get("identical_to_sequential") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "batch entry {i}: batch result differs from its sequential reference"
                ))
            }
            _ => return Err(format!("batch entry {i}: missing `identical_to_sequential`")),
        }
    }
    let peeled = match report.get("peeled") {
        Some(Json::Arr(p)) if !p.is_empty() => p,
        Some(Json::Arr(_)) => return Err("`peeled` is empty".into()),
        _ => return Err("missing `peeled` array (required by v4)".into()),
    };
    for (i, entry) in peeled.iter().enumerate() {
        for field in ["k", "step", "rounds", "scratch_ms", "session_ms"] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("peeled entry {i}: missing or non-numeric `{field}`"));
            }
        }
        if !matches!(entry.get("circuit"), Some(Json::Str(_))) {
            return Err(format!("peeled entry {i}: missing `circuit`"));
        }
        match entry.get("identical_to_scratch") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "peeled entry {i}: incremental peel differs from the from-scratch reference"
                ))
            }
            _ => return Err(format!("peeled entry {i}: missing `identical_to_scratch`")),
        }
    }
    let damping = match report.get("damping") {
        Some(Json::Arr(d)) if !d.is_empty() => d,
        Some(Json::Arr(_)) => return Err("`damping` is empty".into()),
        _ => return Err("missing `damping` array (required by v5)".into()),
    };
    for (i, entry) in damping.iter().enumerate() {
        for field in [
            "semantic_ms",
            "structural_ms",
            "structural_dirty_victims",
            "proven_clean_victims",
            "certificates",
        ] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("damping entry {i}: missing or non-numeric `{field}`"));
            }
        }
        for field in ["circuit", "mode"] {
            if !matches!(entry.get(field), Some(Json::Str(_))) {
                return Err(format!("damping entry {i}: missing `{field}`"));
            }
        }
        match entry.get("identical_to_full") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "damping entry {i}: semantically damped result differs from the \
                     structural or from-scratch reference"
                ))
            }
            _ => return Err(format!("damping entry {i}: missing `identical_to_full`")),
        }
    }
    Ok(notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_round_trips_through_json() {
        let spec = BenchSpec {
            circuits: vec!["i1".into()],
            k: 2,
            samples: 1,
            seed: 7,
            modes: vec![Mode::Addition],
        };
        let report = run(&spec).expect("bench runs");
        // One entry per thread configuration, all identical to serial.
        assert_eq!(report.entries.len(), thread_configs().len());
        assert!(report.entries.iter().all(|e| e.identical_to_serial));
        assert!(report.entries.iter().all(|e| e.wall_ms.is_finite() && e.wall_ms > 0.0));
        // One what-if loop per circuit x mode, identical to from-scratch
        // and never re-sweeping more than the circuit holds.
        assert_eq!(report.whatif.len(), 1);
        assert!(report.whatif.iter().all(|e| e.identical_to_full));
        assert!(report.whatif.iter().all(|e| e.recomputed_victims <= e.total_victims));
        // One persistence cycle per circuit x mode: the resumed session
        // answered bit-identically and the artifact was non-trivial.
        assert_eq!(report.session_persistence.len(), 1);
        assert!(report.session_persistence.iter().all(|e| e.identical_to_full));
        assert!(report.session_persistence.iter().all(|e| e.artifact_bytes > 0));
        assert!(report
            .session_persistence
            .iter()
            .all(|e| e.save_ms.is_finite() && e.load_ms.is_finite()));
        // One versioned-store cycle per circuit x mode: the delta append
        // is real (generation 1), strictly cheaper than the checkpoint
        // rewrite, bit-identical on replay — and on this smoke-sized
        // chain the fraction gate must record itself as skipped.
        assert_eq!(report.versioned_store.len(), 1);
        assert!(report.versioned_store.iter().all(|e| e.identical_to_full));
        assert!(report.versioned_store.iter().all(|e| e.tip_generation == 1));
        assert!(report.versioned_store.iter().all(|e| e.delta_bytes > 0));
        assert!(report.versioned_store.iter().all(|e| e.delta_bytes < e.checkpoint_bytes));
        assert!(report.versioned_store.iter().all(|e| e.gate_status.starts_with("skipped")));
        // One batch run per circuit x mode: every scenario bit-identical
        // to its sequential twin, the mask-aware closure never larger
        // than the oblivious one, and dedup never inflating the count.
        assert_eq!(report.batch.len(), 1);
        assert!(report.batch.iter().all(|e| e.identical_to_sequential));
        // The menu carries a duplicate scenario, so dedup must fire.
        assert!(report.batch.iter().all(|e| e.distinct_scenarios < e.scenarios));
        assert!(report.batch.iter().all(|e| e.dirty_victims <= e.unmasked_dirty_victims));
        // One peel loop per circuit, at least two rounds, bit-identical.
        assert_eq!(report.peeled.len(), 1);
        assert!(report.peeled.iter().all(|e| e.identical_to_scratch && e.rounds >= 2));
        // One damping comparison per circuit x mode: bit-identical under
        // both dampings, one certificate per proven-clean victim, and the
        // whatif section's bookkeeping must add up.
        assert_eq!(report.damping.len(), 1);
        assert!(report.damping.iter().all(|e| e.identical_to_full));
        assert!(report.damping.iter().all(|e| e.certificates == e.proven_clean_victims));
        assert!(report
            .damping
            .iter()
            .all(|e| e.proven_clean_victims <= e.structural_dirty_victims));
        assert!(report
            .whatif
            .iter()
            .all(|e| e.recomputed_victims + e.proven_clean_victims == e.structural_dirty_victims));
        // One scheduler entry per circuit x mode, from a genuinely
        // parallel configuration sweeping every victim task.
        assert_eq!(report.scheduler.len(), 1);
        assert!(report.scheduler.iter().all(|e| e.threads >= 2 && e.tasks > 0));
        assert!(report
            .scheduler
            .iter()
            .all(|e| e.speedup_over_serial.is_finite() && e.speedup_over_serial > 0.0));
        assert!(report.scheduler.iter().all(|e| (0.0..=1.0).contains(&e.tail_task_share)));
        let json = report.to_json();
        validate_json(&json).expect("self-produced report validates");
        let table = report.render_table();
        assert!(table.contains("i1"));
        assert!(table.contains("yes"));
        assert!(table.contains("work-stealing scheduler"));
        assert!(table.contains("what-if fix loop"));
        assert!(table.contains("session persistence"));
        assert!(table.contains("versioned store"));
        assert!(table.contains("batch what-if"));
        assert!(table.contains("peeled elimination"));
        assert!(table.contains("corridor damping"));
    }

    /// A structurally complete, semantically passing v8 report — the
    /// baseline every rejection case below is a one-flag mutation of.
    const GOOD_REPORT: &str = r#"{
      "schema": "dna-bench-topk/v8",
      "host_threads": 8, "k": 10, "samples": 1, "seed": 42,
      "entries": [{
        "circuit": "i1", "mode": "addition", "threads": 0,
        "effective_threads": 8, "wall_ms": 1.0,
        "delay_before_ps": 1.0, "delay_after_ps": 2.0,
        "generated": 3, "peak_list_width": 2,
        "identical_to_serial": true
      }],
      "scheduler": [{
        "circuit": "i5", "mode": "addition",
        "threads": 8, "tasks": 64, "steals": 5,
        "tail_task_share": 0.25,
        "wall_ms_serial": 900.0, "wall_ms_parallel": 500.0,
        "speedup_over_serial": 1.8,
        "gate_status": "armed"
      }],
      "whatif": [{
        "circuit": "i1", "mode": "addition",
        "full_ms": 2.0, "incremental_ms": 1.0,
        "recomputed_victims": 3, "total_victims": 9,
        "structural_dirty_victims": 5, "proven_clean_victims": 2,
        "identical_to_full": true
      }],
      "session_persistence": [{
        "circuit": "i1", "mode": "addition",
        "save_ms": 0.1, "load_ms": 0.2, "artifact_bytes": 4096,
        "from_scratch_ms": 2.0,
        "identical_to_full": true
      }],
      "versioned_store": [{
        "circuit": "i10", "mode": "addition",
        "checkpoint_bytes": 84000000, "delta_bytes": 640,
        "delta_fraction": 0.000008,
        "checkpoint_ms": 120.0, "delta_ms": 0.4,
        "tip_generation": 1,
        "identical_to_full": true,
        "gate_status": "armed"
      }],
      "batch": [{
        "circuit": "i1", "mode": "addition",
        "scenarios": 4, "distinct_scenarios": 4,
        "batch_ms": 1.0, "sequential_ms": 3.0,
        "dirty_victims": 5, "unmasked_dirty_victims": 7,
        "proven_clean_victims": 2,
        "closure_frames_built": 4, "closure_frames_shared": 2,
        "identical_to_sequential": true
      }],
      "peeled": [{
        "circuit": "i1", "k": 10, "step": 5, "rounds": 2,
        "scratch_ms": 4.0, "session_ms": 2.0,
        "identical_to_scratch": true
      }],
      "damping": [{
        "circuit": "i1", "mode": "addition",
        "semantic_ms": 0.8, "structural_ms": 1.0,
        "structural_dirty_victims": 5, "proven_clean_victims": 2,
        "certificates": 2,
        "identical_to_full": true
      }]
    }"#;

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json(r#"{"schema": "other/v9"}"#).is_err());
        // Older schemas (missing the sections added since) are rejected.
        for old in ["v1", "v2", "v3", "v4", "v5", "v6", "v7"] {
            assert!(validate_json(&format!(r#"{{"schema": "dna-bench-topk/{old}"}}"#)).is_err());
        }
        validate_json(GOOD_REPORT).expect("the baseline report validates");
        assert!(
            validate_json_notes(GOOD_REPORT).unwrap().is_empty(),
            "an armed gate produces no skip notes"
        );

        // The scheduler speedup gate fires on a wide host with a slow
        // parallel run...
        let no_speedup =
            GOOD_REPORT.replace("\"speedup_over_serial\": 1.8", "\"speedup_over_serial\": 0.9");
        let err = validate_json(&no_speedup).unwrap_err();
        assert!(err.contains("no speedup over serial"), "{err}");
        // ...but is skipped (never failed) on a narrow host that cannot
        // express the parallelism — and since v7 the skip is recorded in
        // the entry and surfaced as a note, never silent...
        let narrow_host = no_speedup
            .replace("\"host_threads\": 8", "\"host_threads\": 1")
            // `replacen(1)`: only the scheduler entry's status (the first
            // in the report) skips; the versioned-store gate stays armed.
            .replacen(
                "\"gate_status\": \"armed\"",
                "\"gate_status\": \"skipped (narrow host)\"",
                1,
            );
        let skip_notes =
            validate_json_notes(&narrow_host).expect("narrow host skips the speedup gate");
        assert_eq!(skip_notes.len(), 1, "{skip_notes:?}");
        assert!(
            skip_notes[0].contains("i5/addition") && skip_notes[0].contains("skipped"),
            "{skip_notes:?}"
        );
        // ...and for smoke-sized entries below the measurement floor.
        let smoke_entry =
            no_speedup.replace("\"wall_ms_serial\": 900.0", "\"wall_ms_serial\": 9.0").replacen(
                "\"gate_status\": \"armed\"",
                "\"gate_status\": \"skipped (smoke floor)\"",
                1,
            );
        let skip_notes = validate_json_notes(&smoke_entry)
            .expect("sub-floor serial time skips the speedup gate");
        assert_eq!(skip_notes.len(), 1, "{skip_notes:?}");

        // The v6 silent-skip bug, now loud: an entry whose numbers imply
        // a skip but whose stored status still claims "armed" (or vice
        // versa) is rejected — the status can't lie either way.
        let silent_skip = no_speedup.replace("\"host_threads\": 8", "\"host_threads\": 1");
        let err = validate_json(&silent_skip).unwrap_err();
        assert!(err.contains("gate_status says `armed`"), "{err}");
        let bogus_skip = GOOD_REPORT.replacen(
            "\"gate_status\": \"armed\"",
            "\"gate_status\": \"skipped (just because)\"",
            1,
        );
        let err = validate_json(&bogus_skip).unwrap_err();
        assert!(err.contains("imply `armed`"), "{err}");
        let no_status = GOOD_REPORT.replacen("\"gate_status\": \"armed\"", "\"gate_status\": 3", 1);
        let err = validate_json(&no_status).unwrap_err();
        assert!(err.contains("missing `gate_status`"), "{err}");

        // The v8 delta-fraction gate: a fat delta fails where the gate is
        // armed, is skipped (with a note) below the 8 MiB checkpoint
        // floor, and the recorded status cannot contradict the bytes.
        let fat_delta = GOOD_REPORT.replace("\"delta_bytes\": 640", "\"delta_bytes\": 9000000");
        let err = validate_json(&fat_delta).unwrap_err();
        assert!(err.contains("gate requires < 0.10"), "{err}");
        let small_chain = fat_delta
            .replace("\"checkpoint_bytes\": 84000000", "\"checkpoint_bytes\": 1000000")
            .replacen("\"gate_status\": \"armed\"", "\"gate_status\": \"skipped (tiny chain)\"", 2)
            .replacen("\"gate_status\": \"skipped (tiny chain)\"", "\"gate_status\": \"armed\"", 1);
        let notes = validate_json_notes(&small_chain).expect("sub-floor checkpoint skips the gate");
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert!(notes[0].contains("versioned_store i10/addition"), "{notes:?}");
        let lying_status =
            GOOD_REPORT.replace("\"checkpoint_bytes\": 84000000", "\"checkpoint_bytes\": 1000000");
        let err = validate_json(&lying_status).unwrap_err();
        assert!(err.contains("1000000-byte `addition` checkpoint implies"), "{err}");
        // Elimination entries never arm: the masked noisy timing makes
        // every delta a near-checkpoint, and an armed status on one is a
        // recorded lie whatever the byte counts say.
        let armed_elimination = GOOD_REPORT.replace(
            "\"circuit\": \"i10\", \"mode\": \"addition\",\n        \"checkpoint_bytes\": 84000000",
            "\"circuit\": \"i10\", \"mode\": \"elimination\",\n        \"checkpoint_bytes\": 84000000",
        );
        let err = validate_json(&armed_elimination).unwrap_err();
        assert!(err.contains("`elimination` checkpoint implies `skipped"), "{err}");
        // A misreported fraction cannot mask a fat delta: the validator
        // re-derives it from the byte counts.
        let lying_fraction = GOOD_REPORT
            .replace("\"delta_bytes\": 640", "\"delta_bytes\": 9000000")
            .replace("\"delta_fraction\": 0.000008", "\"delta_fraction\": 0.01");
        let err = validate_json(&lying_fraction).unwrap_err();
        assert!(err.contains("gate requires < 0.10"), "{err}");
        // The replay gate never skips, whatever the chain's size.
        let bad_replay = small_chain
            .replace("\"delta_bytes\": 9000000", "\"delta_bytes\": 640")
            .replacen("\"identical_to_full\": true", "\"identical_to_full\": false", 3)
            .replacen("\"identical_to_full\": false", "\"identical_to_full\": true", 2);
        let err = validate_json(&bad_replay).unwrap_err();
        assert!(err.contains("chain-tip replay differs"), "{err}");

        // Structurally fine but semantically failing: each identity gate,
        // flipped to false in turn, must be flagged with its own message.
        let cases = [
            ("\"identical_to_serial\": true", "differs from the serial reference"),
            ("\"identical_to_sequential\": true", "differs from its sequential reference"),
            ("\"identical_to_scratch\": true", "differs from the from-scratch reference"),
        ];
        for (flag, expected) in cases {
            let broken = GOOD_REPORT.replace(flag, &flag.replace("true", "false"));
            let err = validate_json(&broken).unwrap_err();
            assert!(err.contains(expected), "flipping {flag}: {err}");
        }
        // The two `identical_to_full` gates share a flag name; flip the
        // whatif one (first occurrence), then the persistence one (both).
        let bad_whatif =
            GOOD_REPORT.replacen("\"identical_to_full\": true", "\"identical_to_full\": false", 1);
        let err = validate_json(&bad_whatif).unwrap_err();
        assert!(err.contains("differs from the from-scratch reference"), "{err}");
        let bad_persist =
            GOOD_REPORT.replace("\"identical_to_full\": true", "\"identical_to_full\": false");
        let err = validate_json(&bad_persist).unwrap_err();
        assert!(
            err.contains("differs from the from-scratch reference")
                || err.contains("loaded-session result differs"),
            "{err}"
        );
        // The damping gate is the last `identical_to_full` occurrence.
        let last = GOOD_REPORT.rfind("\"identical_to_full\": true").expect("damping gate");
        let bad_damping = format!(
            "{}\"identical_to_full\": false{}",
            &GOOD_REPORT[..last],
            &GOOD_REPORT[last + "\"identical_to_full\": true".len()..]
        );
        let err = validate_json(&bad_damping).unwrap_err();
        assert!(err.contains("semantically damped result differs"), "{err}");

        // Dropping any report section (or emptying it) is a violation.
        for section in [
            "scheduler",
            "whatif",
            "session_persistence",
            "versioned_store",
            "batch",
            "peeled",
            "damping",
        ] {
            let needle = format!("\"{section}\": [");
            let start = GOOD_REPORT.find(&needle).expect("section present");
            let end = GOOD_REPORT[start..].find("}]").expect("section closes") + start + 2;
            let emptied =
                format!("{}\"{section}\": []{}", &GOOD_REPORT[..start], &GOOD_REPORT[end..]);
            let err = validate_json(&emptied).unwrap_err();
            assert!(err.contains(section), "emptying {section}: {err}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\n\"y\""], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0), Json::Str("x\n\"y\"".into()),]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#"[1, ]"#).is_err());
    }
}
