//! **Figure 10** — convergence of the top-k addition and elimination sets
//! as k grows.
//!
//! The paper plots, for circuits i1 and i10 and k = 1..75, the circuit
//! delay of both flavors: the addition curve climbs from the noiseless
//! delay toward the all-aggressor delay while the elimination curve falls
//! from the all-aggressor delay toward the noiseless one, the two series
//! bracketing the true noise impact.
//!
//! Output is CSV (`k,addition_ns,elimination_ns` per circuit) ready for
//! plotting.
//!
//! Usage:
//! `cargo run --release -p dna-bench --bin figure10 [--circuits i1,i10] [--kmax 75]`

use dna_bench::HarnessArgs;

/// Step between sampled k values (`--stride` is parsed before the shared
/// flags; the paper plots every k, which is only practical on the small
/// circuits).
fn stride_arg() -> usize {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--stride")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
use dna_noise::{CouplingMask, NoiseAnalysis};
use dna_topk::{TopKAnalysis, TopKConfig};

fn main() {
    let stride = stride_arg();
    // Strip --stride before shared parsing.
    let filtered: Vec<String> = {
        let mut skip = false;
        std::env::args()
            .enumerate()
            .filter(|(i, a)| {
                if *i == 0 {
                    return false;
                }
                if skip {
                    skip = false;
                    return false;
                }
                if a == "--stride" {
                    skip = true;
                    return false;
                }
                true
            })
            .map(|(_, a)| a)
            .collect()
    };
    let args = HarnessArgs::parse_from(&filtered, &["i1", "i10"], 75);

    for (name, circuit) in args.load_circuits().expect("known circuit names") {
        eprintln!("[figure10] {name} ({})", circuit.stats());
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let noise = NoiseAnalysis::new(&circuit, TopKConfig::default().noise);
        let all_agg = noise.run().expect("noise analysis succeeds").circuit_delay();
        let no_agg = noise
            .run_with_mask(&CouplingMask::none(&circuit))
            .expect("noise analysis succeeds")
            .circuit_delay();

        println!(
            "# circuit {name}: noiseless {:.6} ns, all-aggressors {:.6} ns",
            no_agg / 1000.0,
            all_agg / 1000.0
        );
        println!("circuit,k,addition_ns,elimination_ns");
        for k in (1..=args.kmax).step_by(stride) {
            let add = engine.addition_set(k).expect("analysis succeeds");
            let del = engine.elimination_set(k).expect("analysis succeeds");
            println!(
                "{name},{k},{:.6},{:.6}",
                add.delay_after() / 1000.0,
                del.delay_after() / 1000.0
            );
            eprintln!(
                "[figure10]   k={k}: add {:.4} ns ({:?}), elim {:.4} ns ({:?})",
                add.delay_after() / 1000.0,
                add.runtime(),
                del.delay_after() / 1000.0,
                del.runtime()
            );
        }
    }
}
