//! The tracked serial-vs-parallel scaling benchmark.
//!
//! Writes `BENCH_topk.json` (schema `dna_bench::topk_bench::SCHEMA`) and
//! prints the timing table. `dna bench --json` is the CLI front end for
//! the same harness.
//!
//! ```text
//! cargo run --release -p dna-bench --bin bench_topk -- \
//!     [--circuits i1,i5,i10] [--k 10] [--samples 1] [--seed 42] \
//!     [--quick] [--out BENCH_topk.json]
//! ```

use dna_bench::topk_bench::{run, BenchSpec};

fn main() {
    let mut spec = BenchSpec::default();
    let mut out_path = String::from("BENCH_topk.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--circuits" => {
                i += 1;
                let list = args.get(i).expect("--circuits needs a value");
                spec.circuits = list.split(',').map(str::to_owned).collect();
            }
            "--k" => {
                i += 1;
                spec.k = args.get(i).and_then(|s| s.parse().ok()).expect("--k needs an integer");
            }
            "--samples" => {
                i += 1;
                spec.samples =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--samples needs an integer");
            }
            "--seed" => {
                i += 1;
                spec.seed =
                    args.get(i).and_then(|s| s.parse().ok()).expect("--seed needs an integer");
            }
            "--quick" => {
                spec.circuits = vec!["i1".into()];
                spec.k = spec.k.min(3);
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => panic!(
                "unknown argument `{other}`\n\
                 usage: [--circuits i1,i5,i10] [--k N] [--samples N] [--seed S] \
                 [--quick] [--out FILE]"
            ),
        }
        i += 1;
    }

    let report = match run(&spec) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render_table());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path} (host_threads = {})", report.host_threads);
    if report.entries.iter().any(|e| !e.identical_to_serial) {
        eprintln!("ERROR: a parallel run diverged from its serial reference");
        std::process::exit(1);
    }
    if report.batch.iter().any(|e| !e.identical_to_sequential) {
        eprintln!("ERROR: a batch scenario diverged from its sequential reference");
        std::process::exit(1);
    }
    if report.peeled.iter().any(|e| !e.identical_to_scratch) {
        eprintln!("ERROR: an incremental peel diverged from its from-scratch reference");
        std::process::exit(1);
    }
}
