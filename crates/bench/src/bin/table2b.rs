//! **Table 2(b)** — circuit delay and runtime of the top-k aggressors
//! *elimination* set across the i1–i10 benchmark suite.
//!
//! Per circuit the paper reports the fully-noisy delay (k = 0) and the
//! delay after fixing the top-k couplings for k ∈ {5,10,20,30,40,50},
//! plus runtimes. Expected shape: delays fall from the all-aggressor
//! bound toward the noiseless bound as the fix budget grows.
//!
//! The one-pass paper algorithm is used by default; pass `--peeled` to
//! use the iterative peeling extension (better fix quality, ~k/step times
//! the cost).
//!
//! Usage:
//! `cargo run --release -p dna-bench --bin table2b [--circuits i1,i2] [--kmax 50] [--quick]`

use dna_bench::{ns, secs, HarnessArgs, Table};
use dna_noise::{CouplingMask, NoiseAnalysis};
use dna_topk::{TopKAnalysis, TopKConfig};

fn main() {
    // `--peeled` is specific to this binary; strip it before shared parsing.
    let peeled = std::env::args().any(|a| a == "--peeled");
    let filtered: Vec<String> = std::env::args().filter(|a| a != "--peeled").collect();
    // Re-inject filtered args for HarnessArgs::parse via a sub-process-free
    // trick: HarnessArgs reads std::env::args, so emulate by temporary
    // variable. Simplest: parse the shared flags ourselves.
    let args = parse_shared(&filtered[1..]);

    let ks: Vec<usize> =
        [5usize, 10, 20, 30, 40, 50].into_iter().filter(|&k| k <= args.kmax).collect();

    println!(
        "Table 2(b) — top-k aggressors elimination set ({}, seed {})\n",
        if peeled { "peeled extension" } else { "one-pass paper algorithm" },
        args.seed
    );
    let mut header: Vec<String> =
        vec!["ckt".into(), "gates".into(), "nets".into(), "ccs".into(), "k=0".into()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    header.push("noiseless".into());
    header.extend(ks.iter().map(|k| format!("t{k} (s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for (name, circuit) in args.load_circuits().expect("known circuit names") {
        eprintln!("[table2b] {name} ({})", circuit.stats());
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let noise = NoiseAnalysis::new(&circuit, TopKConfig::default().noise);
        let all_agg = noise.run().expect("noise analysis succeeds").circuit_delay();
        let no_agg = noise
            .run_with_mask(&CouplingMask::none(&circuit))
            .expect("noise analysis succeeds")
            .circuit_delay();

        let mut delays = Vec::new();
        let mut runtimes = Vec::new();
        for &k in &ks {
            let r = if peeled {
                engine.elimination_set_peeled(k, (k / 5).max(1))
            } else {
                engine.elimination_set(k)
            }
            .expect("analysis succeeds");
            eprintln!("[table2b]   k={k}: {} in {:?}", ns(r.delay_after()), r.runtime());
            delays.push(ns(r.delay_after()));
            runtimes.push(secs(r.runtime()));
        }

        let mut row = vec![
            name,
            circuit.num_gates().to_string(),
            circuit.num_nets().to_string(),
            circuit.num_couplings().to_string(),
            ns(all_agg),
        ];
        row.extend(delays);
        row.push(ns(no_agg));
        row.extend(runtimes);
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "delays in ns; expected shape: all agg (k=0) >= k-columns (falling with k) >= noiseless"
    );
}

/// Shared-flag parsing over a pre-filtered argument list.
fn parse_shared(argv: &[String]) -> HarnessArgs {
    let mut out = HarnessArgs {
        circuits: ["i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        kmax: 50,
        seed: dna_bench::DEFAULT_SEED,
        quick: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--circuits" => {
                i += 1;
                out.circuits = argv[i].split(',').map(str::to_owned).collect();
            }
            "--kmax" => {
                i += 1;
                out.kmax = argv[i].parse().expect("--kmax needs an integer");
            }
            "--seed" => {
                i += 1;
                out.seed = argv[i].parse().expect("--seed needs an integer");
            }
            "--quick" => {
                out.quick = true;
                out.circuits = vec!["i1".into(), "i2".into(), "i3".into()];
                out.kmax = out.kmax.min(10);
            }
            other => panic!("unknown argument `{other}`"),
        }
        i += 1;
    }
    out
}
