//! **Table 1** — validation of the proposed algorithm against brute-force
//! enumeration.
//!
//! The paper runs both methods on a small circuit and reports, per k, the
//! circuit delay each finds and its runtime; brute force fails to finish
//! `k >= 4` within 1800 s while the proposed algorithm finishes every k in
//! milliseconds (~2 orders of magnitude speedup where both complete).
//!
//! This binary reproduces that experiment on a synthetic circuit sized so
//! the combinatorial blow-up bites at the same place on modern hardware:
//! brute force completes k <= 3 and times out at k = 4.
//!
//! Usage: `cargo run --release -p dna-bench --bin table1 [--seed S]`

use std::time::Duration;

use dna_bench::{ns, secs, HarnessArgs, Table};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_topk::{brute_force, BruteForceConfig, BruteForceOutcome, Mode, TopKAnalysis, TopKConfig};

fn main() {
    let args = HarnessArgs::parse(&[], 4);
    // A circuit in the size class where C(r, 3) is feasible and C(r, 4)
    // explodes: 50 gates, 80 coupling caps -> C(80,4) ≈ 1.6M full noise
    // analyses, far past the default budget.
    let circuit = generate(&GeneratorConfig::new(50, 80).with_seed(args.seed))
        .expect("generator succeeds on fixed spec");
    println!(
        "Table 1 — proposed vs brute force (elimination sets)\n\
         circuit: {} (seed {})\n",
        circuit.stats(),
        args.seed
    );

    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let budget = Duration::from_secs(
        std::env::var("DNA_BRUTE_BUDGET_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(60),
    );
    let brute_cfg = BruteForceConfig { time_budget: budget, ..BruteForceConfig::default() };

    let mut table = Table::new(&[
        "k",
        "one-pass (ns)",
        "t (s)",
        "peeled (ns)",
        "t (s)",
        "brute (ns)",
        "t (s)",
        "consistent",
    ]);

    for k in 1..=args.kmax {
        let proposed = engine.elimination_set(k).expect("analysis succeeds");
        let peeled = engine.elimination_set_peeled(k, 1).expect("analysis succeeds");
        let brute =
            brute_force(&circuit, &brute_cfg, Mode::Elimination, k).expect("analysis succeeds");
        let (bd, bt, consistent) = match &brute {
            BruteForceOutcome::Completed { delay, elapsed, .. } => {
                let best = proposed.delay_after().min(peeled.delay_after());
                (
                    ns(*delay),
                    secs(*elapsed),
                    if (best - delay).abs() < 1e-6 { "yes" } else { "no" }.to_owned(),
                )
            }
            BruteForceOutcome::TimedOut { elapsed, .. } => {
                ("-".to_owned(), format!(">{}", secs(*elapsed)), "(timed out)".to_owned())
            }
        };
        table.row(vec![
            k.to_string(),
            ns(proposed.delay_after()),
            secs(proposed.runtime()),
            ns(peeled.delay_after()),
            secs(peeled.runtime()),
            bd,
            bt,
            consistent,
        ]);
    }
    println!("{}", table.render());
    println!(
        "brute-force budget: {} s (paper used 1800 s); set DNA_BRUTE_BUDGET_SECS to change",
        budget.as_secs()
    );
}
