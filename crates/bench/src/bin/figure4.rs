//! **Figure 4** — non-monotonicity of top-k aggressor sets.
//!
//! Reconstructs the paper's counterexample at the waveform level:
//! aggressor `a1` has a *smaller* noise pulse than `a2`/`a3`, yet the
//! top-1 set is {a1} (its window aligns with the victim's crossing) while
//! the top-2 set is {a2, a3} — not a superset of top-1. Adding an
//! aggressor to the top-k set does not, in general, produce the top-(k+1)
//! set, which is why implicit enumeration must carry irredundant lists
//! instead of growing one set greedily.
//!
//! Usage: `cargo run -p dna-bench --bin figure4`

use dna_bench::Table;
use dna_waveform::{superposition, Edge, Envelope, NoisePulse, Transition};

fn main() {
    let victim = Transition::new(0.0, 20.0, Edge::Rising);
    let t50 = victim.t50();

    let a1 = Envelope::from_window(&NoisePulse::symmetric(-0.5, 0.10, 1.0), t50, t50);
    let wide = NoisePulse::new(0.0, 1.0, 0.15, 151.0);
    let a2 = Envelope::from_window(&wide, t50 - 135.0, t50 - 133.0);
    let a3 = Envelope::from_window(&wide, t50 - 135.0, t50 - 133.0);

    println!("Figure 4 — non-monotonic top-k aggressor sets\n");
    println!("victim: rising, slew 20 ps, t50 = {t50} ps");
    println!("a1 peak {:.2} V·dd (window on the crossing)", a1.peak());
    println!("a2 = a3 peak {:.2} V·dd (window far left, shallow tail)\n", a2.peak());

    let dn = |envs: &[&Envelope]| {
        superposition::delay_noise(&victim, &Envelope::sum_all(envs.iter().copied()))
    };

    let mut table = Table::new(&["set", "delay noise (ps)"]);
    let cases: [(&str, Vec<&Envelope>); 6] = [
        ("{a1}", vec![&a1]),
        ("{a2}", vec![&a2]),
        ("{a3}", vec![&a3]),
        ("{a1,a2}", vec![&a1, &a2]),
        ("{a1,a3}", vec![&a1, &a3]),
        ("{a2,a3}", vec![&a2, &a3]),
    ];
    let mut best1 = ("", f64::MIN);
    let mut best2 = ("", f64::MIN);
    for (label, envs) in &cases {
        let d = dn(envs);
        table.row(vec![(*label).to_owned(), format!("{d:.4}")]);
        if envs.len() == 1 && d > best1.1 {
            best1 = (label, d);
        }
        if envs.len() == 2 && d > best2.1 {
            best2 = (label, d);
        }
    }
    println!("{}", table.render());
    println!("top-1 set: {}   top-2 set: {}", best1.0, best2.0);
    println!(
        "non-monotonic: the top-2 set {} the top-1 aggressor",
        if best2.0.contains("a1") { "CONTAINS (unexpected!)" } else { "does NOT contain" }
    );
}
