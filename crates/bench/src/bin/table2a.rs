//! **Table 2(a)** — circuit delay and runtime of the top-k aggressors
//! *addition* set across the i1–i10 benchmark suite.
//!
//! Per circuit the paper reports the circuit delay under all aggressors,
//! the delay with only the top-k aggressors for k ∈ {5,10,20,30,40,50},
//! the noiseless delay, and the algorithm runtime per k. The expected
//! shape: delays climb from the noiseless bound toward the all-aggressor
//! bound as k grows, and runtimes stay tractable (the paper's top-50 runs
//! all finish under 100 s).
//!
//! Usage:
//! `cargo run --release -p dna-bench --bin table2a [--circuits i1,i2] [--kmax 50] [--quick]`

use dna_bench::{ns, secs, HarnessArgs, Table};
use dna_noise::{CouplingMask, NoiseAnalysis};
use dna_topk::{TopKAnalysis, TopKConfig};

fn main() {
    let args =
        HarnessArgs::parse(&["i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10"], 50);
    let ks: Vec<usize> =
        [5usize, 10, 20, 30, 40, 50].into_iter().filter(|&k| k <= args.kmax).collect();

    println!("Table 2(a) — top-k aggressors addition set (seed {})\n", args.seed);
    let mut header: Vec<String> =
        vec!["ckt".into(), "gates".into(), "nets".into(), "ccs".into(), "all agg".into()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    header.push("no agg".into());
    header.extend(ks.iter().map(|k| format!("t{k} (s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for (name, circuit) in args.load_circuits().expect("known circuit names") {
        eprintln!("[table2a] {name} ({})", circuit.stats());
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let noise = NoiseAnalysis::new(&circuit, TopKConfig::default().noise);
        let all_agg = noise.run().expect("noise analysis succeeds").circuit_delay();
        let no_agg = noise
            .run_with_mask(&CouplingMask::none(&circuit))
            .expect("noise analysis succeeds")
            .circuit_delay();

        let mut delays = Vec::new();
        let mut runtimes = Vec::new();
        for &k in &ks {
            let r = engine.addition_set(k).expect("analysis succeeds");
            eprintln!("[table2a]   k={k}: {} in {:?}", ns(r.delay_after()), r.runtime());
            delays.push(ns(r.delay_after()));
            runtimes.push(secs(r.runtime()));
        }

        let mut row = vec![
            name,
            circuit.num_gates().to_string(),
            circuit.num_nets().to_string(),
            circuit.num_couplings().to_string(),
            ns(all_agg),
        ];
        row.extend(delays);
        row.push(ns(no_agg));
        row.extend(runtimes);
        table.row(row);
    }
    println!("{}", table.render());
    println!("delays in ns; expected shape: no agg <= k-columns (rising with k) <= all agg");
}
