//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Every binary in this crate reproduces one experiment:
//!
//! | target      | experiment |
//! |-------------|------------|
//! | `table1`    | Table 1 — proposed vs. brute force, k = 1..4 |
//! | `table2a`   | Table 2(a) — top-k addition sets, i1–i10 |
//! | `table2b`   | Table 2(b) — top-k elimination sets, i1–i10 |
//! | `figure10`  | Fig. 10 — addition/elimination convergence, k = 1..75 |
//! | `figure4`   | Fig. 4 — non-monotonicity demonstration |
//!
//! Criterion benches (`cargo bench -p dna-bench`) cover runtime scaling
//! and the ablation of the paper's two key techniques.

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]

use std::fmt::Write as _;

use dna_netlist::{suite, Circuit, NetlistError};

pub mod topk_bench;

/// Default RNG seed used by every experiment so results are reproducible.
pub const DEFAULT_SEED: u64 = 42;

/// Simple command-line options shared by the table binaries.
///
/// Parsed by hand (the workspace carries no CLI dependency):
///
/// ```text
/// --circuits i1,i2,i5   restrict to these benchmark circuits
/// --kmax 20             cap the largest k exercised
/// --seed 7              change the generator seed
/// --quick               shorthand for small circuits and small k
/// ```
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Benchmark circuit names to run.
    pub circuits: Vec<String>,
    /// Largest k to exercise.
    pub kmax: usize,
    /// Generator seed.
    pub seed: u64,
    /// Quick mode (small circuits, small k).
    pub quick: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`, applying the given defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse(default_circuits: &[&str], default_kmax: usize) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&args, default_circuits, default_kmax)
    }

    /// Parses an explicit argument list (used by binaries that strip their
    /// own flags first).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse_from(args: &[String], default_circuits: &[&str], default_kmax: usize) -> Self {
        let mut out = Self {
            circuits: default_circuits.iter().map(|s| (*s).to_owned()).collect(),
            kmax: default_kmax,
            seed: DEFAULT_SEED,
            quick: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--circuits" => {
                    i += 1;
                    let list = args.get(i).expect("--circuits needs a value");
                    out.circuits = list.split(',').map(str::to_owned).collect();
                }
                "--kmax" => {
                    i += 1;
                    out.kmax =
                        args.get(i).and_then(|s| s.parse().ok()).expect("--kmax needs an integer");
                }
                "--seed" => {
                    i += 1;
                    out.seed =
                        args.get(i).and_then(|s| s.parse().ok()).expect("--seed needs an integer");
                }
                "--quick" => {
                    out.quick = true;
                    out.circuits = vec!["i1".into(), "i2".into(), "i3".into()];
                    out.kmax = out.kmax.min(10);
                }
                other => panic!(
                    "unknown argument `{other}`\n\
                     usage: [--circuits i1,i2] [--kmax N] [--seed S] [--quick]"
                ),
            }
            i += 1;
        }
        out
    }

    /// Generates the selected benchmark circuits.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown circuit names.
    pub fn load_circuits(&self) -> Result<Vec<(String, Circuit)>, NetlistError> {
        self.circuits
            .iter()
            .map(|name| suite::benchmark(name, self.seed).map(|c| (name.clone(), c)))
            .collect()
    }
}

/// A plain-text table printer with right-aligned columns, used to render
/// output shaped like the paper's tables.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats picoseconds as nanoseconds with three decimals (the paper
/// reports ns).
#[must_use]
pub fn ns(ps: f64) -> String {
    format!("{:.3}", ps / 1000.0)
}

/// Formats a duration in seconds with two decimals.
#[must_use]
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["ckt", "delay"]);
        t.row(vec!["i1".into(), "0.546".into()]);
        t.row(vec!["i10".into(), "3.09".into()]);
        let s = t.render();
        assert!(s.contains("ckt"));
        assert_eq!(s.lines().count(), 4);
        // Right alignment: `i1` padded to the width of `ckt`/`i10`.
        assert!(s.lines().nth(2).unwrap().starts_with(" i1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ns(546.0), "0.546");
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.23");
    }

    #[test]
    fn load_circuits_resolves_names() {
        let args = HarnessArgs { circuits: vec!["i1".into()], kmax: 5, seed: 1, quick: false };
        let loaded = args.load_circuits().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.num_gates(), 59);
        let bad = HarnessArgs { circuits: vec!["nope".into()], ..args };
        assert!(bad.load_circuits().is_err());
    }
}
