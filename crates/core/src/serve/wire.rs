//! Loopback wire protocol of `dna serve`: one JSON object per line.
//!
//! Requests name an `"op"` and its arguments; every response is a
//! single object with `"ok"` plus either a `"kind"` payload or a typed
//! `"code"`/`"message"` error. Fingerprints travel as 16-digit hex
//! strings so clients can bit-compare daemon responses against a local
//! replay without pushing `f64`s through decimal formatting. The
//! encoder/decoder is hand-rolled (std only, no serde), matching the
//! bench report's JSON conventions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dna_netlist::CouplingId;

use crate::serve::{Response, ScenarioSummary, ServeStats};
use crate::MaskDelta;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tenant around a circuit file.
    Open {
        /// Tenant name.
        tenant: String,
        /// Path to the circuit netlist (resolved by the server process).
        circuit: String,
        /// `"addition"`/`"add"` or `"elimination"`/`"elim"`.
        mode: crate::Mode,
        /// Requested set size.
        k: usize,
        /// Requested per-victim candidate budget.
        victim_budget: Option<usize>,
        /// Requested global candidate budget.
        global_budget: Option<usize>,
        /// Requested sweep deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Evaluate one scenario against the tenant's base session.
    Scenario {
        /// Tenant name.
        tenant: String,
        /// The scenario's mask delta.
        delta: MaskDelta,
    },
    /// Evaluate a batch of scenarios against the tenant's base session.
    Batch {
        /// Tenant name.
        tenant: String,
        /// The scenarios' mask deltas, in order.
        deltas: Vec<MaskDelta>,
    },
    /// Durably apply a delta to the tenant's base session.
    Commit {
        /// Tenant name.
        tenant: String,
        /// The delta to commit.
        delta: MaskDelta,
    },
    /// Page through the tenant's current top-k couplings.
    Query {
        /// Tenant name.
        tenant: String,
        /// Exclusive cursor: return couplings with index greater than
        /// this.
        start_after: Option<usize>,
        /// Page size.
        limit: usize,
    },
    /// Spill the tenant to its artifact now.
    Evict {
        /// Tenant name.
        tenant: String,
    },
    /// Daemon counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
}

/// Decodes one request line. Errors are human-readable and become
/// `bad_request` responses.
pub fn decode_request(line: &str) -> Result<Request, String> {
    let value = parse(line)?;
    let obj = value.object("request")?;
    let op = get(obj, "op")?.string("op")?;
    match op {
        "open" => Ok(Request::Open {
            tenant: get(obj, "tenant")?.string("tenant")?.to_owned(),
            circuit: get(obj, "circuit")?.string("circuit")?.to_owned(),
            mode: match get(obj, "mode")?.string("mode")? {
                "addition" | "add" => crate::Mode::Addition,
                "elimination" | "elim" => crate::Mode::Elimination,
                other => return Err(format!("unknown mode `{other}`")),
            },
            k: get(obj, "k")?.unsigned("k")?,
            victim_budget: opt_unsigned(obj, "victim_budget")?,
            global_budget: opt_unsigned(obj, "global_budget")?,
            deadline_ms: opt_unsigned(obj, "deadline_ms")?.map(|n: usize| n as u64),
        }),
        "scenario" => Ok(Request::Scenario {
            tenant: get(obj, "tenant")?.string("tenant")?.to_owned(),
            delta: delta_of(obj)?,
        }),
        "batch" => {
            let scenarios = get(obj, "scenarios")?.array("scenarios")?;
            let deltas = scenarios
                .iter()
                .map(|s| delta_of(s.object("scenario")?))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch { tenant: get(obj, "tenant")?.string("tenant")?.to_owned(), deltas })
        }
        "commit" => Ok(Request::Commit {
            tenant: get(obj, "tenant")?.string("tenant")?.to_owned(),
            delta: delta_of(obj)?,
        }),
        "query" => Ok(Request::Query {
            tenant: get(obj, "tenant")?.string("tenant")?.to_owned(),
            start_after: opt_unsigned(obj, "start_after")?,
            limit: opt_unsigned(obj, "limit")?.unwrap_or(64),
        }),
        "evict" => Ok(Request::Evict { tenant: get(obj, "tenant")?.string("tenant")?.to_owned() }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Reads the optional `remove`/`add` id arrays of a scenario object.
fn delta_of(obj: &BTreeMap<String, Json>) -> Result<MaskDelta, String> {
    let ids = |key: &str| -> Result<Vec<CouplingId>, String> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(v) => v
                .array(key)?
                .iter()
                .map(|n| n.unsigned(key).map(|i: usize| CouplingId::new(i as u32)))
                .collect(),
        }
    };
    Ok(MaskDelta::new(&ids("remove")?, &ids("add")?))
}

/// Encodes one response as a single JSON line (no trailing newline).
#[must_use]
pub fn encode_response(response: &Response) -> String {
    let mut s = String::new();
    match response {
        Response::Opened { tenant, nets, couplings, fingerprint } => {
            s.push_str("{\"ok\":true,\"kind\":\"opened\",\"tenant\":");
            push_string(&mut s, tenant);
            let _ = write!(
                s,
                ",\"nets\":{nets},\"couplings\":{couplings},\"fingerprint\":\"{fingerprint:016x}\"}}"
            );
        }
        Response::Scenario { tenant, summary, coalesced, note } => {
            s.push_str("{\"ok\":true,\"kind\":\"scenario\",\"tenant\":");
            push_string(&mut s, tenant);
            let _ = write!(s, ",\"coalesced\":{coalesced},\"summary\":");
            push_summary(&mut s, summary);
            push_note(&mut s, note.as_deref());
            s.push('}');
        }
        Response::Batch { tenant, summaries, coalesced, note } => {
            s.push_str("{\"ok\":true,\"kind\":\"batch\",\"tenant\":");
            push_string(&mut s, tenant);
            let _ = write!(s, ",\"coalesced\":{coalesced},\"summaries\":[");
            for (i, summary) in summaries.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_summary(&mut s, summary);
            }
            s.push(']');
            push_note(&mut s, note.as_deref());
            s.push('}');
        }
        Response::Committed { tenant, summary, note } => {
            s.push_str("{\"ok\":true,\"kind\":\"committed\",\"tenant\":");
            push_string(&mut s, tenant);
            s.push_str(",\"summary\":");
            push_summary(&mut s, summary);
            push_note(&mut s, note.as_deref());
            s.push('}');
        }
        Response::Page { tenant, items, next, note } => {
            s.push_str("{\"ok\":true,\"kind\":\"page\",\"tenant\":");
            push_string(&mut s, tenant);
            s.push_str(",\"items\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{item}");
            }
            s.push_str("],\"next\":");
            match next {
                Some(n) => {
                    let _ = write!(s, "{n}");
                }
                None => s.push_str("null"),
            }
            push_note(&mut s, note.as_deref());
            s.push('}');
        }
        Response::Evicted { tenant, artifact_bytes } => {
            s.push_str("{\"ok\":true,\"kind\":\"evicted\",\"tenant\":");
            push_string(&mut s, tenant);
            let _ = write!(s, ",\"artifact_bytes\":{artifact_bytes}}}");
        }
        Response::Stats(stats) => push_stats(&mut s, stats),
        Response::Bye => s.push_str("{\"ok\":true,\"kind\":\"bye\"}"),
        Response::Error(e) => {
            let _ = write!(s, "{{\"ok\":false,\"code\":\"{}\",\"message\":", e.code.as_str());
            push_string(&mut s, &e.message);
            s.push('}');
        }
    }
    s
}

fn push_stats(s: &mut String, stats: &ServeStats) {
    let _ = write!(
        s,
        "{{\"ok\":true,\"kind\":\"stats\",\"tenants\":{},\"hot\":{},\"spilled\":{},\
         \"durable\":{},\"quarantined\":{},\"served\":{},\"coalesced\":{},\"spills\":{},\
         \"reloads\":{},\"reload_fallbacks\":{}}}",
        stats.tenants,
        stats.hot,
        stats.spilled,
        stats.durable,
        stats.quarantined,
        stats.served,
        stats.coalesced,
        stats.spills,
        stats.reloads,
        stats.reload_fallbacks
    );
}

fn push_summary(s: &mut String, summary: &ScenarioSummary) {
    let _ = write!(s, "{{\"degraded\":{},\"faults\":{}", summary.degraded, summary.faults);
    if let Some(cause) = &summary.first_fault {
        s.push_str(",\"first_fault\":");
        push_string(s, cause);
    }
    s.push_str(",\"set\":[");
    for (i, id) in summary.set.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{id}");
    }
    let _ = write!(s, "],\"sink\":{},\"delay_before\":", summary.sink);
    push_f64(s, summary.delay_before);
    s.push_str(",\"delay_after\":");
    push_f64(s, summary.delay_after);
    s.push_str(",\"predicted_delay\":");
    push_f64(s, summary.predicted_delay);
    let _ = write!(
        s,
        ",\"peak_list_width\":{},\"generated\":{},\"recomputed\":{},\"proven_clean\":{},\
         \"fingerprint\":\"{:016x}\"}}",
        summary.peak_list_width,
        summary.generated,
        summary.recomputed_victims,
        summary.proven_clean_victims,
        summary.fingerprint
    );
}

fn push_note(s: &mut String, note: Option<&str>) {
    if let Some(note) = note {
        s.push_str(",\"note\":");
        push_string(s, note);
    }
}

/// JSON has no NaN/Infinity; the identity fingerprint carries the exact
/// bits, so non-finite display values degrade to `null`.
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
        if v.fract() == 0.0 && v.abs() < 1e15 {
            s.push_str(".0");
        }
    } else {
        s.push_str("null");
    }
}

fn push_string(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

// ---------------------------------------------------------------------
// Minimal JSON value + parser (subset: enough for the request grammar).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn object(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Object(map) => Ok(map),
            _ => Err(format!("{what} must be an object")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(format!("{what} must be an array")),
        }
    }

    fn string(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(text) => Ok(text),
            _ => Err(format!("{what} must be a string")),
        }
    }

    fn unsigned(&self, what: &str) -> Result<usize, String> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as usize)
            }
            _ => Err(format!("{what} must be a non-negative integer")),
        }
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn opt_unsigned(obj: &BTreeMap<String, Json>, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.unsigned(key).map(Some),
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", expected as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object_value(),
            Some(b'[') => self.array_value(),
            Some(b'"') => Ok(Json::String(self.string_value()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number_value(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string_value()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array_value(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string_value(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_owned())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = text.chars().next().ok_or_else(|| "empty string tail".to_owned())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number_value(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{ErrorCode, ServeError};

    #[test]
    fn requests_round_trip_the_grammar() {
        let r = decode_request(
            r#"{"op":"open","tenant":"a","circuit":"c.ckt","mode":"elim","k":3,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Open {
                tenant: "a".into(),
                circuit: "c.ckt".into(),
                mode: crate::Mode::Elimination,
                k: 3,
                victim_budget: None,
                global_budget: None,
                deadline_ms: Some(250),
            }
        );

        let r =
            decode_request(r#"{"op":"scenario","tenant":"a","remove":[0,2],"add":[5]}"#).unwrap();
        let Request::Scenario { delta, .. } = r else { panic!("wrong op") };
        assert_eq!(delta.removed(), &[CouplingId::new(0), CouplingId::new(2)]);
        assert_eq!(delta.added(), &[CouplingId::new(5)]);

        let r = decode_request(
            r#"{"op":"batch","tenant":"a","scenarios":[{"remove":[1]},{"add":[2]}]}"#,
        )
        .unwrap();
        let Request::Batch { deltas, .. } = r else { panic!("wrong op") };
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].added().is_empty());
        assert_eq!(deltas[1].added(), &[CouplingId::new(2)]);

        let r = decode_request(r#"{"op":"query","tenant":"a","start_after":7,"limit":2}"#).unwrap();
        assert_eq!(r, Request::Query { tenant: "a".into(), start_after: Some(7), limit: 2 });

        assert_eq!(decode_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(decode_request(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("not json", "bad literal"),
            ("?", "unexpected byte"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"tenant":"a"}"#, "missing field `op`"),
            (r#"{"op":"open","tenant":"a","circuit":"c","mode":"sideways","k":1}"#, "unknown mode"),
            (r#"{"op":"scenario","tenant":"a","remove":[-1]}"#, "non-negative"),
            (r#"{"op":"query","tenant":"a","limit":"lots"}"#, "non-negative integer"),
            (r#"{"op":"stats"} trailing"#, "trailing bytes"),
        ] {
            let err = decode_request(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` -> `{err}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn responses_encode_as_single_json_lines() {
        let opened = Response::Opened {
            tenant: "a".into(),
            nets: 40,
            couplings: 31,
            fingerprint: 0xdead_beef,
        };
        let line = encode_response(&opened);
        assert_eq!(
            line,
            "{\"ok\":true,\"kind\":\"opened\",\"tenant\":\"a\",\"nets\":40,\
             \"couplings\":31,\"fingerprint\":\"00000000deadbeef\"}"
        );
        assert!(!line.contains('\n'));

        let err = Response::Error(ServeError {
            code: ErrorCode::Quarantined,
            message: "worker \"died\"\nbadly".into(),
        });
        let line = encode_response(&err);
        assert_eq!(
            line,
            "{\"ok\":false,\"code\":\"quarantined\",\"message\":\"worker \\\"died\\\"\\nbadly\"}"
        );
        // Encoded errors re-parse as objects.
        let value = parse(&line).unwrap();
        let obj = value.object("response").unwrap();
        assert_eq!(obj.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            obj.get("message").unwrap().string("message").unwrap(),
            "worker \"died\"\nbadly"
        );
    }

    #[test]
    fn summaries_carry_hex_fingerprints_and_finite_floats() {
        let summary = ScenarioSummary {
            degraded: true,
            faults: 1,
            first_fault: Some("victim 5: boom".into()),
            set: vec![1, 4],
            sink: 9,
            delay_before: 120.5,
            delay_after: 110.0,
            predicted_delay: f64::NAN,
            peak_list_width: 3,
            generated: 17,
            recomputed_victims: 2,
            proven_clean_victims: 6,
            fingerprint: 0x0123_4567_89ab_cdef,
        };
        let line = encode_response(&Response::Scenario {
            tenant: "a".into(),
            summary,
            coalesced: 3,
            note: Some("artifact rejected (corrupt): boom".into()),
        });
        assert!(line.contains("\"fingerprint\":\"0123456789abcdef\""));
        assert!(line.contains("\"delay_after\":110.0"), "{line}");
        assert!(line.contains("\"predicted_delay\":null"));
        assert!(line.contains("\"coalesced\":3"));
        assert!(line.contains("\"note\":\"artifact rejected (corrupt): boom\""));
        assert!(parse(&line).is_ok(), "scenario responses re-parse: {line}");
    }

    #[test]
    fn stats_and_page_encode() {
        let line = encode_response(&Response::Stats(ServeStats {
            tenants: 2,
            hot: 1,
            spilled: 1,
            ..ServeStats::default()
        }));
        assert!(line.contains("\"kind\":\"stats\""));
        assert!(line.contains("\"spilled\":1"));

        let line = encode_response(&Response::Page {
            tenant: "a".into(),
            items: vec![3, 8],
            next: Some(8),
            note: None,
        });
        assert!(line.contains("\"items\":[3,8]"));
        assert!(line.contains("\"next\":8"));
        let line = encode_response(&Response::Page {
            tenant: "a".into(),
            items: vec![],
            next: None,
            note: None,
        });
        assert!(line.contains("\"items\":[],\"next\":null"));
    }
}
