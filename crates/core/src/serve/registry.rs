//! Durable tenant registry: the daemon's crash-safe manifest.
//!
//! `dna serve --dir` keeps one artifact chain per tenant plus this
//! registry file (`tenants.dnareg`), an append-only log mapping tenant →
//! circuit source, admitted engine knobs, artifact file name and the
//! last generation the registry *witnessed*. The same write-ahead
//! discipline as the artifact chains applies:
//!
//! * every record is CRC-framed; a torn tail (partial append, `kill -9`
//!   mid-write) is detected at open and truncated away, keeping the
//!   longest valid prefix;
//! * a `put` appends one record and `fsync`s before the in-memory view
//!   changes — the file never claims something that was not durably
//!   written;
//! * the *artifact chain* is committed before the registry records the
//!   new generation (`pre-manifest` crash point sits between the two),
//!   so after any crash the chain tip is ≥ the registry's generation and
//!   recovery trusts the chain, never the registry, for state.
//!
//! Records are `op`-tagged (put / remove) and replayed last-writer-wins
//! into a map at open, so duplicate tenant ids collapse to the newest
//! record and a remove tombstones everything before it.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::error::{ArtifactError, TopKError};
use crate::persist::{crc32_multi, io_err, mode_from_u8, mode_to_u8, Reader, Writer};
use crate::{faultsim, Mode};

/// Leading magic of a registry file.
const MAGIC: &[u8; 8] = b"DNAREG\0\0";

/// Registry format version this build reads and writes.
pub const REGISTRY_VERSION: u32 = 1;

const FILE_HEADER_LEN: usize = 12;
/// `op u8 | payload_len u64 | crc u32`, little-endian. The CRC covers
/// the op byte, the length field and the payload, so a flipped bit in
/// the frame itself is as loud as one in the payload.
const RECORD_HEADER_LEN: usize = 13;
const CRC_COVERED_HEADER: usize = 9;

const OP_PUT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// One tenant's durable facts: everything the daemon needs to rebuild
/// the tenant after a restart *except* the session state itself, which
/// lives in the artifact chain the record points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Tenant name (the wire-protocol identifier).
    pub tenant: String,
    /// Circuit source the daemon resolved at `open` — a netlist file
    /// path. Re-resolved at recovery; a changed or missing file
    /// quarantines the tenant instead of silently resuming against the
    /// wrong circuit.
    pub circuit_source: String,
    /// Analysis mode the tenant was opened with.
    pub mode: Mode,
    /// `k` the tenant was opened with.
    pub k: usize,
    /// Admitted per-victim candidate budget (post-cap), when any.
    pub victim_budget: Option<usize>,
    /// Admitted global candidate budget (post-cap), when any.
    pub global_budget: Option<usize>,
    /// Admitted sweep deadline in milliseconds (post-cap), when any.
    pub deadline_ms: Option<u64>,
    /// Artifact chain file name, relative to the state directory.
    pub artifact: String,
    /// Last generation the registry witnessed a commit for. The chain
    /// itself is authoritative — after a `pre-manifest` crash the chain
    /// tip is one ahead of this.
    pub generation: u64,
    /// Identity fingerprint of the session result at that generation.
    pub fingerprint: u64,
    /// FNV-1a fingerprint of the canonical netlist text, pinning the
    /// record to the exact circuit it was opened against.
    pub circuit_fingerprint: u64,
}

fn encode_opt(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
    }
}

fn decode_opt(r: &mut Reader<'_>, what: &str) -> Result<Option<u64>, ArtifactError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what)?)),
        other => Err(ArtifactError::Malformed { what: format!("{what}: bad option tag {other}") }),
    }
}

fn encode_put(rec: &TenantRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&rec.tenant);
    w.str(&rec.circuit_source);
    w.u8(mode_to_u8(rec.mode));
    w.usize(rec.k);
    encode_opt(&mut w, rec.victim_budget.map(|v| v as u64));
    encode_opt(&mut w, rec.global_budget.map(|v| v as u64));
    encode_opt(&mut w, rec.deadline_ms);
    w.str(&rec.artifact);
    w.u64(rec.generation);
    w.u64(rec.fingerprint);
    w.u64(rec.circuit_fingerprint);
    w.buf
}

fn decode_put(payload: &[u8]) -> Result<TenantRecord, ArtifactError> {
    let mut r = Reader::new(payload);
    let tenant = r.str("registry tenant")?;
    let circuit_source = r.str("registry circuit source")?;
    let mode = mode_from_u8(r.u8("registry mode")?)?;
    let k = r.usize("registry k")?;
    let victim_budget = decode_opt(&mut r, "registry victim budget")?.map(|v| v as usize);
    let global_budget = decode_opt(&mut r, "registry global budget")?.map(|v| v as usize);
    let deadline_ms = decode_opt(&mut r, "registry deadline")?;
    let artifact = r.str("registry artifact name")?;
    let generation = r.u64("registry generation")?;
    let fingerprint = r.u64("registry fingerprint")?;
    let circuit_fingerprint = r.u64("registry circuit fingerprint")?;
    r.done()?;
    Ok(TenantRecord {
        tenant,
        circuit_source,
        mode,
        k,
        victim_budget,
        global_budget,
        deadline_ms,
        artifact,
        generation,
        fingerprint,
        circuit_fingerprint,
    })
}

fn frame(op: u8, payload: &[u8]) -> Vec<u8> {
    let mut head = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    head.push(op);
    head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32_multi(&[&head[..CRC_COVERED_HEADER], payload]);
    head.extend_from_slice(&crc.to_le_bytes());
    head.extend_from_slice(payload);
    head
}

/// One parsed registry operation.
enum RegistryOp {
    Put(TenantRecord),
    Remove(String),
}

/// Parses the record at `bytes[pos..]`; `Ok(None)` marks a clean end of
/// file, `Err` a torn or corrupt suffix (everything from `pos` on is
/// untrusted).
fn parse_record(bytes: &[u8], pos: usize) -> Result<Option<(RegistryOp, usize)>, ArtifactError> {
    if pos == bytes.len() {
        return Ok(None);
    }
    if bytes.len() - pos < RECORD_HEADER_LEN {
        return Err(ArtifactError::Truncated {
            needed: RECORD_HEADER_LEN,
            have: bytes.len() - pos,
        });
    }
    let head = &bytes[pos..pos + RECORD_HEADER_LEN];
    let op = head[0];
    let payload_len = u64::from_le_bytes(head[1..9].try_into().expect("slice is 8 bytes")) as usize;
    let stored = u32::from_le_bytes(head[9..13].try_into().expect("slice is 4 bytes"));
    let body_start = pos + RECORD_HEADER_LEN;
    if bytes.len() - body_start < payload_len {
        return Err(ArtifactError::Truncated {
            needed: payload_len,
            have: bytes.len() - body_start,
        });
    }
    let payload = &bytes[body_start..body_start + payload_len];
    let computed = crc32_multi(&[&head[..CRC_COVERED_HEADER], payload]);
    if computed != stored {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }
    let parsed = match op {
        OP_PUT => RegistryOp::Put(decode_put(payload)?),
        OP_REMOVE => {
            let mut r = Reader::new(payload);
            let tenant = r.str("registry remove tenant")?;
            r.done()?;
            RegistryOp::Remove(tenant)
        }
        other => {
            return Err(ArtifactError::Malformed {
                what: format!("unknown registry op tag {other}"),
            })
        }
    };
    Ok(Some((parsed, body_start + payload_len)))
}

/// What [`TenantRegistry::open`] salvaged from an existing file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryRecovery {
    /// Live tenants after last-writer-wins replay.
    pub entries: usize,
    /// Records replayed (puts + removes, including superseded ones).
    pub records: usize,
    /// Torn/corrupt suffix bytes truncated away at open.
    pub truncated_bytes: u64,
    /// Description of the damage, when any was found.
    pub damage: Option<String>,
}

/// The append-only tenant manifest. All mutation goes through
/// [`put`](Self::put) / [`remove`](Self::remove), which append + `fsync`
/// before the in-memory map changes.
#[derive(Debug)]
pub struct TenantRegistry {
    path: PathBuf,
    file: File,
    entries: BTreeMap<String, TenantRecord>,
}

impl TenantRegistry {
    /// Opens (or creates) the registry at `path`, replaying every valid
    /// record and truncating a torn or corrupt suffix in place — the
    /// recovery report says what was lost.
    ///
    /// # Errors
    ///
    /// [`TopKError::Artifact`] when the file exists but is not a
    /// registry (bad magic, version skew — damage truncation never
    /// crosses the file header), or on any filesystem failure.
    pub fn open(path: &Path) -> Result<(Self, RegistryRecovery), TopKError> {
        let mut recovery = RegistryRecovery::default();
        let exists = path.exists();
        if !exists {
            let mut f = File::create(path).map_err(|e| io_err("create registry", path, &e))?;
            f.write_all(MAGIC).map_err(|e| io_err("write registry header", path, &e))?;
            f.write_all(&REGISTRY_VERSION.to_le_bytes())
                .map_err(|e| io_err("write registry header", path, &e))?;
            f.sync_data().map_err(|e| io_err("sync registry", path, &e))?;
            return Ok((
                Self { path: path.to_owned(), file: f, entries: BTreeMap::new() },
                recovery,
            ));
        }

        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("read registry", path, &e))?;
        if bytes.len() < FILE_HEADER_LEN || &bytes[..8] != MAGIC {
            return Err(ArtifactError::BadMagic.into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("slice is 4 bytes"));
        if version != REGISTRY_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: REGISTRY_VERSION,
            }
            .into());
        }

        let mut entries = BTreeMap::new();
        let mut pos = FILE_HEADER_LEN;
        loop {
            match parse_record(&bytes, pos) {
                Ok(None) => break,
                Ok(Some((op, next))) => {
                    recovery.records += 1;
                    match op {
                        RegistryOp::Put(rec) => {
                            entries.insert(rec.tenant.clone(), rec);
                        }
                        RegistryOp::Remove(tenant) => {
                            entries.remove(&tenant);
                        }
                    }
                    pos = next;
                }
                Err(e) => {
                    // Torn or corrupt suffix: keep the committed prefix,
                    // truncate the rest away so future appends never
                    // splice onto garbage.
                    recovery.truncated_bytes = (bytes.len() - pos) as u64;
                    recovery.damage = Some(e.to_string());
                    break;
                }
            }
        }
        if recovery.truncated_bytes > 0 {
            let keep = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("open registry for repair", path, &e))?;
            keep.set_len(pos as u64).map_err(|e| io_err("truncate registry", path, &e))?;
            keep.sync_data().map_err(|e| io_err("sync registry repair", path, &e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("open registry for append", path, &e))?;
        recovery.entries = entries.len();
        Ok((Self { path: path.to_owned(), file, entries }, recovery))
    }

    /// Records (or supersedes) one tenant: append + `fsync`, then update
    /// the in-memory view. Consults the `pre-manifest` crash point first
    /// — a crash there leaves the artifact chain committed but the
    /// registry a generation behind, which recovery resolves in the
    /// chain's favor.
    ///
    /// # Errors
    ///
    /// [`TopKError::Artifact`] ([`ArtifactError::Io`]) on any filesystem
    /// failure; the in-memory view is unchanged and the call can be
    /// retried.
    pub fn put(&mut self, rec: TenantRecord) -> Result<(), TopKError> {
        faultsim::maybe_crash("pre-manifest");
        let bytes = frame(OP_PUT, &encode_put(&rec));
        self.append(&bytes)?;
        self.entries.insert(rec.tenant.clone(), rec);
        Ok(())
    }

    /// Tombstones one tenant. Same durability contract as
    /// [`put`](Self::put).
    ///
    /// # Errors
    ///
    /// [`TopKError::Artifact`] ([`ArtifactError::Io`]) on any filesystem
    /// failure; the in-memory view is unchanged.
    pub fn remove(&mut self, tenant: &str) -> Result<(), TopKError> {
        let mut w = Writer::new();
        w.str(tenant);
        let bytes = frame(OP_REMOVE, &w.buf);
        self.append(&bytes)?;
        self.entries.remove(tenant);
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), TopKError> {
        self.file.write_all(bytes).map_err(|e| io_err("append registry record", &self.path, &e))?;
        self.file.sync_data().map_err(|e| io_err("sync registry", &self.path, &e))
    }

    /// Live tenants, last-writer-wins.
    #[must_use]
    pub fn entries(&self) -> &BTreeMap<String, TenantRecord> {
        &self.entries
    }

    /// Registry file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tenant: &str, generation: u64) -> TenantRecord {
        TenantRecord {
            tenant: tenant.to_owned(),
            circuit_source: format!("{tenant}.dna"),
            mode: Mode::Elimination,
            k: 3,
            victim_budget: Some(128),
            global_budget: None,
            deadline_ms: Some(2_000),
            artifact: format!("{tenant}.dnawifa"),
            generation,
            fingerprint: 0xfeed_f00d_dead_beef,
            circuit_fingerprint: 42,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dna-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn empty_registry_round_trips() {
        let dir = tmp_dir("empty");
        let path = dir.join("tenants.dnareg");
        {
            let (reg, recovery) = TenantRegistry::open(&path).expect("create");
            assert!(reg.entries().is_empty());
            assert_eq!(recovery, RegistryRecovery::default());
        }
        let (reg, recovery) = TenantRegistry::open(&path).expect("reopen");
        assert!(reg.entries().is_empty());
        assert_eq!(recovery.records, 0);
        assert_eq!(recovery.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_remove_and_duplicate_ids_collapse_last_writer_wins() {
        let dir = tmp_dir("dupes");
        let path = dir.join("tenants.dnareg");
        {
            let (mut reg, _) = TenantRegistry::open(&path).expect("create");
            reg.put(record("a", 0)).expect("put a@0");
            reg.put(record("b", 0)).expect("put b@0");
            reg.put(record("a", 7)).expect("put a@7 (duplicate id)");
            reg.remove("b").expect("remove b");
        }
        let (reg, recovery) = TenantRegistry::open(&path).expect("reopen");
        assert_eq!(recovery.records, 4, "every operation is replayed");
        assert_eq!(recovery.entries, 1);
        assert_eq!(reg.entries().len(), 1);
        let a = reg.entries().get("a").expect("a survives");
        assert_eq!(a.generation, 7, "the newest duplicate wins");
        assert_eq!(a, &record("a", 7), "the record round-trips field-for-field");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let dir = tmp_dir("torn");
        let path = dir.join("tenants.dnareg");
        {
            let (mut reg, _) = TenantRegistry::open(&path).expect("create");
            reg.put(record("a", 1)).expect("put a");
            reg.put(record("b", 2)).expect("put b");
        }
        let full = std::fs::read(&path).expect("read");
        // Tear the file mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 5]).expect("tear");
        let (reg, recovery) = TenantRegistry::open(&path).expect("lenient open");
        assert_eq!(reg.entries().len(), 1, "only the committed record survives");
        assert!(reg.entries().contains_key("a"));
        assert_eq!(
            recovery.truncated_bytes as usize,
            (full.len() - 5) - torn_prefix_len(&full),
            "torn suffix measured from the last committed record"
        );
        assert!(recovery.damage.is_some());
        // The truncation is persistent: a re-open is clean.
        let (reg2, recovery2) = TenantRegistry::open(&path).expect("clean reopen");
        assert_eq!(reg2.entries().len(), 1);
        assert_eq!(recovery2.truncated_bytes, 0);
        assert_eq!(recovery2.damage, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Byte offset where the second record of `full` starts.
    fn torn_prefix_len(full: &[u8]) -> usize {
        let payload_len =
            u64::from_le_bytes(full[FILE_HEADER_LEN + 1..FILE_HEADER_LEN + 9].try_into().unwrap())
                as usize;
        FILE_HEADER_LEN + RECORD_HEADER_LEN + payload_len
    }

    #[test]
    fn corrupt_record_is_rejected_with_its_suffix() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("tenants.dnareg");
        {
            let (mut reg, _) = TenantRegistry::open(&path).expect("create");
            reg.put(record("a", 1)).expect("put a");
            reg.put(record("b", 2)).expect("put b");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let second = torn_prefix_len(&bytes);
        bytes[second + RECORD_HEADER_LEN] ^= 0x01; // flip one payload bit of record 2
        std::fs::write(&path, &bytes).expect("corrupt");
        let (reg, recovery) = TenantRegistry::open(&path).expect("lenient open");
        assert_eq!(reg.entries().len(), 1);
        assert!(recovery.damage.expect("damage reported").contains("checksum"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_foreign_file_is_rejected_outright() {
        let dir = tmp_dir("foreign");
        let path = dir.join("tenants.dnareg");
        std::fs::write(&path, b"not a registry at all").expect("write");
        let e = TenantRegistry::open(&path).expect_err("bad magic");
        assert!(e.to_string().contains("magic"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
