//! Dominance pruning: irredundant lists (paper §3.2, Theorem 1).

use std::collections::HashSet;

use dna_waveform::TimeInterval;

use crate::{Candidate, CouplingSet};

/// Which way envelope encapsulation means "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceDirection {
    /// Addition mode: a candidate whose envelope encapsulates another's can
    /// never couple less delay noise (Theorem 1) — **bigger** envelopes
    /// dominate.
    BiggerIsBetter,
    /// Elimination mode: candidates carry *residual* envelopes and the
    /// residual that is encapsulated **by** the other's leaves less noise
    /// behind — **smaller** envelopes dominate.
    SmallerIsBetter,
}

/// Reduces `candidates` (all of the same cardinality, rendered at the same
/// victim) to an irredundant list.
///
/// Steps, in order:
///
/// 1. sort best-first by cached delay noise (direction-aware),
/// 2. deduplicate identical coupling sets (keeping the best occurrence),
/// 3. with a beam configured, pre-truncate to a bounded oversample,
/// 4. drop every candidate dominated by another within the victim's
///    `dominance_interval` (skipped when `use_dominance` is false, for the
///    ablation study) — an O(1) cached-bound prefilter rejects provably
///    non-dominating pairs before any full PWL comparison,
/// 5. apply the optional beam cap, keeping the candidates that are best by
///    cached delay noise — largest for addition, smallest for elimination.
///
/// Ties under mutual encapsulation (identical envelopes) keep the
/// earlier candidate so the result is deterministic.
#[must_use]
pub fn irredundant(
    mut candidates: Vec<Candidate>,
    dominance_interval: TimeInterval,
    direction: DominanceDirection,
    use_dominance: bool,
    beam: Option<usize>,
) -> Vec<Candidate> {
    // 1. Sort best-delay-noise-first (direction-aware). Ordering first
    // means the dedupe below keeps the *best* candidate per coupling set —
    // the same set can be generated through different routes (e.g. as a
    // fanin pseudo aggressor and as a window widener) with different
    // envelopes.
    // `total_cmp`, not `partial_cmp(..).expect(..)`: one degenerate
    // candidate smuggled in with a NaN delay noise (e.g. through the
    // raw-parts escape hatch, or a `0.0 / 0.0` in a broken envelope)
    // must not abort the whole sweep. Under the IEEE total order NaN
    // sorts above every number, so `BiggerIsBetter` would rank it first;
    // the explicit non-finite demotion keeps such candidates *worst* in
    // either direction, where the beam cap and dominance pass dispose of
    // them deterministically.
    candidates.sort_by(|a, b| {
        match (a.delay_noise().is_finite(), b.delay_noise().is_finite()) {
            (true, false) => return std::cmp::Ordering::Less,
            (false, true) => return std::cmp::Ordering::Greater,
            _ => {}
        }
        let ord = a.delay_noise().total_cmp(&b.delay_noise());
        match direction {
            DominanceDirection::BiggerIsBetter => ord.reverse(),
            DominanceDirection::SmallerIsBetter => ord,
        }
    });

    // 2. Dedupe by coupling set, keeping the best occurrence.
    let mut seen: HashSet<CouplingSet> = HashSet::with_capacity(candidates.len());
    candidates.retain(|c| seen.insert(c.set().clone()));

    // 3. With a beam configured, pre-truncate (already sorted) so the
    // quadratic dominance pass below runs on a bounded set. The
    // oversampling factor keeps enough diversity for dominance to matter;
    // exact mode (no beam) skips this entirely.
    if let Some(width) = beam {
        let cap = width.saturating_mul(4).max(64);
        candidates.truncate(cap);
    }

    // 4. Dominance pruning, exploiting the ordering invariant: an
    // envelope that encapsulates another produces at least as much delay
    // noise (Theorem 1 with the empty extension), so only *earlier*
    // candidates can dominate later ones. One forward sweep against the
    // kept list suffices. The O(1) cached-bound prefilter
    // (`may_encapsulate`) proves most pairs non-dominating without
    // touching their breakpoint lists, so the expensive PWL comparison
    // runs only on plausible pairs.
    if use_dominance && candidates.len() > 1 {
        let mut kept: Vec<Candidate> = Vec::with_capacity(candidates.len().min(64));
        'next: for cand in candidates {
            for winner in &kept {
                let (big, small) = match direction {
                    DominanceDirection::BiggerIsBetter => (winner, &cand),
                    DominanceDirection::SmallerIsBetter => (&cand, winner),
                };
                let dominated =
                    big.envelope().may_encapsulate(small.envelope(), dominance_interval)
                        && big.envelope().encapsulates(small.envelope(), dominance_interval);
                if dominated {
                    continue 'next;
                }
            }
            kept.push(cand);
            // A full beam of mutually non-dominated candidates is enough —
            // anything sorted after them is either dominated or outside
            // the beam anyway.
            if let Some(width) = beam {
                if kept.len() >= width {
                    break;
                }
            }
        }
        candidates = kept;
    }

    // 5. Beam cap (already sorted best-first).
    if let Some(width) = beam {
        candidates.truncate(width);
    }
    debug_assert!(
        !use_dominance || find_dominated_pair(&candidates, dominance_interval, direction).is_none(),
        "irredundant() output contains a dominated pair"
    );
    candidates
}

/// Finds a redundant pair in a **ranked** candidate list, if any.
///
/// `candidates` is assumed sorted best-first by cached delay noise, the
/// order [`irredundant`] produces. Returns `Some((winner, loser))` —
/// indices with `winner < loser` such that the better-ranked
/// `candidates[winner]` dominates `candidates[loser]` under `direction`
/// over `dominance_interval` — or `None` when every candidate earns its
/// slot. Identical envelopes count as dominance, mirroring
/// [`irredundant`] which keeps only one of a tied pair.
///
/// Only the earlier-dominates-later direction is checked: that is the
/// exact post-condition of [`irredundant`]'s forward sweep. The reverse
/// (a worse-ranked candidate whose envelope encapsulates a better-ranked
/// one) can legitimately survive, because the cached delay noise is
/// measured on the victim's clip window while encapsulation is tested on
/// the (narrower) dominance interval, and the two can disagree near ties.
///
/// A `debug_assert!` checks this after every prune, and the `dna-lint`
/// rule `L030` applies it to engine state. Quadratic — meant for checks,
/// not hot paths.
#[must_use]
pub fn find_dominated_pair(
    candidates: &[Candidate],
    dominance_interval: TimeInterval,
    direction: DominanceDirection,
) -> Option<(usize, usize)> {
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let (a, b) = (&candidates[i], &candidates[j]);
            let (big, small) = match direction {
                DominanceDirection::BiggerIsBetter => (a, b),
                DominanceDirection::SmallerIsBetter => (b, a),
            };
            // Same cheap-reject prefilter as `irredundant`: a pair the
            // cached bounds prove non-dominating skips the PWL comparison.
            let i_wins = big.envelope().may_encapsulate(small.envelope(), dominance_interval)
                && big.envelope().encapsulates(small.envelope(), dominance_interval);
            if i_wins {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::CouplingId;
    use dna_waveform::{Envelope, NoisePulse};

    fn cand(ids: &[u32], peak: f64, width: f64, dn: f64) -> Candidate {
        let set = ids.iter().map(|&i| CouplingId::new(i)).collect();
        let env = Envelope::from_window(&NoisePulse::symmetric(0.0, peak, 4.0), 0.0, width);
        Candidate::new(set, env, dn)
    }

    fn interval() -> TimeInterval {
        TimeInterval::new(-5.0, 40.0)
    }

    #[test]
    fn dedupes_identical_sets_keeping_best() {
        let c = vec![cand(&[1], 0.2, 5.0, 1.0), cand(&[1], 0.3, 9.0, 2.0)];
        let out = irredundant(c, interval(), DominanceDirection::BiggerIsBetter, true, None);
        assert_eq!(out.len(), 1);
        // The best occurrence wins: the same set can be generated through
        // different routes with different envelopes.
        assert_eq!(out[0].delay_noise(), 2.0);
        // In elimination direction the smaller residual wins instead.
        let c = vec![cand(&[1], 0.3, 9.0, 2.0), cand(&[1], 0.2, 5.0, 1.0)];
        let out = irredundant(c, interval(), DominanceDirection::SmallerIsBetter, true, None);
        assert_eq!(out[0].delay_noise(), 1.0);
    }

    #[test]
    fn bigger_envelope_dominates_in_addition() {
        let big = cand(&[1], 0.4, 10.0, 3.0);
        let small = cand(&[2], 0.2, 5.0, 1.0);
        let out = irredundant(
            vec![small, big],
            interval(),
            DominanceDirection::BiggerIsBetter,
            true,
            None,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].set().contains(CouplingId::new(1)));
    }

    #[test]
    fn smaller_envelope_dominates_in_elimination() {
        let big = cand(&[1], 0.4, 10.0, 3.0);
        let small = cand(&[2], 0.2, 5.0, 1.0);
        let out = irredundant(
            vec![big, small],
            interval(),
            DominanceDirection::SmallerIsBetter,
            true,
            None,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].set().contains(CouplingId::new(2)));
    }

    #[test]
    fn incomparable_candidates_both_survive() {
        // Same shape, disjoint supports: mutually non-dominated.
        let a = Candidate::new(
            CouplingSet::singleton(CouplingId::new(1)),
            Envelope::from_pulse(&NoisePulse::symmetric(0.0, 0.3, 4.0)),
            1.0,
        );
        let b = Candidate::new(
            CouplingSet::singleton(CouplingId::new(2)),
            Envelope::from_pulse(&NoisePulse::symmetric(20.0, 0.3, 4.0)),
            1.0,
        );
        let out =
            irredundant(vec![a, b], interval(), DominanceDirection::BiggerIsBetter, true, None);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn equal_envelopes_keep_first() {
        let a = cand(&[1], 0.3, 6.0, 2.0);
        let b = cand(&[2], 0.3, 6.0, 2.0);
        let out =
            irredundant(vec![a, b], interval(), DominanceDirection::BiggerIsBetter, true, None);
        assert_eq!(out.len(), 1);
        assert!(out[0].set().contains(CouplingId::new(1)));
    }

    #[test]
    fn nan_delay_noise_does_not_panic_and_ranks_worst() {
        // Regression: the sort comparator used
        // `partial_cmp(..).expect("finite delay noise")`, so a single
        // degenerate candidate (NaN cached delay noise, e.g. from a
        // zero-width envelope dividing 0.0 by 0.0) aborted the whole
        // sweep. `total_cmp` plus the non-finite demotion must survive it
        // and rank the degenerate entry last in either direction.
        // Disjoint support from the finite candidate, so dominance cannot
        // dispose of it and the *ordering* itself is what's under test.
        let nan = Candidate::from_raw_unchecked(
            CouplingSet::singleton(CouplingId::new(9)),
            Envelope::from_pulse(&NoisePulse::symmetric(20.0, 0.3, 4.0)),
            f64::NAN,
        );
        let good = cand(&[1], 0.3, 6.0, 2.0);
        for direction in [DominanceDirection::BiggerIsBetter, DominanceDirection::SmallerIsBetter] {
            let out =
                irredundant(vec![nan.clone(), good.clone()], interval(), direction, true, None);
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].delay_noise(), 2.0, "finite candidate must rank first");
            assert!(out[1].delay_noise().is_nan());
        }
        // With a beam of 1, the degenerate candidate is squeezed out
        // entirely — never chosen over a finite one.
        let out = irredundant(
            vec![nan, good],
            interval(),
            DominanceDirection::BiggerIsBetter,
            true,
            Some(1),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].delay_noise().is_finite());
    }

    #[test]
    fn pruning_disabled_keeps_everything_distinct() {
        let c = vec![cand(&[1], 0.4, 10.0, 3.0), cand(&[2], 0.2, 5.0, 1.0)];
        let out = irredundant(c, interval(), DominanceDirection::BiggerIsBetter, false, None);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn beam_keeps_best_by_direction() {
        let c = vec![
            Candidate::new(
                CouplingSet::singleton(CouplingId::new(1)),
                Envelope::from_pulse(&NoisePulse::symmetric(0.0, 0.3, 4.0)),
                1.0,
            ),
            Candidate::new(
                CouplingSet::singleton(CouplingId::new(2)),
                Envelope::from_pulse(&NoisePulse::symmetric(50.0, 0.3, 4.0)),
                5.0,
            ),
            Candidate::new(
                CouplingSet::singleton(CouplingId::new(3)),
                Envelope::from_pulse(&NoisePulse::symmetric(100.0, 0.3, 4.0)),
                3.0,
            ),
        ];
        let add = irredundant(
            c.clone(),
            TimeInterval::new(-5.0, 200.0),
            DominanceDirection::BiggerIsBetter,
            true,
            Some(2),
        );
        assert_eq!(add.len(), 2);
        assert!(add.iter().any(|x| x.delay_noise() == 5.0));
        assert!(add.iter().all(|x| x.delay_noise() >= 3.0));

        let del = irredundant(
            c,
            TimeInterval::new(-5.0, 200.0),
            DominanceDirection::SmallerIsBetter,
            true,
            Some(1),
        );
        assert_eq!(del.len(), 1);
        assert_eq!(del[0].delay_noise(), 1.0);
    }
}
