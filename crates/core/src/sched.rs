//! Deterministic work-stealing scheduler for the per-victim sweeps.
//!
//! The level-lockstep sweep this module replaces (PR 2–5) synchronized
//! workers at every dependency level: a barrier per level, budgets
//! snapshotted and charged at the barriers. That made determinism easy
//! but serialized the long tail — one high-fanin victim at the end of a
//! level idled every other worker, and on skewed circuits `threads=4`
//! ran *slower* than serial. The barriers were ours, not the problem's:
//! a victim's enumeration depends only on its strict fanin, never on
//! same-level siblings.
//!
//! This scheduler keeps the determinism and drops the barriers:
//!
//! * **Per-victim tasks on work-stealing deques.** Each worker owns a
//!   deque (owner pops LIFO from the back, thieves steal FIFO from the
//!   front — the Chase–Lev discipline, here over a `Mutex<VecDeque>`
//!   because the crate forbids `unsafe` and the tasks are coarse enough
//!   that lock traffic is noise). A task becomes ready the moment its
//!   last fanin dependency completes, not when its level starts.
//! * **Victim-indexed result slots.** Every task writes its output into
//!   a slot owned by its victim ([`Slots`], one write-once cell per
//!   net), so completion order — and therefore steal order and thread
//!   count — can never affect what is stored where. Stats that cross
//!   victims ([`crate::SweepStats`], fault lists) are merged with
//!   commutative/associative folds after the sweep joins.
//! * **Pre-partitioned budgets.** The global candidate budget is split
//!   into per-victim shares *before* the sweep starts, by rank in
//!   victim-index order ([`BudgetPartition`]) — replacing the old
//!   level-barrier charging. Which victims are skipped or truncated is
//!   a pure function of (circuit, config, dirty set); no schedule can
//!   change it.
//! * **LPT seeding.** The initial ready set is dealt to the deques
//!   longest-processing-time-first using cached per-victim cost
//!   estimates, so the giant tail tasks start immediately instead of
//!   last.
//!
//! # Determinism argument
//!
//! The per-victim enumeration is a pure function of (a) the victim's
//! primaries under the mask, (b) per-net `Prepared` state, and (c) the
//! irredundant lists of its strict fanin. The task graph has an edge
//! for exactly the fanin reads in (c), every task writes only its own
//! slot, and budget shares are fixed up front — so *any*
//! dependency-respecting execution order produces bit-identical slots,
//! counters and budget outcomes. The serial path (one worker, tasks in
//! topological order) is therefore not just a fallback but the
//! reference: `dna lint --deep` replays it and compares every slot and
//! share against a parallel run (rule L060).
//!
//! The steal-order axis can be perturbed deliberately (without touching
//! results) via the `DNA_SCHED_SHUFFLE` environment variable — a
//! deterministic seed the CI stress pass sweeps to shake out schedule
//! dependence.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use dna_netlist::NetId;

use crate::engine::{panic_message, NetLists};
use crate::result::FaultPhase;
use crate::{TopKConfig, TopKError};

/// One schedulable unit: a victim (or scenario × victim) enumeration.
///
/// Tasks are identified by their index in the task array, which callers
/// must lay out in a topological order (every entry of `dependents`
/// points forward) so the serial reference path is a plain loop.
pub(crate) struct Task {
    /// Tasks that cannot start before this one completes (the victims
    /// whose driver-gate inputs include this task's victim).
    pub dependents: Vec<usize>,
    /// How many dependencies must complete before this task is ready.
    pub indegree: usize,
    /// Cost estimate for LPT seeding (higher = scheduled earlier).
    pub cost: u64,
}

/// Scheduling counters of one sweep: how the work spread over the
/// workers. Diagnostic only — never part of a result fingerprint, never
/// persisted in artifacts, and excluded from every identity contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    pub(crate) threads: usize,
    pub(crate) tasks: usize,
    pub(crate) steals: usize,
    pub(crate) max_busy_ns: u64,
    pub(crate) min_busy_ns: u64,
    pub(crate) busy_ns: u64,
    pub(crate) tail_task_ns: u64,
}

impl SchedStats {
    /// Worker threads the sweep actually ran on (1 = the serial
    /// reference path).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Victim (or scenario × victim) tasks executed.
    #[must_use]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Tasks a worker took from another worker's deque.
    #[must_use]
    pub fn steals(&self) -> usize {
        self.steals
    }

    /// Busy nanoseconds of the most-loaded worker.
    #[must_use]
    pub fn max_busy_ns(&self) -> u64 {
        self.max_busy_ns
    }

    /// Busy nanoseconds of the least-loaded worker.
    #[must_use]
    pub fn min_busy_ns(&self) -> u64 {
        self.min_busy_ns
    }

    /// Total busy nanoseconds summed over all workers.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Busy nanoseconds of the single longest task — the tail the
    /// level-lockstep sweep used to serialize on.
    #[must_use]
    pub fn tail_task_ns(&self) -> u64 {
        self.tail_task_ns
    }

    /// Share of total busy time spent in the single longest task, in
    /// `[0, 1]`. Close to 1 means one victim dominates the sweep and no
    /// scheduler can help; close to 0 means the work is spreadable.
    #[must_use]
    pub fn tail_task_share(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.tail_task_ns as f64 / self.busy_ns as f64
        }
    }

    /// Folds another sweep's counters into this one (commutative and
    /// associative up to the max/min fields, which is all the peeled
    /// loop and the batch engine need).
    pub(crate) fn merge(&mut self, other: &SchedStats) {
        if other.tasks == 0 {
            return;
        }
        if self.tasks == 0 {
            *self = *other;
            return;
        }
        self.threads = self.threads.max(other.threads);
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.max_busy_ns = self.max_busy_ns.max(other.max_busy_ns);
        self.min_busy_ns = self.min_busy_ns.min(other.min_busy_ns);
        self.busy_ns += other.busy_ns;
        self.tail_task_ns = self.tail_task_ns.max(other.tail_task_ns);
    }
}

/// Victim-indexed write-once result slots: the published I-lists every
/// in-flight task may read for its strict fanin.
///
/// Clean (cached) nets are pre-published from the seed lists; each dirty
/// net's slot is written exactly once, by whichever worker ran its task,
/// *before* the scheduler releases the net's dependents — so a reader
/// can never observe an unset fanin slot.
pub(crate) struct Slots {
    slots: Vec<OnceLock<NetLists>>,
}

impl Slots {
    /// Slots over `seed` with every net *not* flagged in `dirty`
    /// pre-published from its cached lists (cheap `Arc` clones).
    pub fn from_seeds(seed: &[NetLists], dirty: &[bool]) -> Self {
        let slots: Vec<OnceLock<NetLists>> = seed
            .iter()
            .zip(dirty)
            .map(|(lists, &d)| {
                let cell = OnceLock::new();
                if !d {
                    let _ = cell.set(lists.clone());
                }
                cell
            })
            .collect();
        Self { slots }
    }

    /// The published lists of `net`. Unreachable under the scheduler's
    /// dependency edges; if a slot is nonetheless empty (a missing edge),
    /// the read surfaces a typed [`TopKError::SchedulerInvariant`] so the
    /// reading victim is quarantined instead of the process aborting.
    pub fn lists(&self, net: NetId) -> Result<&NetLists, TopKError> {
        self.slots[net.index()].get().ok_or_else(|| TopKError::SchedulerInvariant {
            victim: net.index(),
            detail: "fanin slot read before its task completed — dependency edge missing".into(),
        })
    }

    /// Publishes a dirty net's freshly computed lists. Must happen
    /// before the net's dependents are released.
    pub fn publish(&self, net: NetId, lists: NetLists) {
        let fresh = self.slots[net.index()].set(lists).is_ok();
        debug_assert!(fresh, "slot for net {} published twice", net.index());
    }

    /// Unwraps into the final per-net lists vector once the sweep has
    /// completed every task. A net whose slot was never published — a
    /// broken sweep invariant — yields empty lists plus a typed
    /// [`TopKError::SchedulerInvariant`] in the companion vector, so the
    /// caller can quarantine that victim (`Degraded`) instead of
    /// aborting the process.
    pub fn into_lists(self) -> (Vec<NetLists>, Vec<TopKError>) {
        let mut violations = Vec::new();
        let lists = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.into_inner().unwrap_or_else(|| {
                    violations.push(TopKError::SchedulerInvariant {
                        victim: i,
                        detail: "result slot never published after a completed sweep".into(),
                    });
                    NetLists::default()
                })
            })
            .collect();
        (lists, violations)
    }
}

/// Deterministic pre-partition of the enumeration budgets over one
/// sweep's work set, replacing the level-barrier charging of the old
/// `SweepBudget`: every victim's skip flag and candidate allowance is
/// fixed *before* the sweep starts, as a pure function of the config and
/// the victim's rank (position in victim-index order within the dirty
/// work set). No thread count or steal order can move a single
/// candidate of allowance between victims.
///
/// The global pool `G` over `n` dirty victims gives rank `i` the share
/// `G / n + (1 if i < G % n)` — shares sum to exactly `G`, so unlike the
/// barrier scheme the pool can never be overdrawn. A victim whose share
/// is zero (only possible when a global budget is configured) is
/// skipped outright, preserving the `G = 0 ⇒ everything skipped` edge
/// case; otherwise its allowance is the smaller of the per-victim cap
/// and its share. Clean (cached) victims are not in the work set and
/// consume no share — incremental sweeps still charge only the work
/// they actually do.
///
/// The deadline is the one budget that stays wall-clock dependent (that
/// is what a deadline *means*): it is re-checked as each task starts,
/// so the skipped set is task-granular. `Some(Duration::ZERO)` still
/// degrades every victim deterministically.
pub(crate) struct BudgetPartition {
    start: Instant,
    deadline: Option<Duration>,
    /// `(skip, allowance)` per work-set rank.
    shares: Vec<(bool, usize)>,
}

impl BudgetPartition {
    /// Partition for a work set of `n` dirty victims under `config`.
    pub fn new(config: &TopKConfig, n: usize) -> Self {
        let per = config.victim_candidate_budget.unwrap_or(usize::MAX);
        let shares = match config.global_candidate_budget {
            None => vec![(false, per); n],
            Some(global) => (0..n)
                .map(|rank| {
                    let share = global / n.max(1) + usize::from(rank < global % n.max(1));
                    (share == 0, per.min(share))
                })
                .collect(),
        };
        Self { start: Instant::now(), deadline: config.deadline, shares }
    }

    /// The pre-partitioned `(skip, allowance)` of work-set rank `rank`.
    pub fn share(&self, rank: usize) -> (bool, usize) {
        self.shares[rank]
    }

    /// Whether the wall-clock deadline has passed (checked as each task
    /// starts; always true for a zero deadline).
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| self.start.elapsed() >= d)
    }
}

/// The deterministic steal-order perturbation seed (`DNA_SCHED_SHUFFLE`,
/// default 0). Changing it reshuffles LPT deal order and steal probing —
/// and must never change a single output bit; the CI stress pass sweeps
/// it to prove that.
fn shuffle_seed() -> u64 {
    std::env::var("DNA_SCHED_SHUFFLE").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    // A worker never panics while holding a deque lock (the guarded
    // section is pure pointer shuffling), but recovering from poison
    // keeps the scheduler from cascading a test-induced panic.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes `tasks` over up to `threads` workers and returns each
/// task's output in task order, plus the scheduling counters.
///
/// `exec` must be pure up to its own victim's slot (publishing to
/// [`Slots`] before returning): the scheduler guarantees it is called
/// exactly once per task, only after all the task's dependencies
/// completed, but on an arbitrary worker at an arbitrary time.
///
/// With one worker (or one task) this runs the serial reference path: a
/// plain loop in task order, no deques, no atomics. A panic escaping
/// `exec` (a harness bug — per-victim faults are caught deeper down by
/// `run_one`) aborts the sweep with a typed [`TopKError::EnginePanic`].
pub(crate) fn execute<T, E>(
    tasks: &[Task],
    threads: usize,
    exec: E,
) -> Result<(Vec<T>, SchedStats), TopKError>
where
    T: Send,
    E: Fn(usize) -> T + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Ok((Vec::new(), SchedStats::default()));
    }
    debug_assert!(
        tasks.iter().enumerate().all(|(t, task)| task.dependents.iter().all(|&d| d > t && d < n)),
        "tasks must be laid out in topological order"
    );
    if threads <= 1 || n == 1 {
        let mut out = Vec::with_capacity(n);
        let mut busy = 0u64;
        let mut tail = 0u64;
        for t in 0..n {
            let started = Instant::now();
            out.push(exec(t));
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            busy = busy.saturating_add(ns);
            tail = tail.max(ns);
        }
        let stats = SchedStats {
            threads: 1,
            tasks: n,
            steals: 0,
            max_busy_ns: busy,
            min_busy_ns: busy,
            busy_ns: busy,
            tail_task_ns: tail,
        };
        return Ok((out, stats));
    }

    let workers = threads.min(n);
    let seed = shuffle_seed();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let indegree: Vec<AtomicUsize> = tasks.iter().map(|t| AtomicUsize::new(t.indegree)).collect();
    let remaining = AtomicUsize::new(n);
    let abort = AtomicBool::new(false);
    let steals = AtomicUsize::new(0);

    // LPT seeding: deal the initial ready set round-robin in *ascending*
    // cost order, so each deque's back (the owner's next pop) holds its
    // most expensive seed — every worker starts on a giant task while
    // thieves later drain the cheap front ends. The shuffle seed rotates
    // the deal and breaks cost ties, exercising different layouts.
    let mut ready: Vec<usize> = (0..n).filter(|&t| tasks[t].indegree == 0).collect();
    ready.sort_by_key(|&t| (tasks[t].cost, (t as u64) ^ seed));
    for (i, t) in ready.into_iter().enumerate() {
        let w = (i + seed as usize) % workers;
        lock(&deques[w]).push_back(t);
    }

    type WorkerPart<T> = (Vec<(usize, T)>, u64, u64);
    type WorkerOut<T> = Result<WorkerPart<T>, String>;
    let run_worker = |w: usize| -> WorkerOut<T> {
        let mut done: Vec<(usize, T)> = Vec::new();
        let mut busy = 0u64;
        let mut tail = 0u64;
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            // Owner pops its own back (LIFO); a thief steals another
            // worker's front (FIFO), probing in a seed-directed order.
            let mut task = lock(&deques[w]).pop_back();
            if task.is_none() {
                for off in 1..workers {
                    let victim = if seed & 1 == 0 {
                        (w + off) % workers
                    } else {
                        (w + workers - off) % workers
                    };
                    task = lock(&deques[victim]).pop_front();
                    if task.is_some() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            let Some(t) = task else {
                if remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            let started = Instant::now();
            // Per-victim faults are quarantined inside `exec` (via
            // `run_one`); a panic reaching this boundary is a harness
            // bug and must abort the whole sweep with a typed error —
            // setting the flag first so no sibling spins forever on a
            // task count that will never drain.
            let result = catch_unwind(AssertUnwindSafe(|| exec(t)));
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            busy = busy.saturating_add(ns);
            tail = tail.max(ns);
            match result {
                Ok(value) => {
                    done.push((t, value));
                    for &d in &tasks[t].dependents {
                        if indegree[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            lock(&deques[w]).push_back(d);
                        }
                    }
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(payload) => {
                    abort.store(true, Ordering::SeqCst);
                    return Err(panic_message(payload.as_ref()));
                }
            }
        }
        Ok((done, busy, tail))
    };

    let joined: Result<Vec<WorkerPart<T>>, TopKError> = std::thread::scope(|s| {
        let run_worker = &run_worker;
        let handles: Vec<_> = (0..workers).map(|w| s.spawn(move || run_worker(w))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(part)) => Ok(part),
                Ok(Err(cause)) => {
                    Err(TopKError::EnginePanic { phase: FaultPhase::Enumeration, cause })
                }
                Err(payload) => Err(TopKError::EnginePanic {
                    phase: FaultPhase::Enumeration,
                    cause: panic_message(payload.as_ref()),
                }),
            })
            .collect()
    });
    let parts = joined?;

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut max_busy = 0u64;
    let mut min_busy = u64::MAX;
    let mut busy_total = 0u64;
    let mut tail = 0u64;
    for (done, busy, worker_tail) in parts {
        max_busy = max_busy.max(busy);
        min_busy = min_busy.min(busy);
        busy_total = busy_total.saturating_add(busy);
        tail = tail.max(worker_tail);
        for (t, value) in done {
            debug_assert!(slots[t].is_none(), "task {t} executed twice");
            slots[t] = Some(value);
        }
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    for (t, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(value) => out.push(value),
            // A worker joined cleanly without its task ever running — a
            // scheduler bug, surfaced as a typed error (the query fails,
            // the process lives) rather than an abort.
            None => {
                return Err(TopKError::SchedulerInvariant {
                    victim: t,
                    detail: "scheduler joined with a task never executed".into(),
                })
            }
        }
    }
    let stats = SchedStats {
        threads: workers,
        tasks: n,
        steals: steals.load(Ordering::Relaxed),
        max_busy_ns: max_busy,
        min_busy_ns: if min_busy == u64::MAX { 0 } else { min_busy },
        busy_ns: busy_total,
        tail_task_ns: tail,
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn chain(n: usize) -> Vec<Task> {
        (0..n)
            .map(|t| Task {
                dependents: if t + 1 < n { vec![t + 1] } else { Vec::new() },
                indegree: usize::from(t > 0),
                cost: 1,
            })
            .collect()
    }

    fn independent(n: usize) -> Vec<Task> {
        (0..n).map(|t| Task { dependents: Vec::new(), indegree: 0, cost: t as u64 }).collect()
    }

    #[test]
    fn serial_and_parallel_agree_on_a_chain() {
        let tasks = chain(64);
        let (serial, s_stats) = execute(&tasks, 1, |t| t * 3).unwrap();
        let (parallel, p_stats) = execute(&tasks, 4, |t| t * 3).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(s_stats.threads(), 1);
        assert!(p_stats.threads() > 1);
        assert_eq!(p_stats.tasks(), 64);
    }

    #[test]
    fn dependencies_are_respected_under_stealing() {
        // Every task records the completion tick of its dependency era:
        // a task must observe its predecessor's write.
        let n = 128;
        let tasks = chain(n);
        let last = AtomicU64::new(0);
        let (out, _) = execute(&tasks, 8, |t| {
            let seen = last.swap(t as u64 + 1, Ordering::SeqCst);
            (t as u64, seen)
        })
        .unwrap();
        for (t, (own, seen)) in out.iter().enumerate() {
            assert_eq!(*own, t as u64);
            assert_eq!(*seen, t as u64, "task {t} ran before its dependency completed");
        }
    }

    #[test]
    fn wide_graphs_complete_every_task_once() {
        let tasks = independent(500);
        let (out, stats) = execute(&tasks, 6, |t| t).unwrap();
        assert_eq!(out, (0..500).collect::<Vec<_>>());
        assert_eq!(stats.tasks(), 500);
        assert!(stats.max_busy_ns() >= stats.min_busy_ns());
    }

    #[test]
    fn escaped_panic_is_a_typed_engine_error_not_a_hang() {
        let tasks = independent(32);
        let err = execute(&tasks, 4, |t| {
            assert!(t != 7, "scheduler-level boom");
            t
        })
        .expect_err("the panic must surface as a typed error");
        match err {
            TopKError::EnginePanic { phase, cause } => {
                assert_eq!(phase, FaultPhase::Enumeration);
                assert!(cause.contains("boom"), "cause: {cause}");
            }
            other => panic!("expected EnginePanic, got {other}"),
        }
    }

    #[test]
    fn budget_partition_shares_sum_to_the_pool() {
        let config = TopKConfig { global_candidate_budget: Some(10), ..TopKConfig::default() };
        let p = BudgetPartition::new(&config, 4);
        let shares: Vec<usize> = (0..4).map(|r| p.share(r).1).collect();
        assert_eq!(shares.iter().sum::<usize>(), 10);
        assert_eq!(shares, vec![3, 3, 2, 2]);
        assert!((0..4).all(|r| !p.share(r).0), "nonzero shares are not skips");
    }

    #[test]
    fn zero_global_pool_skips_every_rank() {
        let config = TopKConfig { global_candidate_budget: Some(0), ..TopKConfig::default() };
        let p = BudgetPartition::new(&config, 5);
        assert!((0..5).all(|r| p.share(r) == (true, 0)));
    }

    #[test]
    fn per_victim_cap_without_global_never_skips() {
        let config = TopKConfig { victim_candidate_budget: Some(0), ..TopKConfig::default() };
        let p = BudgetPartition::new(&config, 3);
        assert!((0..3).all(|r| p.share(r) == (false, 0)), "cap 0 truncates, never skips");
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let config = TopKConfig { deadline: Some(Duration::ZERO), ..TopKConfig::default() };
        let p = BudgetPartition::new(&config, 2);
        assert!(p.expired());
        assert!(!BudgetPartition::new(&TopKConfig::default(), 2).expired());
    }

    #[test]
    fn sched_stats_merge_is_order_insensitive() {
        let a = SchedStats {
            threads: 4,
            tasks: 10,
            steals: 3,
            max_busy_ns: 100,
            min_busy_ns: 40,
            busy_ns: 250,
            tail_task_ns: 60,
        };
        let b = SchedStats {
            threads: 2,
            tasks: 5,
            steals: 1,
            max_busy_ns: 300,
            min_busy_ns: 10,
            busy_ns: 320,
            tail_task_ns: 200,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.tasks(), 15);
        assert_eq!(ab.steals(), 4);
        assert_eq!(ab.max_busy_ns(), 300);
        assert_eq!(ab.min_busy_ns(), 10);
        let mut with_empty = a;
        with_empty.merge(&SchedStats::default());
        assert_eq!(with_empty, a, "an empty sweep merges as identity");
    }
}
