//! Top-k engine errors.

use std::error::Error;
use std::fmt;

use dna_sta::StaError;

use crate::result::FaultPhase;

/// Error produced by the top-k analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TopKError {
    /// `k == 0` was requested; an empty aggressor set is trivially the
    /// answer and almost certainly a caller bug.
    ZeroK,
    /// A candidate was constructed with a delay noise that is not a
    /// finite, non-negative number (typically the result of a degenerate
    /// envelope — e.g. a `0.0 / 0.0` somewhere in the crossing search).
    NonFiniteDelayNoise {
        /// The offending cached delay noise.
        delay_noise: f64,
    },
    /// The circuit carries a value the analysis substrate cannot process
    /// soundly — e.g. a NaN or infinite coupling capacitance smuggled in
    /// through an `*_unchecked` constructor. Caught by an up-front scan so
    /// the poison never reaches timing arithmetic.
    CorruptCircuit {
        /// What exactly is corrupt.
        what: String,
    },
    /// A panic escaped a phase of the engine that cannot be isolated to a
    /// single victim (timing preparation, sink selection, or the sweep
    /// harness itself). The panic was contained at the phase boundary and
    /// converted into this error; no partial result is produced.
    EnginePanic {
        /// The engine phase the panic was caught in.
        phase: FaultPhase,
        /// The panic payload, when it carried a message.
        cause: String,
    },
    /// An internal invariant did not hold — a bug guard surfacing as a
    /// typed error instead of a panic.
    Internal {
        /// The violated invariant.
        what: String,
    },
    /// A work-stealing sweep invariant did not hold for one victim's
    /// result or fanin slot — a dependency edge was missing or a task's
    /// result was never published. In a long-lived process this must
    /// quarantine the affected victim (a `Degraded` result) instead of
    /// aborting; the L060 serial-replay audit remains the loud path that
    /// pinpoints the divergence.
    SchedulerInvariant {
        /// Net index of the victim whose slot was missing.
        victim: usize,
        /// Which invariant broke.
        detail: String,
    },
    /// A serialized session artifact failed validation (see
    /// [`ArtifactError`]).
    Artifact(ArtifactError),
    /// The underlying timing/noise analysis failed.
    Sta(StaError),
}

impl fmt::Display for TopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::NonFiniteDelayNoise { delay_noise } => {
                write!(f, "candidate delay noise {delay_noise} is not finite and non-negative")
            }
            TopKError::CorruptCircuit { what } => write!(f, "corrupt circuit: {what}"),
            TopKError::EnginePanic { phase, cause } => {
                write!(f, "panic during {phase}: {cause}")
            }
            TopKError::Internal { what } => write!(f, "internal invariant violated: {what}"),
            TopKError::SchedulerInvariant { victim, detail } => {
                write!(f, "scheduler invariant violated at victim {victim}: {detail}")
            }
            TopKError::Artifact(e) => write!(f, "session artifact rejected: {e}"),
            TopKError::Sta(e) => write!(f, "timing analysis failed: {e}"),
        }
    }
}

impl Error for TopKError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopKError::ZeroK
            | TopKError::NonFiniteDelayNoise { .. }
            | TopKError::CorruptCircuit { .. }
            | TopKError::EnginePanic { .. }
            | TopKError::Internal { .. }
            | TopKError::SchedulerInvariant { .. } => None,
            TopKError::Artifact(e) => Some(e),
            TopKError::Sta(e) => Some(e),
        }
    }
}

impl From<StaError> for TopKError {
    fn from(e: StaError) -> Self {
        TopKError::Sta(e)
    }
}

impl From<ArtifactError> for TopKError {
    fn from(e: ArtifactError) -> Self {
        TopKError::Artifact(e)
    }
}

/// Why a serialized [`WhatIfSession`](crate::WhatIfSession) artifact was
/// rejected.
///
/// Every variant is a *detected* corruption or mismatch: the loader never
/// trusts an artifact it cannot fully validate, and callers are expected to
/// fall back to a from-scratch analysis (the CLI does so automatically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The leading magic bytes are wrong — not a session artifact at all.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the artifact header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The byte stream ends before the declared payload does.
    Truncated {
        /// Bytes the header promised.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The payload does not hash to the stored CRC-32 — bit rot, a partial
    /// write, or tampering.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The artifact was saved against a different circuit.
    CircuitMismatch {
        /// Which fingerprint component disagreed.
        what: String,
    },
    /// The artifact was saved under a different engine configuration, so
    /// its cached lists are not the lists this engine would compute.
    ConfigMismatch,
    /// The payload decoded to semantically invalid data (despite a valid
    /// checksum) — e.g. a coupling id beyond the circuit, or a malformed
    /// envelope curve.
    Malformed {
        /// What failed to decode.
        what: String,
    },
    /// A generation-chain invariant broke at a specific record: a link
    /// hash that does not match the predecessor, a non-contiguous
    /// generation number, or a delta whose replayed mask digest disagrees
    /// with the recorded one. Unlike [`Malformed`](Self::Malformed), the
    /// record itself passed its checksum — the *chain* is inconsistent,
    /// which points at splicing or a misdirected append.
    ChainBroken {
        /// Generation of the record where the chain broke.
        generation: u64,
        /// Which chain invariant failed.
        what: String,
    },
    /// A filesystem operation of the chain commit protocol failed —
    /// open/write/fsync/rename, not a validation failure. The session's
    /// in-memory state (including its pending deltas) is intact; the
    /// commit can be retried.
    Io {
        /// The failed operation and the OS error.
        what: String,
    },
    /// `--history GEN` (or a replay API) asked for a generation the chain
    /// does not hold: past the tip, or below the base checkpoint (history
    /// before the base is discarded by compaction).
    GenerationUnavailable {
        /// The generation that was requested.
        requested: u64,
        /// First generation the chain can reproduce.
        base: u64,
        /// Last (newest) generation in the chain.
        tip: u64,
    },
}

impl ArtifactError {
    /// Coarse operator-facing classification of the rejection: a stale
    /// cache (`version skew`, `fingerprint mismatch`) warrants a rebuild
    /// of the artifact, a `corrupt` or `truncated` one points at storage
    /// problems. Surfaced verbatim by `dna whatif --load` and by the
    /// serve daemon's spill-reload responses.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            ArtifactError::BadMagic | ArtifactError::ChecksumMismatch { .. } => "corrupt",
            ArtifactError::Malformed { .. } => "corrupt (decodes invalid)",
            ArtifactError::Truncated { .. } => "truncated",
            ArtifactError::UnsupportedVersion { .. } => "version skew",
            ArtifactError::CircuitMismatch { .. } | ArtifactError::ConfigMismatch => {
                "fingerprint mismatch"
            }
            ArtifactError::ChainBroken { .. } => "chain broken",
            ArtifactError::Io { .. } => "io",
            ArtifactError::GenerationUnavailable { .. } => "generation unavailable",
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "bad magic (not a what-if session artifact)"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported artifact version {found} (this build reads v{supported})")
            }
            ArtifactError::Truncated { needed, have } => {
                write!(f, "truncated artifact: need {needed} bytes, have {have}")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} (corrupt artifact)"
            ),
            ArtifactError::CircuitMismatch { what } => {
                write!(f, "artifact belongs to a different circuit ({what})")
            }
            ArtifactError::ConfigMismatch => {
                write!(f, "artifact was saved under a different engine configuration")
            }
            ArtifactError::Malformed { what } => write!(f, "malformed payload: {what}"),
            ArtifactError::ChainBroken { generation, what } => {
                write!(f, "generation chain broken at generation {generation}: {what}")
            }
            ArtifactError::Io { what } => write!(f, "chain i/o failed: {what}"),
            ArtifactError::GenerationUnavailable { requested, base, tip } => write!(
                f,
                "generation {requested} is not in the chain (holds {base}..={tip}; \
                 history below the base was compacted away)"
            ),
        }
    }
}

impl Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(TopKError::ZeroK.to_string().contains("k"));
        let wrapped = TopKError::from(StaError::NoOutputs);
        assert!(wrapped.to_string().contains("timing"));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn artifact_errors_name_the_corruption() {
        let e = TopKError::from(ArtifactError::ChecksumMismatch { stored: 1, computed: 2 });
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(e.source().is_some());
        assert!(ArtifactError::BadMagic.to_string().contains("magic"));
        assert!(ArtifactError::Truncated { needed: 10, have: 3 }.to_string().contains("10"));
        assert!(ArtifactError::UnsupportedVersion { found: 9, supported: 1 }
            .to_string()
            .contains("v1"));
    }

    #[test]
    fn artifact_classes_separate_stale_from_corrupt() {
        assert_eq!(ArtifactError::BadMagic.class(), "corrupt");
        assert_eq!(ArtifactError::ChecksumMismatch { stored: 1, computed: 2 }.class(), "corrupt");
        assert_eq!(ArtifactError::Truncated { needed: 10, have: 3 }.class(), "truncated");
        assert_eq!(
            ArtifactError::UnsupportedVersion { found: 9, supported: 1 }.class(),
            "version skew"
        );
        assert_eq!(
            ArtifactError::CircuitMismatch { what: "nets".into() }.class(),
            "fingerprint mismatch"
        );
        assert_eq!(ArtifactError::ConfigMismatch.class(), "fingerprint mismatch");
    }

    #[test]
    fn scheduler_invariant_names_the_victim() {
        let e = TopKError::SchedulerInvariant { victim: 7, detail: "slot hole".into() };
        assert!(e.to_string().contains("victim 7"));
        assert!(e.to_string().contains("slot hole"));
        assert!(e.source().is_none());
    }

    #[test]
    fn engine_panic_names_the_phase() {
        let e = TopKError::EnginePanic { phase: FaultPhase::Prepare, cause: "boom".into() };
        assert!(e.to_string().contains("prepare"));
        assert!(e.to_string().contains("boom"));
    }
}
