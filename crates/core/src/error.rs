//! Top-k engine errors.

use std::error::Error;
use std::fmt;

use dna_sta::StaError;

/// Error produced by the top-k analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TopKError {
    /// `k == 0` was requested; an empty aggressor set is trivially the
    /// answer and almost certainly a caller bug.
    ZeroK,
    /// A candidate was constructed with a delay noise that is not a
    /// finite, non-negative number (typically the result of a degenerate
    /// envelope — e.g. a `0.0 / 0.0` somewhere in the crossing search).
    NonFiniteDelayNoise {
        /// The offending cached delay noise.
        delay_noise: f64,
    },
    /// The underlying timing/noise analysis failed.
    Sta(StaError),
}

impl fmt::Display for TopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKError::ZeroK => write!(f, "k must be at least 1"),
            TopKError::NonFiniteDelayNoise { delay_noise } => {
                write!(f, "candidate delay noise {delay_noise} is not finite and non-negative")
            }
            TopKError::Sta(e) => write!(f, "timing analysis failed: {e}"),
        }
    }
}

impl Error for TopKError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopKError::ZeroK | TopKError::NonFiniteDelayNoise { .. } => None,
            TopKError::Sta(e) => Some(e),
        }
    }
}

impl From<StaError> for TopKError {
    fn from(e: StaError) -> Self {
        TopKError::Sta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(TopKError::ZeroK.to_string().contains("k"));
        let wrapped = TopKError::from(StaError::NoOutputs);
        assert!(wrapped.to_string().contains("timing"));
        assert!(wrapped.source().is_some());
    }
}
