//! Shared machinery of the addition- and elimination-set algorithms.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use dna_netlist::{Circuit, CouplingId, NetId, NetSource};
use dna_noise::{envelope_calc, CouplingMask, NoiseAnalysis, NoiseReport};
use dna_sta::{NetTiming, TimingReport};
use dna_waveform::{superposition, Edge, Envelope, NoisePulse, TimeInterval, Transition};

use crate::result::{Fault, FaultPhase};
use crate::sched::{self, BudgetPartition, SchedStats, Slots};
use crate::{faultsim, Candidate, TopKConfig, TopKError};

/// Couplings in a net's fanin cone ranked by the delay noise each can add
/// to that net's arrival, descending. `Arc`, not `Rc`: the memo is shared
/// across the sweep workers.
type RankedWideners = Arc<Vec<(CouplingId, f64)>>;

/// One net's irredundant lists by cardinality, shared by `Arc` so a
/// what-if session can keep a cached copy across incremental re-sweeps
/// without deep-cloning candidate envelopes. `lists[i]` = irredundant
/// list of cardinality `i` (index 0 = the empty / total baseline set).
pub(crate) type NetLists = Arc<Vec<Vec<Candidate>>>;

/// How a budget curtailed one victim's enumeration (if at all).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) enum Curtailment {
    /// The victim enumerated in full.
    #[default]
    None,
    /// A candidate budget cut generation short mid-victim; the lists hold
    /// the strongest non-dominated survivors of what was generated.
    Truncated,
    /// The global budget or deadline was exhausted before this victim
    /// started; it was served empty lists.
    Skipped,
}

/// Per-victim enumeration counters, kept per net (not pre-aggregated) so
/// an incremental sweep can serve clean victims' counters from cache and
/// still aggregate bit-identically to a from-scratch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct VictimCounters {
    /// Largest irredundant-list width at this victim.
    pub peak_list_width: usize,
    /// Candidates generated at this victim before pruning.
    pub generated: usize,
    /// Whether (and how) a budget curtailed this victim.
    pub curtailment: Curtailment,
}

/// Order-independent aggregate of all victims' counters: the same fold a
/// full sweep performs, so a subset sweep that merges cached and fresh
/// counters reproduces the from-scratch totals exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SweepTotals {
    pub peak_list_width: usize,
    pub generated: usize,
    pub truncated_victims: usize,
    pub skipped_victims: usize,
}

impl VictimCounters {
    /// Max of widths, sum of generated counts, tally of curtailments.
    pub fn aggregate(all: &[VictimCounters]) -> SweepTotals {
        all.iter().fold(SweepTotals::default(), |mut t, c| {
            t.peak_list_width = t.peak_list_width.max(c.peak_list_width);
            t.generated += c.generated;
            match c.curtailment {
                Curtailment::None => {}
                Curtailment::Truncated => t.truncated_victims += 1,
                Curtailment::Skipped => t.skipped_victims += 1,
            }
            t
        })
    }
}

/// Which flavor of top-k set is being computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Start from noiseless timing; find the k couplings whose addition
    /// hurts the most (§3.3).
    Addition,
    /// Start from fully noisy timing; find the k couplings whose removal
    /// helps the most (§3.4).
    Elimination,
}

impl Mode {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Addition => "addition",
            Mode::Elimination => "elimination",
        }
    }
}

/// A primary aggressor of one victim: the coupling, its noise pulse and
/// the aggressor's timing window, kept separate so higher-order variants
/// can rebuild the envelope with a widened (or narrowed) window.
#[derive(Debug, Clone)]
pub(crate) struct PrimaryInfo {
    pub coupling: CouplingId,
    pub aggressor: NetId,
    pub pulse: NoisePulse,
    pub eat: f64,
    pub lat: f64,
}

impl PrimaryInfo {
    /// Envelope with the LAT side of the window moved by `delta`
    /// (positive widens — higher-order addition; negative narrows —
    /// higher-order elimination).
    pub fn envelope(&self, delta: f64) -> Envelope {
        let lat = (self.lat + delta).max(self.eat);
        Envelope::from_window(&self.pulse, self.eat, lat)
    }
}

/// Precomputed, mode-specific state shared by the enumeration.
pub(crate) struct Prepared<'c> {
    pub circuit: &'c Circuit,
    pub config: TopKConfig,
    #[allow(dead_code)]
    pub mode: Mode,
    /// Noiseless timing (victim transitions are always measured here).
    pub base: TimingReport,
    /// Converged full-noise report (elimination mode only).
    pub noisy: Option<NoiseReport>,
    /// Aggressor windows the envelopes are built from: noiseless for
    /// addition, noisy for elimination.
    pub window_timings: Vec<NetTiming>,
    /// Noiseless victim transition per net.
    pub victim_tr: Vec<Transition>,
    /// Primary aggressors per victim net.
    pub primaries: Vec<Vec<PrimaryInfo>>,
    /// Dominance interval per victim net (§3.2).
    pub dominance_iv: Vec<TimeInterval>,
    /// Clipping window per victim net: envelopes outside it cannot affect
    /// the victim's final crossing, so envelope algebra drops them.
    pub clip_iv: Vec<TimeInterval>,
    /// Upper bound on how far each net's latest arrival can shift under
    /// any noise (infinite-window own noise plus accumulated fanin bound).
    /// Higher-order window widening is capped here so clipped envelopes
    /// stay sound.
    pub shift_bound: Vec<f64>,
    /// Couplings participating in this run.
    pub mask: CouplingMask,
    /// Per net: memoized fanin wideners of that net as an aggressor —
    /// couplings in its transitive fanin cone ranked by the delay noise
    /// they can add to its arrival, descending. One `OnceLock` slot per
    /// net keeps the memo `Sync` without a global lock: concurrent sweep
    /// workers racing on the same net block only each other, and the
    /// ranking is a pure function of immutable state, so whichever worker
    /// initializes the slot writes the same value.
    wideners: Vec<OnceLock<RankedWideners>>,
}

impl<'c> Prepared<'c> {
    /// Builds all shared state for one run over the couplings enabled in
    /// `mask` (the full mask for ordinary runs; restricted masks support
    /// the peeled-elimination extension).
    pub fn build(
        circuit: &'c Circuit,
        config: TopKConfig,
        mode: Mode,
        noise: &NoiseAnalysis<'c>,
        mask: CouplingMask,
    ) -> Result<Self, TopKError> {
        faultsim::maybe_panic_in_prepare();
        let base =
            TimingReport::run(circuit, &dna_sta::LinearDelayModel::new(), &config.noise.sta)?;
        let noisy = match mode {
            Mode::Addition => None,
            Mode::Elimination => Some(noise.run_with_mask(&mask)?),
        };
        let window_timings: Vec<NetTiming> = match &noisy {
            None => base.timings().to_vec(),
            Some(r) => r.noisy_timing().timings().to_vec(),
        };
        let victim_tr: Vec<Transition> = base
            .timings()
            .iter()
            .map(|t| Transition::from_t50(t.lat(), t.slew(), Edge::Rising))
            .collect();

        // Primary aggressors with pulses and windows per victim.
        let mut primaries: Vec<Vec<PrimaryInfo>> = Vec::with_capacity(circuit.num_nets());
        for v in circuit.net_ids() {
            let envelopes =
                envelope_calc::victim_envelopes(circuit, &config.noise, v, &window_timings, |id| {
                    mask.is_enabled(id)
                });
            let mut infos = Vec::with_capacity(envelopes.len());
            for (id, _) in envelopes {
                let Some(aggressor) = circuit.coupling(id).other(v) else {
                    return Err(TopKError::Internal {
                        what: format!(
                            "coupling {} reported for victim {} does not touch it",
                            id.index(),
                            v.index()
                        ),
                    });
                };
                let at = &window_timings[aggressor.index()];
                let pulse = pulse_for(circuit, &config, v, id, at.slew());
                infos.push(PrimaryInfo {
                    coupling: id,
                    aggressor,
                    pulse,
                    eat: at.eat(),
                    lat: at.lat(),
                });
            }
            primaries.push(infos);
        }

        // Dominance interval: victim t50 up to the upper-bound noisy t50.
        // The upper bound is the infinite-window delay noise of the
        // victim's own aggressors plus an accumulated bound on the shift
        // arriving from the fanin cone (§3.2).
        //
        // The "effectively infinite" widening horizon is derived from the
        // *noiseless* timing, never from the mask-dependent window
        // timings: what-if sessions compare per-net state across masks to
        // decide which victims to recompute, and a mask-dependent horizon
        // would perturb every net's dominance interval whenever any
        // coupling is toggled, poisoning the whole cache. The margin is
        // doubled relative to the old window-derived formula (`*2 + 1000`
        // over noisy windows), so it still exceeds any reachable noisy
        // arrival; enlarging it only widens the conservative bounds.
        let horizon =
            base.timings().iter().map(NetTiming::lat).fold(0.0_f64, f64::max) * 4.0 + 2_000.0;
        let own_ub: Vec<f64> = circuit
            .net_ids()
            .map(|v| {
                let combined =
                    Envelope::sum_all(primaries[v.index()].iter().map(|p| p.envelope(horizon)));
                superposition::delay_noise(&victim_tr[v.index()], &combined)
            })
            .collect();
        let mut fanin_ub = vec![0.0_f64; circuit.num_nets()];
        for &net in circuit.nets_topological() {
            if let NetSource::Gate(g) = circuit.net(net).source() {
                let bound = circuit
                    .gate(g)
                    .inputs()
                    .iter()
                    .map(|&u| fanin_ub[u.index()] + own_ub[u.index()])
                    .fold(0.0_f64, f64::max);
                fanin_ub[net.index()] = bound;
            }
        }
        let dominance_iv: Vec<TimeInterval> = circuit
            .net_ids()
            .map(|v| {
                let t50 = victim_tr[v.index()].t50();
                let ub = own_ub[v.index()] + fanin_ub[v.index()];
                TimeInterval::new(t50, t50 + ub.max(1e-6))
            })
            .collect();

        // Envelope mass strictly before the victim's noiseless t50 can
        // never move the *final* 50 % crossing (the ramp is below half
        // rail there anyway — the same observation that anchors the
        // dominance interval, §3.2), so envelopes are clipped to just
        // below t50.
        let clip_iv: Vec<TimeInterval> = circuit
            .net_ids()
            .map(|v| {
                let t50 = victim_tr[v.index()].t50();
                TimeInterval::new(t50 - 1.0, dominance_iv[v.index()].hi() + 1.0)
            })
            .collect();

        let shift_bound: Vec<f64> =
            (0..circuit.num_nets()).map(|i| own_ub[i] + fanin_ub[i]).collect();
        debug_assert!(
            shift_bound.iter().all(|s| s.is_finite() && *s >= 0.0),
            "shift bounds must be finite and non-negative"
        );
        debug_assert!(
            circuit.net_ids().all(|v| {
                let d = dominance_iv[v.index()];
                let c = clip_iv[v.index()];
                c.lo() <= d.lo() && d.hi() <= c.hi()
            }),
            "clip window must cover the dominance interval"
        );

        Ok(Self {
            circuit,
            config,
            mode,
            base,
            noisy,
            window_timings,
            victim_tr,
            primaries,
            dominance_iv,
            clip_iv,
            shift_bound,
            mask,
            wideners: (0..circuit.num_nets()).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Delay noise `envelope` produces on `victim`'s noiseless transition.
    pub fn delay_noise_at(&self, victim: NetId, envelope: &Envelope) -> f64 {
        superposition::delay_noise(&self.victim_tr[victim.index()], envelope)
    }

    /// The envelope of one primary aggressor at `victim`, with the LAT
    /// side of its window moved by `delta`, clipped to the victim's
    /// analysis window (see [`Self::clip_iv`]).
    pub fn primary_envelope(&self, victim: NetId, info: &PrimaryInfo, delta: f64) -> Envelope {
        info.envelope(delta).clipped(self.clip_iv[victim.index()])
    }

    /// Pseudo noise envelope seen by `victim` when its input arrival is
    /// delayed by `shift` ps (§3.1): the difference between the noiseless
    /// victim transition and the same transition delayed by `shift`.
    pub fn pseudo_envelope(&self, victim: NetId, shift: f64) -> Envelope {
        pseudo_envelope(&self.victim_tr[victim.index()], shift)
    }

    /// The critical fanin input of `victim`'s driver under the window
    /// timings of this mode, with the arrival of every input.
    ///
    /// Returns `None` for primary inputs.
    pub fn fanin_arrivals(&self, victim: NetId) -> Option<Vec<(NetId, f64)>> {
        match self.circuit.net(victim).source() {
            NetSource::PrimaryInput => None,
            NetSource::Gate(g) => Some(
                self.circuit
                    .gate(g)
                    .inputs()
                    .iter()
                    .map(|&u| (u, self.window_timings[u.index()].lat()))
                    .collect(),
            ),
        }
    }

    /// Noiseless arrivals of `victim`'s driver inputs.
    pub fn fanin_base_arrivals(&self, victim: NetId) -> Option<Vec<(NetId, f64)>> {
        match self.circuit.net(victim).source() {
            NetSource::PrimaryInput => None,
            NetSource::Gate(g) => Some(
                self.circuit
                    .gate(g)
                    .inputs()
                    .iter()
                    .map(|&u| (u, self.base.timing(u).lat()))
                    .collect(),
            ),
        }
    }

    /// Ranked fanin wideners of `aggressor`: couplings in its transitive
    /// fanin cone with the delay noise each can contribute to the
    /// aggressor's arrival (via its cone endpoint), descending. Memoized
    /// in a per-net `OnceLock` slot, race-free under the parallel sweep.
    pub fn wideners_of(&self, aggressor: NetId) -> RankedWideners {
        Arc::clone(self.wideners[aggressor.index()].get_or_init(|| {
            let cone = if self.config.widener_depth == usize::MAX {
                self.circuit.transitive_fanin(aggressor)
            } else {
                self.circuit.transitive_fanin_depth(aggressor, self.config.widener_depth)
            };
            let mut in_cone = vec![false; self.circuit.num_nets()];
            for n in &cone {
                in_cone[n.index()] = true;
            }
            let mut seen = vec![false; self.circuit.num_couplings()];
            let mut ranked: Vec<(CouplingId, f64)> = Vec::new();
            for x in cone {
                for &cc in self.circuit.couplings_on(x) {
                    if seen[cc.index()] || !self.mask.is_enabled(cc) {
                        continue;
                    }
                    seen[cc.index()] = true;
                    let env = envelope_calc::coupling_envelope(
                        self.circuit,
                        &self.config.noise,
                        x,
                        cc,
                        &self.window_timings,
                    );
                    let dn = self.delay_noise_at(x, &env);
                    if dn > 0.0 {
                        ranked.push((cc, dn));
                    }
                }
            }
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            Arc::new(ranked)
        }))
    }
}

/// Per-victim output of one sweep step: the victim's irredundant lists by
/// cardinality plus its enumeration counters.
pub(crate) struct VictimLists {
    /// `lists[i]` = irredundant list of cardinality `i` (index 0 = the
    /// empty / total baseline set).
    pub lists: Vec<Vec<Candidate>>,
    /// Largest irredundant-list width at this victim.
    pub peak_list_width: usize,
    /// Candidates generated at this victim before pruning.
    pub generated: usize,
    /// Whether (and how) a budget curtailed this victim.
    pub curtailment: Curtailment,
}

impl VictimLists {
    /// The lists of a victim that contributed nothing: quarantined by a
    /// fault or skipped by an exhausted budget. Sound downstream — every
    /// consumer treats a missing list as "no candidates here".
    fn empty(curtailment: Curtailment) -> Self {
        Self { lists: Vec::new(), peak_list_width: 0, generated: 0, curtailment }
    }
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`, asserts and `expect`).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Everything one enumeration sweep produced: per-victim I-lists and
/// counters (indexed by net), the victims quarantined by fault
/// isolation, plus the scheduler's load counters.
pub(crate) struct SweepOutput {
    pub lists: Vec<NetLists>,
    pub counters: Vec<VictimCounters>,
    pub faults: Vec<Fault>,
    pub sched: SchedStats,
}

/// Runs one victim under the fault boundary: the pre-partitioned skip
/// decision first, then the enumeration inside `catch_unwind`. A panic or
/// typed error quarantines the victim (empty lists + a [`Fault`]) instead
/// of aborting the sweep — stolen or not, a task's blast radius is its
/// own victim. `skip` and `allowance` are the victim's budget share from
/// [`BudgetPartition`], fixed before the sweep started.
pub(crate) fn run_one<F>(
    v: NetId,
    ilists: &Slots,
    skip: bool,
    allowance: usize,
    per_victim: &F,
) -> (VictimLists, Option<Fault>)
where
    F: Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync,
{
    if skip {
        return (VictimLists::empty(Curtailment::Skipped), None);
    }
    // `AssertUnwindSafe` is justified: on unwind the victim's outputs are
    // discarded wholesale (it gets empty lists), the shared inputs are
    // immutable, and the only cross-victim mutable state — the widener
    // memo — is a `OnceLock` that stays internally consistent at every
    // point.
    let guarded = catch_unwind(AssertUnwindSafe(|| {
        faultsim::maybe_panic_at_victim(v);
        per_victim(v, ilists, allowance)
    }));
    match guarded {
        Ok(Ok(out)) => (out, None),
        Ok(Err(e)) => (
            VictimLists::empty(Curtailment::None),
            Some(Fault::new(v, FaultPhase::Enumeration, e.to_string())),
        ),
        Err(payload) => (
            VictimLists::empty(Curtailment::None),
            Some(Fault::new(v, FaultPhase::Enumeration, panic_message(payload.as_ref()))),
        ),
    }
}

/// LPT cost estimate of one victim's enumeration: the cached
/// generated-candidate count when a what-if session has one, the
/// primary-aggressor count otherwise. Costs steer only the scheduler's
/// seeding — they can never affect a single output bit.
pub(crate) fn cost_estimate(p: &Prepared<'_>, seed_counters: &[VictimCounters], v: NetId) -> u64 {
    let cached = seed_counters[v.index()].generated;
    if cached > 0 {
        cached as u64
    } else {
        p.primaries[v.index()].len() as u64 + 1
    }
}

/// Runs `per_victim` over every net, respecting fanin dependencies, and
/// collects the per-victim I-lists plus per-victim counters.
///
/// A victim's work may read the published lists of nets in its strict
/// fanin cone only (pseudo atoms) — never siblings. The sweep therefore
/// runs on the deterministic work-stealing scheduler ([`crate::sched`]):
/// per-victim tasks with edges for exactly the driver-gate inputs,
/// victim-indexed write-once result slots ([`Slots`]), and budgets
/// pre-partitioned per victim ([`BudgetPartition`]) — so serial and
/// parallel paths are bit-identical *including* under global budgets, at
/// any thread count and any steal order.
///
/// Every victim runs inside [`run_one`]'s fault boundary; a failed victim
/// lands in [`SweepOutput::faults`] instead of aborting the sweep. The
/// sweep itself only errs when the harness breaks (a worker dying outside
/// the per-victim boundary).
pub(crate) fn sweep_victims<F>(p: &Prepared<'_>, per_victim: F) -> Result<SweepOutput, TopKError>
where
    F: Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync,
{
    let n = p.circuit.num_nets();
    let seed_lists: Vec<NetLists> = vec![NetLists::default(); n];
    let seed_counters = vec![VictimCounters::default(); n];
    let dirty = vec![true; n];
    sweep_victims_subset(p, &seed_lists, &seed_counters, &dirty, per_victim)
}

/// Like [`sweep_victims`], but recomputes only the nets flagged in
/// `dirty`, serving everyone else's lists and counters from the cached
/// `seed_lists` / `seed_counters` (cheap `Arc` clones, pre-published
/// into the slot board).
///
/// This is the incremental core of what-if sessions: provided every net
/// whose enumeration inputs changed is flagged dirty (the session's
/// dirty-closure guarantees this), clean nets' cached lists equal what a
/// from-scratch sweep would compute, so dirty victims read bit-identical
/// fanin lists and the merged output is bit-identical to a full sweep —
/// at any thread count, because the per-victim function is pure, the
/// slots are disjoint, and the budget shares are fixed up front over the
/// dirty set in victim-index order.
pub(crate) fn sweep_victims_subset<F>(
    p: &Prepared<'_>,
    seed_lists: &[NetLists],
    seed_counters: &[VictimCounters],
    dirty: &[bool],
    per_victim: F,
) -> Result<SweepOutput, TopKError>
where
    F: Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync,
{
    let circuit = p.circuit;
    debug_assert_eq!(seed_lists.len(), circuit.num_nets());
    debug_assert_eq!(seed_counters.len(), circuit.num_nets());
    debug_assert_eq!(dirty.len(), circuit.num_nets());
    let mut counters: Vec<VictimCounters> = seed_counters.to_vec();
    if !dirty.iter().any(|&d| d) {
        // Nothing to sweep: cached lists and counters pass through, and
        // budgets are untouched — incremental sweeps charge only the
        // work they actually do.
        return Ok(SweepOutput {
            lists: seed_lists.to_vec(),
            counters,
            faults: Vec::new(),
            sched: SchedStats::default(),
        });
    }

    // Budget ranks: dirty victims in victim-index order, a pure function
    // of (config, dirty set) — the schedule can never move a share.
    let mut rank_of = vec![usize::MAX; circuit.num_nets()];
    let mut work = 0usize;
    for v in circuit.net_ids() {
        if dirty[v.index()] {
            rank_of[v.index()] = work;
            work += 1;
        }
    }
    let partition = BudgetPartition::new(&p.config, work);

    // Tasks in topological order (so the serial reference path is a
    // plain loop), with dependency edges for exactly the driver-gate
    // inputs that are themselves being recomputed.
    let order: Vec<NetId> =
        circuit.nets_topological().iter().copied().filter(|v| dirty[v.index()]).collect();
    let mut task_of = vec![usize::MAX; circuit.num_nets()];
    for (t, v) in order.iter().enumerate() {
        task_of[v.index()] = t;
    }
    let mut tasks: Vec<sched::Task> = order
        .iter()
        .map(|&v| sched::Task {
            dependents: Vec::new(),
            indegree: 0,
            cost: cost_estimate(p, seed_counters, v),
        })
        .collect();
    for (t, &v) in order.iter().enumerate() {
        if let NetSource::Gate(g) = circuit.net(v).source() {
            for &u in circuit.gate(g).inputs() {
                let d = task_of[u.index()];
                if d != usize::MAX {
                    tasks[d].dependents.push(t);
                    tasks[t].indegree += 1;
                }
            }
        }
    }

    let threads = p.config.effective_threads();
    let parallel = threads > 1 && tasks.len() > 1;
    let corrupt_slot = faultsim::corrupt_sched_slot();
    let slots = Slots::from_seeds(seed_lists, dirty);
    let exec = |t: usize| {
        let v = order[t];
        let (skip_share, allowance) = partition.share(rank_of[v.index()]);
        let skip = skip_share || partition.expired();
        let (out, fault) = run_one(v, &slots, skip, allowance, &per_victim);
        let counters = VictimCounters {
            peak_list_width: out.peak_list_width,
            generated: out.generated,
            curtailment: out.curtailment,
        };
        // Fault-sim hook for the L060 audit: corrupt the parallel
        // scheduler's published slot (never the serial replay's) so the
        // slot comparison has something real to catch.
        let lists =
            if parallel && corrupt_slot == Some(v.index()) { Vec::new() } else { out.lists };
        // Fault-sim hook for the quarantine path: a dropped publication
        // leaves a hole for `into_lists` to detect and degrade on.
        if faultsim::drop_sched_publish() != Some(v.index()) {
            slots.publish(v, Arc::new(lists));
        }
        (v, counters, fault)
    };
    let (done, sched) = sched::execute(&tasks, threads, exec)?;
    let mut faults: Vec<Fault> = Vec::new();
    for (v, c, fault) in done {
        counters[v.index()] = c;
        faults.extend(fault);
    }
    let (lists, violations) = slots.into_lists();
    faults.extend(quarantine_slot_violations(violations));
    faults.sort_by_key(|f| f.victim().index());
    Ok(SweepOutput { lists, counters, faults, sched })
}

/// Converts the typed slot violations a sweep's `into_lists` surfaced
/// into per-victim quarantine [`Fault`]s: the victim keeps empty lists
/// (a sound lower bound), the result degrades, the process lives.
pub(crate) fn quarantine_slot_violations(
    violations: Vec<TopKError>,
) -> impl Iterator<Item = Fault> {
    violations.into_iter().map(|e| {
        let victim = match &e {
            TopKError::SchedulerInvariant { victim, .. } => *victim,
            _ => 0,
        };
        Fault::new(NetId::new(victim as u32), FaultPhase::Enumeration, e.to_string())
    })
}

/// Pseudo envelope of a transition delayed by `shift` (paper §3.1).
///
/// For a rising transition `T`, the envelope is `T(t) - T(t - shift)`:
/// non-negative, zero-tailed, and superimposing it back onto `T` delays
/// the 50 % crossing by exactly `shift`.
pub(crate) fn pseudo_envelope(transition: &Transition, shift: f64) -> Envelope {
    if shift <= 0.0 {
        return Envelope::zero();
    }
    let clean = transition.to_pwl();
    let delayed = transition.shifted(shift).to_pwl();
    let diff = match transition.edge() {
        Edge::Rising => &clean - &delayed,
        Edge::Falling => &delayed - &clean,
    };
    Envelope::from_curve(&diff)
}

/// Noise pulse of one coupling onto `victim` (shared with `Prepared`).
fn pulse_for(
    circuit: &Circuit,
    config: &TopKConfig,
    victim: NetId,
    coupling: CouplingId,
    aggressor_slew: f64,
) -> NoisePulse {
    use dna_noise::{CouplingContext, CouplingModel};
    let cc = circuit.coupling(coupling);
    let victim_resistance = circuit
        .driver_cell(victim)
        .map_or(config.noise.pi_resistance, |cell| cell.drive_resistance);
    let ground_cap = (circuit.load_cap(victim) - cc.cap()).max(0.0);
    config.noise.coupling.noise_pulse(&CouplingContext {
        coupling_cap: cc.cap(),
        victim_ground_cap: ground_cap,
        victim_resistance,
        aggressor_slew,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};
    use dna_noise::NoiseConfig;

    fn coupled() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        let w = b.gate(CellKind::Inv, "w", &[v]).unwrap();
        b.output(w);
        b.output(g);
        b.coupling(v, g, 8.0).unwrap();
        b.coupling(w, g, 4.0).unwrap();
        b.build().unwrap()
    }

    fn prepared(_mode: Mode) -> (Circuit, TopKConfig) {
        (coupled(), TopKConfig::default())
    }

    #[test]
    fn pseudo_envelope_round_trips_shift() {
        let t = Transition::new(100.0, 20.0, Edge::Rising);
        for shift in [0.5, 3.0, 10.0, 50.0] {
            let env = pseudo_envelope(&t, shift);
            let dn = superposition::delay_noise(&t, &env);
            assert!(
                (dn - shift).abs() < 1e-9,
                "pseudo envelope for shift {shift} produced delay {dn}"
            );
        }
        assert!(pseudo_envelope(&t, 0.0).is_zero());
    }

    #[test]
    fn pseudo_envelope_handles_falling_edges() {
        let t = Transition::new(100.0, 20.0, Edge::Falling);
        let env = pseudo_envelope(&t, 5.0);
        assert!(!env.is_zero());
        assert!(env.peak() > 0.0);
    }

    #[test]
    fn build_addition_has_no_noisy_report() {
        let (c, config) = prepared(Mode::Addition);
        let noise = NoiseAnalysis::new(&c, NoiseConfig::default());
        let p = Prepared::build(&c, config, Mode::Addition, &noise, CouplingMask::all(&c)).unwrap();
        assert!(p.noisy.is_none());
        assert_eq!(p.window_timings.len(), c.num_nets());
        // Windows equal the noiseless timing.
        for n in c.net_ids() {
            assert_eq!(p.window_timings[n.index()].lat(), p.base.timing(n).lat());
        }
    }

    #[test]
    fn build_elimination_windows_are_noisy() {
        let (c, config) = prepared(Mode::Elimination);
        let noise = NoiseAnalysis::new(&c, NoiseConfig::default());
        let p =
            Prepared::build(&c, config, Mode::Elimination, &noise, CouplingMask::all(&c)).unwrap();
        assert!(p.noisy.is_some());
        // At least one window extends past its noiseless counterpart.
        let widened =
            c.net_ids().any(|n| p.window_timings[n.index()].lat() > p.base.timing(n).lat() + 1e-9);
        assert!(widened, "elimination windows should include delay noise");
    }

    #[test]
    fn primaries_cover_couplings_per_victim() {
        let (c, config) = prepared(Mode::Addition);
        let noise = NoiseAnalysis::new(&c, NoiseConfig::default());
        let p = Prepared::build(&c, config, Mode::Addition, &noise, CouplingMask::all(&c)).unwrap();
        let v = c.net_by_name("v").unwrap();
        let g = c.net_by_name("g").unwrap();
        assert_eq!(p.primaries[v.index()].len(), 1);
        assert_eq!(p.primaries[g.index()].len(), 2);
        // Envelope with zero delta matches the window.
        let info = &p.primaries[v.index()][0];
        let env = info.envelope(0.0);
        assert!(!env.is_zero());
        let wide = info.envelope(100.0);
        assert!(wide.encapsulates(&env, TimeInterval::new(-1e4, 1e4)));
    }

    #[test]
    fn wideners_ranked_descending() {
        let (c, config) = prepared(Mode::Addition);
        let noise = NoiseAnalysis::new(&c, NoiseConfig::default());
        let p = Prepared::build(&c, config, Mode::Addition, &noise, CouplingMask::all(&c)).unwrap();
        let w = c.net_by_name("w").unwrap();
        let wd = p.wideners_of(w);
        for pair in wd.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // Memoized: same Arc returned.
        let again = p.wideners_of(w);
        assert!(Arc::ptr_eq(&wd, &again));
    }

    #[test]
    fn prepared_is_shareable_across_threads() {
        // Compile-time guarantee the parallel sweep rests on: a `&Prepared`
        // can be handed to scoped worker threads.
        fn assert_sync<T: Sync>() {}
        assert_sync::<Prepared<'static>>();
    }

    #[test]
    fn dominance_interval_anchored_at_t50() {
        let (c, config) = prepared(Mode::Addition);
        let noise = NoiseAnalysis::new(&c, NoiseConfig::default());
        let p = Prepared::build(&c, config, Mode::Addition, &noise, CouplingMask::all(&c)).unwrap();
        for n in c.net_ids() {
            let iv = p.dominance_iv[n.index()];
            assert!((iv.lo() - p.victim_tr[n.index()].t50()).abs() < 1e-9);
            assert!(iv.width() > 0.0);
        }
    }
}
