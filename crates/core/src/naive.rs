//! The naive industry heuristic the paper's introduction argues against:
//! keep, for each victim, only its N strongest couplings **by capacitance**.
//!
//! This is the "very common approach" of §1 — restrict the set of primary
//! aggressors per victim to those with maximum coupling — which the paper
//! criticizes for unpredictable results: the retained aggressor count
//! varies per path and indirect aggressors are not budgeted at all. The
//! ablation benches compare it against the top-k sets.

use dna_netlist::{Circuit, CouplingId, NetId};
use dna_noise::CouplingMask;

use crate::CouplingSet;

/// The couplings retained by the per-victim top-N-by-capacitance rule: a
/// coupling survives when it is among the `n` largest capacitors of
/// **either** of its endpoint nets.
#[must_use]
pub fn per_victim_top_n(circuit: &Circuit, n: usize) -> CouplingSet {
    let mut kept = CouplingSet::new();
    for v in circuit.net_ids() {
        kept.extend(top_n_on(circuit, v, n));
    }
    kept
}

/// The `n` largest couplings incident to one net, by capacitance.
#[must_use]
pub fn top_n_on(circuit: &Circuit, net: NetId, n: usize) -> Vec<CouplingId> {
    let mut ids: Vec<CouplingId> = circuit.couplings_on(net).to_vec();
    ids.sort_by(|&a, &b| {
        circuit
            .coupling(b)
            .cap()
            .partial_cmp(&circuit.coupling(a).cap())
            .expect("finite capacitance")
    });
    ids.truncate(n);
    ids
}

/// A coupling mask implementing the heuristic (everything not retained is
/// ignored by the analysis).
#[must_use]
pub fn heuristic_mask(circuit: &Circuit, n: usize) -> CouplingMask {
    CouplingMask::none(circuit).with(per_victim_top_n(circuit, n).ids())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    fn star() -> (Circuit, Vec<CouplingId>) {
        // One victim coupled to three aggressors with caps 9, 5, 1.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        b.output(v);
        let g1 = b.input("g1");
        let g2 = b.input("g2");
        let g3 = b.input("g3");
        let c1 = b.coupling(v, g1, 9.0).unwrap();
        let c2 = b.coupling(v, g2, 5.0).unwrap();
        let c3 = b.coupling(v, g3, 1.0).unwrap();
        (b.build().unwrap(), vec![c1, c2, c3])
    }

    #[test]
    fn keeps_largest_caps() {
        let (c, ids) = star();
        let v = c.net_by_name("v").unwrap();
        let top2 = top_n_on(&c, v, 2);
        assert_eq!(top2, vec![ids[0], ids[1]]);
    }

    #[test]
    fn per_victim_union_includes_aggressor_side() {
        let (c, ids) = star();
        // n = 1: victim keeps cc with cap 9; each aggressor net also keeps
        // its single coupling, so all three survive via their aggressors.
        let kept = per_victim_top_n(&c, 1);
        for id in ids {
            assert!(kept.contains(id));
        }
    }

    #[test]
    fn mask_enables_only_retained() {
        let (c, ids) = star();
        let v = c.net_by_name("v").unwrap();
        // Restrict the aggressor nets' own lists by using n = 0 semantics:
        // only check the victim-side list via top_n_on.
        let mask = CouplingMask::none(&c).with(&top_n_on(&c, v, 2));
        assert!(mask.is_enabled(ids[0]));
        assert!(mask.is_enabled(ids[1]));
        assert!(!mask.is_enabled(ids[2]));
        assert!(heuristic_mask(&c, 3).enabled_count() >= mask.enabled_count());
    }
}
