//! Corridor prover: sound envelope-bound abstract interpretation that
//! *damps* the structural dirty closure of what-if sessions.
//!
//! The structural closure ([`Circuit::dirty_closure_filtered`]) treats
//! every mask-enabled coupling-adjacency edge and every gate-fanout edge
//! as a difference carrier, so on densely coupled circuits one flipped
//! coupling transitively dirties almost every net — the "incremental"
//! re-sweep degenerates to a full run. This module replaces reachability
//! with a *semantic* proof built from three pieces:
//!
//! 1. **Per-net digests** ([`SemanticState`]): an FNV-1a hash over every
//!    `Prepared` input the per-victim enumeration reads about a net — its
//!    window timing, its primary aggressors (coupling, partner, pulse,
//!    partner window), its dominance/clip intervals, its shift bound and
//!    (in elimination mode) its converged delay noise. Two runs whose
//!    digests agree at net `n` feed the enumeration *bit-identical*
//!    per-net state at `n`.
//! 2. **A corridor abstract domain** ([`Corridor`]): piecewise-linear
//!    lower/upper envelope bounds (the cheap instance being a peak ×
//!    support box) with sound transfer functions for sum, clamped
//!    difference, window widening and clipping. The per-coupling
//!    **maximum envelope contribution** bound is the corridor of the
//!    primary's envelope widened by the largest shift bound either world
//!    allows, clipped to the victim's analysis window.
//! 3. **A dataflow fixpoint**: digest-changed nets seed a gate-fanout
//!    closure `W` (any net whose fanin cone holds a changed net can rank
//!    its wideners differently); a victim is *locally* dirty when its own
//!    digest changed or when one of its primaries has its aggressor in
//!    `W` and the corridor bound cannot refute the edge; local dirtiness
//!    then closes downstream over gate fanout (I-lists are consumed
//!    strictly along fanin). The final dirty set is the intersection with
//!    the structural closure — the prover only ever *removes* work.
//!
//! # Soundness argument (DESIGN.md §14 carries the full version)
//!
//! [`Envelope::from_window`] is pointwise monotone in the LAT bound:
//! widening the window extends the trapezoid's flat top rightward, so
//! `env(δ) ≤ env(cap)` pointwise for every `δ ≤ cap`. The enumeration
//! consults an aggressor's wideners only behind guards of the form
//! "skip this primary if its (maximally widened) clipped envelope is
//! zero" (addition) or "skip if the window carries no noise or the
//! clipped envelope is zero" (elimination). If the corridor bound at
//! `cap = max(shift bound old, shift bound new)` clips to zero, the
//! guard fires in *both* worlds for *every* reachable widening, so no
//! output — lists, counters, raw candidate counts — can depend on the
//! changed widener rankings, and the edge provably carries no
//! difference. Every surviving skip is recorded as a machine-checkable
//! [`CleanCertificate`]; `dna lint --deep` re-derives all of them from
//! scratch (rules L050–L052).

use dna_netlist::{Circuit, CouplingId, NetId};
use dna_waveform::{Pwl, TimeInterval, EPS};

use crate::engine::{Mode, Prepared, PrimaryInfo};

/// Which dirty-closure damping a what-if session applies on each apply.
///
/// Both settings produce f64-bit-identical results at any thread count;
/// they differ only in how much provably unnecessary re-enumeration they
/// skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Damping {
    /// Structural reachability only: re-sweep the mask-aware dirty
    /// closure of the flipped couplings' endpoints.
    Structural,
    /// Corridor-prover damping (the default): additionally skip every
    /// structurally dirty victim whose cleanliness the envelope-bound
    /// abstract interpretation certifies, and attach a
    /// [`CleanCertificate`] per skip.
    #[default]
    Semantic,
}

impl Damping {
    /// Human-readable name (matches the CLI `--damping` values).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Damping::Structural => "structural",
            Damping::Semantic => "semantic",
        }
    }
}

// ---------------------------------------------------------------------
// Corridor abstract domain
// ---------------------------------------------------------------------

/// An abstract envelope: piecewise-linear lower and upper bounds with
/// the invariant `lower(t) ≤ exact(t) ≤ upper(t)` for every `t`.
///
/// The transfer functions are sound but deliberately coarse where
/// coarseness is cheap — [`widen`](Self::widen) falls back to a peak ×
/// support box over the widened range — because the prover uses
/// corridors as a *pre-filter*: a corridor that is
/// [`is_provably_zero`](Self::is_provably_zero) refutes an edge without
/// touching exact envelope algebra, and anything the corridor cannot
/// decide falls through to the exact (still conservative) envelope test.
#[derive(Debug, Clone, PartialEq)]
pub struct Corridor {
    lower: Pwl,
    upper: Pwl,
}

impl Corridor {
    /// The corridor `[exact, exact]` of a known curve.
    #[must_use]
    pub fn from_exact(curve: &Pwl) -> Self {
        Self { lower: curve.clone(), upper: curve.clone() }
    }

    /// The peak × support box: `0 ≤ exact ≤ peak · 1[support]`. The
    /// cheapest sound abstraction of any envelope with that peak and
    /// support.
    ///
    /// [`Pwl`] merges breakpoints closer than [`EPS`] and extends
    /// constantly past its endpoints, so the box edges are built as
    /// steeper-than-vertical ramps *outside* the support (the same
    /// `RAMP` idiom as [`Envelope::clipped`]) — the flat top covers the
    /// whole support exactly and the overshoot only widens the upper
    /// bound, which stays sound.
    #[must_use]
    pub fn box_bound(peak: f64, support: TimeInterval) -> Self {
        let peak = peak.max(0.0);
        let upper = if peak <= 0.0 {
            Pwl::zero()
        } else {
            Pwl::new(vec![
                (support.lo() - 2.0 * RAMP, 0.0),
                (support.lo() - RAMP, peak),
                (support.hi() + RAMP, peak),
                (support.hi() + 2.0 * RAMP, 0.0),
            ])
            .expect("box corners are ordered")
        };
        Self { lower: Pwl::zero(), upper }
    }

    /// A corridor from explicit bounds. The caller asserts `lower ≤
    /// upper` pointwise; [`is_well_formed`](Self::is_well_formed) checks
    /// it.
    #[must_use]
    pub fn from_bounds(lower: Pwl, upper: Pwl) -> Self {
        Self { lower, upper }
    }

    /// The lower bound curve.
    #[must_use]
    pub fn lower(&self) -> &Pwl {
        &self.lower
    }

    /// The upper bound curve.
    #[must_use]
    pub fn upper(&self) -> &Pwl {
        &self.upper
    }

    /// Whether `lower ≤ upper` holds over `interval` (within [`EPS`]).
    #[must_use]
    pub fn is_well_formed(&self, interval: TimeInterval) -> bool {
        self.upper.ge_over(&self.lower, interval, EPS)
    }

    /// Whether `curve` lies inside the corridor over `interval` (within
    /// [`EPS`]) — the containment invariant the proptests certify.
    #[must_use]
    pub fn contains(&self, curve: &Pwl, interval: TimeInterval) -> bool {
        self.upper.ge_over(curve, interval, EPS) && curve.ge_over(&self.lower, interval, EPS)
    }

    /// Transfer function of envelope superposition: if `a ∈ self` and
    /// `b ∈ other`, then `a + b ∈ self.add(other)`.
    #[must_use]
    pub fn add(&self, other: &Corridor) -> Corridor {
        Corridor {
            lower: self.lower.add_simplified(&other.lower, 0.0),
            upper: self.upper.add_simplified(&other.upper, 0.0),
        }
    }

    /// Transfer function of clamped difference: if `a ∈ self` and `b ∈
    /// other`, then `max(a − b, 0) ∈ self.sub_clamped(other)`.
    #[must_use]
    pub fn sub_clamped(&self, other: &Corridor) -> Corridor {
        Corridor {
            lower: self.lower.sub_clamped_simplified(&other.upper, 0.0),
            upper: self.upper.sub_clamped_simplified(&other.lower, 0.0),
        }
    }

    /// Transfer function of window widening by up to `delta ≥ 0`: the
    /// widened exact curve is the sliding maximum `t ↦ max_{s∈[0,δ]}
    /// exact(t−s)`, which is bounded above by the peak × support box over
    /// the `delta`-extended support (and below by the unwidened lower
    /// bound, since widening only adds mass).
    #[must_use]
    pub fn widen(&self, delta: f64) -> Corridor {
        if delta <= 0.0 {
            return self.clone();
        }
        let span = self.upper.span();
        let peak = self.upper.max_value().max(0.0);
        if peak <= 0.0 || span.width() + delta <= 0.0 {
            return self.clone();
        }
        let extended = Self::box_bound(peak, TimeInterval::new(span.lo(), span.hi() + delta)).upper;
        Corridor { lower: self.lower.clone(), upper: self.upper.pointwise_max(&extended) }
    }

    /// Transfer function of clipping to `interval` (zero outside).
    ///
    /// The upper bound keeps its interior values with ramped edges just
    /// outside the interval ([`Envelope::clipped`]'s geometry), so its
    /// in-interval peak is exact. The lower bound collapses to zero —
    /// envelope curves are non-negative, so zero is always a valid lower
    /// bound, and refutation only ever consults the upper side.
    #[must_use]
    pub fn clip(&self, interval: TimeInterval) -> Corridor {
        Corridor { lower: Pwl::zero(), upper: clip_upper(&self.upper, interval) }
    }

    /// Upper bound on the exact curve's peak.
    #[must_use]
    pub fn peak_bound(&self) -> f64 {
        self.upper.max_value().max(0.0)
    }

    /// Whether every curve in the corridor is zero (peak bound at most
    /// [`EPS`]) — a refutation: no envelope inside this corridor can move
    /// any victim crossing.
    #[must_use]
    pub fn is_provably_zero(&self) -> bool {
        self.peak_bound() <= EPS
    }
}

/// Width of the steeper-than-vertical edge ramps used where a true step
/// would be merged away by [`Pwl::new`] (same constant as
/// [`Envelope::clipped`]).
const RAMP: f64 = 1e-6;

/// Upper bound of `curve` zeroed outside `interval`: interior values are
/// preserved (clamped at zero from below) and the edges ramp down to
/// zero just *outside* the interval, so the result dominates the exactly
/// clipped curve pointwise and its in-interval peak equals
/// `curve.max_over(interval)`. Assumes envelope-shaped input (decays to
/// zero at its breakpoint extremes).
fn clip_upper(curve: &Pwl, interval: TimeInterval) -> Pwl {
    let span = curve.span();
    if span.lo() >= interval.lo() && span.hi() <= interval.hi() {
        return curve.clone();
    }
    if !span.overlaps(interval) {
        return Pwl::zero();
    }
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(curve.points().len() + 4);
    let v_lo = curve.eval(interval.lo()).max(0.0);
    if v_lo > 0.0 {
        pts.push((interval.lo() - RAMP, 0.0));
    }
    pts.push((interval.lo(), v_lo));
    for &(t, v) in curve.points() {
        if t > interval.lo() && t < interval.hi() {
            pts.push((t, v.max(0.0)));
        }
    }
    let v_hi = curve.eval(interval.hi()).max(0.0);
    pts.push((interval.hi(), v_hi));
    if v_hi > 0.0 {
        pts.push((interval.hi() + RAMP, 0.0));
    }
    Pwl::new(pts).expect("clip points are ordered")
}

// ---------------------------------------------------------------------
// Per-net digests
// ---------------------------------------------------------------------

/// Incremental FNV-1a over the f64 bit patterns and indices the
/// enumeration reads (same constants as the artifact codec's checksum).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The semantic fingerprint of one prepared run: a digest per net over
/// every per-net `Prepared` input the enumeration can read about it,
/// plus the raw shift bounds (the widening caps the corridor bound must
/// cover on the aggressor side of an edge).
#[derive(Debug, Clone)]
pub(crate) struct SemanticState {
    pub digests: Vec<u64>,
    pub shift_bounds: Vec<f64>,
}

impl SemanticState {
    /// Captures the per-net digests of `p`.
    ///
    /// The digest of net `n` covers: its window timing (EAT/LAT/slew —
    /// noisy in elimination mode, so converged-noise differences are
    /// observable), every primary aggressor (coupling id, partner id,
    /// pulse corners, partner window — so a flipped or re-timed partner
    /// changes this net's digest even though the partner is only
    /// coupling-adjacent), the dominance and clip intervals, the raw
    /// shift bound, and (elimination mode) the net's converged delay
    /// noise. Everything else the enumeration reads about `n` is either
    /// derived from the noiseless base timing (mask-independent) or
    /// arrives through fanin I-lists, which the dataflow fixpoint covers
    /// by closing dirtiness over gate fanout.
    pub fn capture(p: &Prepared<'_>) -> Self {
        let mut digests = Vec::with_capacity(p.circuit.num_nets());
        for v in p.circuit.net_ids() {
            let vi = v.index();
            let mut h = Fnv::new();
            let t = &p.window_timings[vi];
            h.f64(t.eat());
            h.f64(t.lat());
            h.f64(t.slew());
            h.usize(p.primaries[vi].len());
            for info in &p.primaries[vi] {
                h.usize(info.coupling.index());
                h.usize(info.aggressor.index());
                h.f64(info.pulse.start());
                h.f64(info.pulse.peak_time());
                h.f64(info.pulse.peak());
                h.f64(info.pulse.end());
                h.f64(info.eat);
                h.f64(info.lat);
            }
            h.f64(p.dominance_iv[vi].lo());
            h.f64(p.dominance_iv[vi].hi());
            h.f64(p.clip_iv[vi].lo());
            h.f64(p.clip_iv[vi].hi());
            h.f64(p.shift_bound[vi]);
            if let Some(noisy) = &p.noisy {
                h.f64(noisy.delay_noise(v));
            }
            digests.push(h.finish());
        }
        Self { digests, shift_bounds: p.shift_bound.clone() }
    }
}

// ---------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------

/// The corridor bound that refuted one coupling-adjacency edge `(victim,
/// coupling, aggressor)` during damping: the justifying inequality is
/// `peak_bound ≤ EPS` (no mass of the maximally widened envelope reaches
/// the victim's clip window) — or, in elimination mode with `cap = 0`,
/// that the aggressor's window carries no noise to narrow, which the
/// lint re-derivation (L051) re-checks from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorBound {
    coupling: CouplingId,
    aggressor: NetId,
    cap: f64,
    peak_bound: f64,
    peak_at_zero: f64,
    support: TimeInterval,
    clip: TimeInterval,
}

impl CorridorBound {
    /// Builds a bound record — public so verifier harnesses can
    /// construct adversarial certificates for the lint rules.
    #[must_use]
    pub fn new(
        coupling: CouplingId,
        aggressor: NetId,
        cap: f64,
        peak_bound: f64,
        peak_at_zero: f64,
        support: TimeInterval,
        clip: TimeInterval,
    ) -> Self {
        Self { coupling, aggressor, cap, peak_bound, peak_at_zero, support, clip }
    }

    /// The coupling whose adjacency edge this bound refutes.
    #[must_use]
    pub fn coupling(&self) -> CouplingId {
        self.coupling
    }

    /// The aggressor-side endpoint (the net in the changed-fanout set).
    #[must_use]
    pub fn aggressor(&self) -> NetId {
        self.aggressor
    }

    /// The widening cap the bound covers: the larger of the aggressor's
    /// old and new shift bounds (addition mode), `0` in elimination mode.
    #[must_use]
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Peak of the maximally widened envelope inside the clip window —
    /// the bound side of the justifying inequality.
    #[must_use]
    pub fn peak_bound(&self) -> f64 {
        self.peak_bound
    }

    /// Peak of the *unwidened* envelope inside the clip window. Widening
    /// is pointwise monotone, so `peak_at_zero ≤ peak_bound` must hold —
    /// rule L052 checks exactly this.
    #[must_use]
    pub fn peak_at_zero(&self) -> f64 {
        self.peak_at_zero
    }

    /// Support of the maximally widened (unclipped) envelope.
    #[must_use]
    pub fn support(&self) -> TimeInterval {
        self.support
    }

    /// The victim's clip window the bound was evaluated over.
    #[must_use]
    pub fn clip(&self) -> TimeInterval {
        self.clip
    }
}

/// The machine-checkable justification for serving one structurally
/// dirty victim from the session cache: its digest did not change and
/// every coupling-adjacency edge reaching it from the changed set was
/// refuted by a corridor bound. `dna lint --deep` re-derives both claims
/// from scratch (rules L050/L051) and checks each bound's internal
/// monotonicity (L052).
#[derive(Debug, Clone, PartialEq)]
pub struct CleanCertificate {
    victim: NetId,
    digest_old: u64,
    digest_new: u64,
    edges: Vec<CorridorBound>,
}

impl CleanCertificate {
    /// Builds a certificate — public so verifier harnesses can construct
    /// adversarial instances for the lint rules.
    #[must_use]
    pub fn new(victim: NetId, digest_old: u64, digest_new: u64, edges: Vec<CorridorBound>) -> Self {
        Self { victim, digest_old, digest_new, edges }
    }

    /// The victim this certificate proves clean.
    #[must_use]
    pub fn victim(&self) -> NetId {
        self.victim
    }

    /// The victim's digest under the old mask.
    #[must_use]
    pub fn digest_old(&self) -> u64 {
        self.digest_old
    }

    /// The victim's digest under the new mask (must equal
    /// [`digest_old`](Self::digest_old) — a changed digest can never be
    /// proven clean).
    #[must_use]
    pub fn digest_new(&self) -> u64 {
        self.digest_new
    }

    /// The refuted coupling-adjacency edges (one bound per primary whose
    /// aggressor lies in the changed-fanout set).
    #[must_use]
    pub fn edges(&self) -> &[CorridorBound] {
        &self.edges
    }
}

/// An independently re-derived damping result: what the prover concludes
/// when handed nothing but the circuit, the two masks and the mode. The
/// lint pass compares a session's claimed dirty set and certificates
/// against this.
#[derive(Debug, Clone)]
pub struct CleanWitness {
    dirty: Vec<bool>,
    certificates: Vec<CleanCertificate>,
}

impl CleanWitness {
    /// Builds a witness — public so verifier harnesses can construct
    /// adversarial instances for the lint rules.
    #[must_use]
    pub fn new(dirty: Vec<bool>, certificates: Vec<CleanCertificate>) -> Self {
        Self { dirty, certificates }
    }

    /// The re-derived final dirty flags (structural ∧ semantic).
    #[must_use]
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }

    /// The re-derived certificates, one per proven-clean victim.
    #[must_use]
    pub fn certificates(&self) -> &[CleanCertificate] {
        &self.certificates
    }
}

// ---------------------------------------------------------------------
// The prover
// ---------------------------------------------------------------------

/// Output of one damping pass: the final dirty flags (always a subset of
/// the structural closure) plus one certificate per proven-clean victim.
pub(crate) struct Refinement {
    pub dirty: Vec<bool>,
    pub certificates: Vec<CleanCertificate>,
}

/// Reflexive gate-fanout closure of `seeds`.
fn fanout_closure(circuit: &Circuit, seeds: &[bool]) -> Vec<bool> {
    let mut out = seeds.to_vec();
    let mut stack: Vec<NetId> = circuit.net_ids().filter(|n| seeds[n.index()]).collect();
    while let Some(n) = stack.pop() {
        for &g in circuit.net(n).loads() {
            let o = circuit.gate(g).output();
            if !out[o.index()] {
                out[o.index()] = true;
                stack.push(o);
            }
        }
    }
    out
}

/// The per-coupling maximum envelope contribution bound of one
/// adjacency edge, and whether it refutes the edge.
///
/// Addition mode: the enumeration consults the aggressor's wideners only
/// behind `primary_envelope(v, info, max_delta).is_zero()` with
/// `max_delta ≤ shift_bound[aggressor]`; bounding the widening at `cap =
/// max(old, new shift bound)` covers every delta either world can reach,
/// so a zero clipped corridor at `cap` silences the primary's
/// higher-order variants in both worlds (pointwise monotonicity of
/// [`Envelope::from_window`] in LAT).
///
/// Elimination mode: the widener-dependent branch is guarded by `window
/// noise > 0 && !env(0).is_zero()`, and both guard inputs are part of
/// the victim's digest — an unchanged digest makes them equal across
/// worlds, so either failing guard refutes the edge with `cap = 0`.
fn refute_edge(
    p: &Prepared<'_>,
    v: NetId,
    info: &PrimaryInfo,
    old: &SemanticState,
) -> Option<CorridorBound> {
    let clip = p.clip_iv[v.index()];
    match p.mode {
        Mode::Addition => {
            let xi = info.aggressor.index();
            let cap = old.shift_bounds[xi].max(p.shift_bound[xi]);
            let wide = info.envelope(cap);
            // Cheap corridor box first; exact clipped envelope only when
            // the box cannot decide.
            let refuted =
                Corridor::box_bound(wide.peak(), wide.span()).clip(clip).is_provably_zero()
                    || p.primary_envelope(v, info, cap).is_zero();
            if !refuted {
                return None;
            }
            Some(CorridorBound {
                coupling: info.coupling,
                aggressor: info.aggressor,
                cap,
                peak_bound: wide.peak_over(clip),
                peak_at_zero: info.envelope(0.0).peak_over(clip),
                support: wide.span(),
                clip,
            })
        }
        Mode::Elimination => {
            let window_noise = info.lat - p.base.timing(info.aggressor).lat();
            let refuted = window_noise <= 0.0 || p.primary_envelope(v, info, 0.0).is_zero();
            if !refuted {
                return None;
            }
            let env0 = info.envelope(0.0);
            let peak = env0.peak_over(clip);
            Some(CorridorBound {
                coupling: info.coupling,
                aggressor: info.aggressor,
                cap: 0.0,
                peak_bound: peak,
                peak_at_zero: peak,
                support: env0.span(),
                clip,
            })
        }
    }
}

/// Runs the damping pass: given the *new* world's prepared state, the
/// old world's semantic fingerprint and the structural dirty closure,
/// returns the refined dirty set (with certificates for every victim it
/// removed) and the new world's fingerprint for the session to adopt.
///
/// `forced_clean` deliberately (and unsoundly) forces one victim clean —
/// the fault-injection hook the lint/audit tests use; production callers
/// pass the disarmed hook, which is `None`.
pub(crate) fn refine(
    p: &Prepared<'_>,
    old: &SemanticState,
    structural: &[bool],
    forced_clean: Option<usize>,
) -> (Refinement, SemanticState) {
    let new = SemanticState::capture(p);
    let circuit = p.circuit;
    let n = circuit.num_nets();
    debug_assert_eq!(old.digests.len(), n);
    debug_assert_eq!(structural.len(), n);

    // C: digest-changed nets; W: their reflexive gate-fanout closure
    // (any net whose fanin cone holds a changed net may rank its
    // wideners differently).
    let changed: Vec<bool> = (0..n).map(|i| old.digests[i] != new.digests[i]).collect();
    let w = fanout_closure(circuit, &changed);

    // Locally dirty: digest changed, or an adjacency edge from W that
    // the corridor bound cannot refute. Nets outside the structural
    // closure need no work — the semantic set is provably a subset.
    let mut local = changed;
    let mut edges: Vec<Vec<CorridorBound>> = vec![Vec::new(); n];
    for v in circuit.net_ids() {
        let vi = v.index();
        if local[vi] || !structural[vi] {
            continue;
        }
        for info in &p.primaries[vi] {
            if !w[info.aggressor.index()] {
                continue;
            }
            match refute_edge(p, v, info, old) {
                Some(bound) => edges[vi].push(bound),
                None => {
                    local[vi] = true;
                    edges[vi].clear();
                    break;
                }
            }
        }
    }

    // Downstream closure: I-lists are consumed strictly along fanin, so
    // a dirty victim's consumers are exactly its gate fanout. The
    // intersection keeps `structural` an upper bound by construction —
    // damping only ever *removes* re-sweep work.
    let semantic = fanout_closure(circuit, &local);
    let mut dirty: Vec<bool> = (0..n).map(|i| structural[i] && semantic[i]).collect();
    let mut certificates: Vec<CleanCertificate> = Vec::new();
    for vi in 0..n {
        if structural[vi] && !dirty[vi] {
            certificates.push(CleanCertificate {
                victim: NetId::new(vi as u32),
                digest_old: old.digests[vi],
                digest_new: new.digests[vi],
                edges: std::mem::take(&mut edges[vi]),
            });
        }
    }

    // Fault injection: force one victim clean with a fabricated
    // certificate (digests lied equal, no refuted edges). The lint
    // re-derivation and the clean-victim audit must both catch this.
    if let Some(idx) = forced_clean {
        if idx < n && dirty[idx] {
            dirty[idx] = false;
            certificates.push(CleanCertificate {
                victim: NetId::new(idx as u32),
                digest_old: new.digests[idx],
                digest_new: new.digests[idx],
                edges: Vec::new(),
            });
            certificates.sort_by_key(|c| c.victim.index());
        }
    }

    (Refinement { dirty, certificates }, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopKConfig;
    use dna_netlist::{CellKind, Circuit, CircuitBuilder, Library};
    use dna_noise::{CouplingMask, NoiseAnalysis};
    use dna_waveform::NoisePulse;

    /// Minimal deterministic PRNG (xorshift64*) — no external deps.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Self {
            Self(seed.max(1))
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }

    fn random_pulse(rng: &mut Rng) -> NoisePulse {
        let start = rng.f64_in(-5.0, 5.0);
        let rise = rng.f64_in(0.1, 10.0);
        let fall = rng.f64_in(0.1, 10.0);
        let peak = rng.f64_in(0.0, 0.8);
        NoisePulse::new(start, start + rise, peak, start + rise + fall)
    }

    fn random_window(rng: &mut Rng) -> (f64, f64) {
        let eat = rng.f64_in(0.0, 100.0);
        let lat = eat + rng.f64_in(0.0, 50.0);
        (eat, lat)
    }

    fn hull(curves: &[&Pwl]) -> TimeInterval {
        let mut iv = TimeInterval::new(-1.0, 1.0);
        for c in curves {
            iv = iv.hull(c.span());
        }
        TimeInterval::new(iv.lo() - 10.0, iv.hi() + 10.0)
    }

    #[test]
    fn box_bound_contains_its_envelope() {
        let mut rng = Rng::new(7);
        for _ in 0..200 {
            let pulse = random_pulse(&mut rng);
            let (eat, lat) = random_window(&mut rng);
            let env = dna_waveform::Envelope::from_window(&pulse, eat, lat);
            let c = Corridor::box_bound(env.peak(), env.span());
            let iv = hull(&[env.as_pwl()]);
            assert!(c.is_well_formed(iv));
            assert!(c.contains(env.as_pwl(), iv), "box must contain its envelope");
        }
    }

    #[test]
    fn add_transfer_contains_exact_sum() {
        let mut rng = Rng::new(11);
        for _ in 0..200 {
            let a = dna_waveform::Envelope::from_window(&random_pulse(&mut rng), 10.0, 30.0);
            let b = {
                let (eat, lat) = random_window(&mut rng);
                dna_waveform::Envelope::from_window(&random_pulse(&mut rng), eat, lat)
            };
            let exact = a.as_pwl().add_simplified(b.as_pwl(), 0.0);
            let ca = Corridor::box_bound(a.peak(), a.span());
            let cb = Corridor::from_exact(b.as_pwl());
            let sum = ca.add(&cb);
            let iv = hull(&[&exact]);
            assert!(sum.contains(&exact, iv), "lower <= exact sum <= upper must hold");
        }
    }

    #[test]
    fn sub_clamped_transfer_contains_exact_difference() {
        let mut rng = Rng::new(13);
        for _ in 0..200 {
            let a = dna_waveform::Envelope::from_window(&random_pulse(&mut rng), 5.0, 25.0);
            let b = dna_waveform::Envelope::from_window(&random_pulse(&mut rng), 8.0, 20.0);
            let exact = a.as_pwl().sub_clamped_simplified(b.as_pwl(), 0.0);
            let ca = Corridor::box_bound(a.peak(), a.span());
            let cb = Corridor::box_bound(b.peak(), b.span());
            let diff = ca.sub_clamped(&cb);
            let iv = hull(&[&exact]);
            assert!(diff.contains(&exact, iv), "corridor difference must contain exact");
        }
    }

    #[test]
    fn widen_transfer_contains_widened_envelope() {
        let mut rng = Rng::new(17);
        for _ in 0..200 {
            let pulse = random_pulse(&mut rng);
            let (eat, lat) = random_window(&mut rng);
            let delta = rng.f64_in(0.0, 40.0);
            let base = dna_waveform::Envelope::from_window(&pulse, eat, lat);
            let widened = dna_waveform::Envelope::from_window(&pulse, eat, lat + delta);
            let c = Corridor::from_exact(base.as_pwl()).widen(delta);
            let iv = hull(&[widened.as_pwl()]);
            assert!(
                c.contains(widened.as_pwl(), iv),
                "widened envelope escaped widen({delta}) corridor"
            );
        }
    }

    #[test]
    fn clip_transfer_contains_clipped_envelope() {
        let mut rng = Rng::new(19);
        for _ in 0..200 {
            let pulse = random_pulse(&mut rng);
            let (eat, lat) = random_window(&mut rng);
            let env = dna_waveform::Envelope::from_window(&pulse, eat, lat);
            let lo = rng.f64_in(-20.0, 120.0);
            let clip = TimeInterval::new(lo, lo + rng.f64_in(1.0, 80.0));
            let clipped = env.clipped(clip);
            let c = Corridor::from_exact(env.as_pwl()).clip(clip);
            let iv = hull(&[clipped.as_pwl()]);
            assert!(
                c.contains(clipped.as_pwl(), iv),
                "engine-clipped envelope escaped clip corridor"
            );
            // And the corridor's zero-refutation agrees with the engine's.
            if c.is_provably_zero() {
                assert!(clipped.is_zero(), "corridor refuted a non-zero clipped envelope");
            }
        }
    }

    #[test]
    fn provably_zero_is_conservative() {
        let c = Corridor::box_bound(0.5, TimeInterval::new(0.0, 10.0));
        assert!(!c.is_provably_zero());
        assert!(c.clip(TimeInterval::new(20.0, 30.0)).is_provably_zero());
        assert!(Corridor::box_bound(0.0, TimeInterval::new(0.0, 10.0)).is_provably_zero());
    }

    // -- prover ------------------------------------------------------

    fn two_cones() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let p = b.input("p");
        let q = b.input("q");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        let w = b.gate(CellKind::Inv, "w", &[v]).unwrap();
        let r = b.gate(CellKind::Buf, "r", &[p]).unwrap();
        let s = b.gate(CellKind::Buf, "s", &[q]).unwrap();
        let t = b.gate(CellKind::Inv, "t", &[r]).unwrap();
        b.output(w);
        b.output(g);
        b.output(t);
        b.output(s);
        b.coupling(v, g, 8.0).unwrap();
        b.coupling(w, g, 4.0).unwrap();
        b.coupling(r, s, 8.0).unwrap();
        b.coupling(t, s, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn digests_are_deterministic_and_mask_sensitive() {
        let c = two_cones();
        let config = TopKConfig::default();
        let noise = NoiseAnalysis::new(&c, config.noise);
        let full = CouplingMask::all(&c);
        let p1 = Prepared::build(&c, config, Mode::Addition, &noise, full.clone()).unwrap();
        let p2 = Prepared::build(&c, config, Mode::Addition, &noise, full.clone()).unwrap();
        let s1 = SemanticState::capture(&p1);
        let s2 = SemanticState::capture(&p2);
        assert_eq!(s1.digests, s2.digests, "capture must be deterministic");

        let masked = full.clone().without(&[CouplingId::new(0)]);
        let p3 = Prepared::build(&c, config, Mode::Addition, &noise, masked).unwrap();
        let s3 = SemanticState::capture(&p3);
        let cc = c.coupling(CouplingId::new(0));
        assert_ne!(
            s1.digests[cc.a().index()],
            s3.digests[cc.a().index()],
            "flipping a coupling must change its endpoints' digests"
        );
        // The untouched cone keeps its digests bit-for-bit.
        for name in ["p", "q", "r", "s", "t"] {
            let n = c.net_by_name(name).unwrap();
            assert_eq!(s1.digests[n.index()], s3.digests[n.index()], "{name} digest moved");
        }
    }

    #[test]
    fn refine_proves_disjoint_cone_clean_and_stays_inside_structural() {
        let c = two_cones();
        let config = TopKConfig::default();
        let noise = NoiseAnalysis::new(&c, config.noise);
        let full = CouplingMask::all(&c);
        for mode in [Mode::Addition, Mode::Elimination] {
            let p_old = Prepared::build(&c, config, mode, &noise, full.clone()).unwrap();
            let old = SemanticState::capture(&p_old);
            let masked = full.clone().without(&[CouplingId::new(0)]);
            let p_new = Prepared::build(&c, config, mode, &noise, masked).unwrap();
            let structural = vec![true; c.num_nets()]; // worst-case closure
            let (refined, _) = refine(&p_new, &old, &structural, None);
            for name in ["p", "q", "r", "s", "t"] {
                let n = c.net_by_name(name).unwrap();
                assert!(
                    !refined.dirty[n.index()],
                    "{}: disjoint-cone net {name} must be proven clean",
                    mode.name()
                );
            }
            // Endpoints of the flipped coupling stay dirty.
            let cc = c.coupling(CouplingId::new(0));
            assert!(refined.dirty[cc.a().index()]);
            assert!(refined.dirty[cc.b().index()]);
            // Every removed victim carries a certificate with equal digests.
            let clean: Vec<usize> = (0..c.num_nets()).filter(|&i| !refined.dirty[i]).collect();
            assert_eq!(clean.len(), refined.certificates.len());
            for cert in &refined.certificates {
                assert_eq!(cert.digest_old(), cert.digest_new());
                assert!(!refined.dirty[cert.victim().index()]);
            }
        }
    }

    #[test]
    fn refine_respects_structural_intersection() {
        let c = two_cones();
        let config = TopKConfig::default();
        let noise = NoiseAnalysis::new(&c, config.noise);
        let full = CouplingMask::all(&c);
        let p_old = Prepared::build(&c, config, Mode::Addition, &noise, full.clone()).unwrap();
        let old = SemanticState::capture(&p_old);
        let masked = full.clone().without(&[CouplingId::new(0)]);
        let p_new = Prepared::build(&c, config, Mode::Addition, &noise, masked).unwrap();
        let structural = vec![false; c.num_nets()];
        let (refined, _) = refine(&p_new, &old, &structural, None);
        assert!(refined.dirty.iter().all(|&d| !d), "dirty must be within structural");
        assert!(refined.certificates.is_empty(), "no structural holes, no certificates");
    }

    #[test]
    fn forced_clean_fabricates_a_certificate() {
        let c = two_cones();
        let config = TopKConfig::default();
        let noise = NoiseAnalysis::new(&c, config.noise);
        let full = CouplingMask::all(&c);
        let p_old = Prepared::build(&c, config, Mode::Addition, &noise, full.clone()).unwrap();
        let old = SemanticState::capture(&p_old);
        let masked = full.clone().without(&[CouplingId::new(0)]);
        let p_new = Prepared::build(&c, config, Mode::Addition, &noise, masked).unwrap();
        let structural = vec![true; c.num_nets()];
        let honest = refine(&p_new, &old, &structural, None).0;
        let victim = c.coupling(CouplingId::new(0)).a();
        assert!(honest.dirty[victim.index()], "flipped endpoint must be honestly dirty");
        let forced = refine(&p_new, &old, &structural, Some(victim.index())).0;
        assert!(!forced.dirty[victim.index()], "hook must force the victim clean");
        let cert = forced
            .certificates
            .iter()
            .find(|cert| cert.victim() == victim)
            .expect("forced victim must carry a fabricated certificate");
        assert_eq!(cert.digest_old(), cert.digest_new(), "fabricated digests lie equal");
        assert!(cert.edges().is_empty());
    }
}
