//! Top-k engine configuration.

use std::time::Duration;

use dna_noise::NoiseConfig;

use crate::bounds::Damping;

/// Configuration of the top-k aggressor-set engine.
///
/// The defaults reproduce the paper's algorithm; the switches exist for the
/// ablation benches (how much do dominance pruning, pseudo aggressors and
/// higher-order aggressors each contribute?).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKConfig {
    /// Configuration of the underlying noise analysis.
    pub noise: NoiseConfig,
    /// Upper bound on the width of each irredundant list.
    ///
    /// Dominance pruning alone keeps lists small on realistic circuits
    /// (paper §3.2); the beam cap is a safety net for adversarial inputs.
    /// Candidates with the largest delay noise are kept. `None` disables
    /// the cap (exact mode, used to validate against brute force).
    pub max_list_width: Option<usize>,
    /// Enable dominance pruning (paper Theorem 1). Disabling it is only
    /// sensible together with a beam cap, for the ablation study.
    pub dominance_pruning: bool,
    /// Enable pseudo input aggressors (paper §3.1). Disabling restricts
    /// the analysis to primary aggressors per victim.
    pub pseudo_aggressors: bool,
    /// Enable higher-order aggressors (paper §3.3, the `b1₂` candidates).
    pub higher_order: bool,
    /// Validate the chosen set with a full iterative noise analysis and
    /// report the measured delay (recommended; small extra cost).
    pub validate: bool,
    /// When validating, measure up to this many of the best predicted
    /// candidate sets and return the one with the best *measured* delay.
    /// Guards the envelope abstraction's ranking against close calls; `1`
    /// validates only the single predicted winner.
    pub validation_pool: usize,
    /// How many gate levels upstream the higher-order widener search
    /// looks. Noise iterations converge within a few levels (industrial
    /// tools report 3–4 iterations, paper §1); `usize::MAX` searches the
    /// whole transitive fanin cone.
    pub widener_depth: usize,
    /// Worker threads for the work-stealing victim sweep. `0` uses the
    /// host's available parallelism (see
    /// [`effective_threads`](Self::effective_threads)); `1` runs the
    /// serial reference path (the determinism baseline). Any value
    /// produces bit-identical results — per-victim enumeration is pure,
    /// every victim owns a private result slot, and budgets are
    /// pre-partitioned, so thread count and steal order never change
    /// what is computed, only when.
    pub threads: usize,
    /// Per-victim cap on raw candidates generated while building one
    /// victim's I-lists. On breach, generation stops for that victim and
    /// dominance pruning keeps the strongest survivors of what was
    /// generated — a *sound lower bound*: every surviving set is still
    /// achievable, only optimality is lost. The victim is counted in
    /// [`SweepStats::truncated_victims`](crate::SweepStats) and the result
    /// is marked degraded. `None` (the default) disables the cap.
    pub victim_candidate_budget: Option<usize>,
    /// Global cap on raw candidates generated across the whole sweep,
    /// **pre-partitioned** into per-victim shares before the sweep
    /// starts: each victim of the work set, ranked in victim-index
    /// order, receives `pool / n` candidates (the first `pool % n` ranks
    /// one extra), and its allowance is the smaller of that share and
    /// the per-victim cap. The shares sum exactly to the pool — it can
    /// never be overdrawn. A victim whose share is zero is served empty
    /// lists ([`SweepStats::skipped_victims`](crate::SweepStats)); one
    /// that breaches its share truncates like the per-victim cap.
    /// **Deterministic at any `threads` value**: which victims are cut
    /// is a pure function of circuit, config and work set — never of
    /// scheduling or steal order. `None` disables the budget.
    pub global_candidate_budget: Option<usize>,
    /// Wall-clock deadline for the enumeration sweep, measured from
    /// sweep start and checked at **task start**: a victim whose task
    /// begins before the deadline runs to completion, and every victim
    /// whose task starts after it is served empty lists and counted in
    /// [`SweepStats::skipped_victims`](crate::SweepStats) — the result
    /// is marked degraded instead of the engine hanging. Task-granular:
    /// *which* victims are skipped depends on wall-clock time (this is
    /// the one knob that trades determinism for liveness).
    /// `Some(Duration::ZERO)` degenerates every victim deterministically
    /// (the zero-budget edge case). `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// How incremental re-analysis (what-if sessions, batches) decides
    /// which victims to re-sweep after a coupling flip. Never changes any
    /// output bit — [`Damping::Semantic`] (the default) only *removes*
    /// re-sweep work it can certify via the corridor prover, and every
    /// skip carries a machine-checkable
    /// [`CleanCertificate`](crate::CleanCertificate).
    pub damping: Damping,
}

impl Default for TopKConfig {
    fn default() -> Self {
        Self {
            noise: NoiseConfig::default(),
            max_list_width: Some(24),
            dominance_pruning: true,
            pseudo_aggressors: true,
            higher_order: true,
            validate: true,
            validation_pool: 16,
            widener_depth: 4,
            threads: 0,
            victim_candidate_budget: None,
            global_candidate_budget: None,
            deadline: None,
            damping: Damping::Semantic,
        }
    }
}

impl TopKConfig {
    /// Exact configuration: no beam cap, whole-cone widener search,
    /// everything enabled. Matches the paper's algorithm most closely; can
    /// be slow on adversarial inputs.
    #[must_use]
    pub fn exact() -> Self {
        Self { max_list_width: None, widener_depth: usize::MAX, ..Self::default() }
    }

    /// The worker-thread count [`threads`](Self::threads) resolves to:
    /// itself when positive, the host's available parallelism for `0`
    /// (falling back to 1 if the host cannot say).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// Whether any enumeration budget (candidate caps or deadline) is
    /// configured. When false — the default — the sweep runs exactly as
    /// the unbudgeted engine and results are never marked degraded by
    /// budget truncation.
    #[must_use]
    pub fn has_budget(&self) -> bool {
        self.victim_candidate_budget.is_some()
            || self.global_candidate_budget.is_some()
            || self.deadline.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_techniques() {
        let c = TopKConfig::default();
        assert!(c.dominance_pruning);
        assert!(c.pseudo_aggressors);
        assert!(c.higher_order);
        assert!(c.validate);
        assert!(c.max_list_width.is_some());
        assert_eq!(c.damping, Damping::Semantic);
    }

    #[test]
    fn defaults_carry_no_budget() {
        let c = TopKConfig::default();
        assert!(!c.has_budget());
        assert!(TopKConfig { deadline: Some(Duration::ZERO), ..c }.has_budget());
        assert!(TopKConfig { victim_candidate_budget: Some(10), ..c }.has_budget());
        assert!(TopKConfig { global_candidate_budget: Some(0), ..c }.has_budget());
    }

    #[test]
    fn exact_mode_uncaps_lists() {
        assert_eq!(TopKConfig::exact().max_list_width, None);
        assert!(TopKConfig::exact().dominance_pruning);
    }

    #[test]
    fn effective_threads_resolves_zero_to_host_parallelism() {
        let auto = TopKConfig::default();
        assert_eq!(auto.threads, 0);
        assert!(auto.effective_threads() >= 1);
        let fixed = TopKConfig { threads: 3, ..TopKConfig::default() };
        assert_eq!(fixed.effective_threads(), 3);
        let serial = TopKConfig { threads: 1, ..TopKConfig::default() };
        assert_eq!(serial.effective_threads(), 1);
    }
}
