//! The top-k aggressors **elimination** set (paper §3.4).
//!
//! Starting from converged noisy timing, find the set of `k` couplings
//! whose removal (shielding/spacing) reduces the circuit delay the most.
//! The dual of the addition algorithm: every victim has a *total* noise
//! envelope (all primaries with their noisy windows plus the full fanin
//! shift as a pseudo envelope); candidates carry the **residual** envelope
//! left after subtracting what they eliminate, and dominance prefers
//! smaller residuals.

use std::collections::HashSet;

use dna_netlist::NetId;
use dna_waveform::Envelope;

use crate::addition::{EnumerationOutcome, SinkOption};
use crate::dominance::{irredundant, DominanceDirection};
use crate::engine::{
    sweep_victims, sweep_victims_subset, Curtailment, NetLists, Prepared, SweepOutput, SweepTotals,
    VictimCounters, VictimLists,
};
use crate::result::Fault;
use crate::sched::{SchedStats, Slots};
use crate::{faultsim, Candidate, CouplingSet, TopKError};

/// Mirror of the addition-side combination breadth.
const COMBO_BREADTH: usize = 4;

/// How many ranked wideners get an *individual* higher-order atom (beyond
/// the cumulative prefix sets).
const WIDENER_POOL: usize = 4;

/// One removable atom: the couplings eliminated and the envelope their
/// elimination takes away from the victim's total.
struct RemovalAtom {
    set: CouplingSet,
    removal: Envelope,
}

pub(crate) fn run(
    p: &Prepared<'_>,
    k: usize,
) -> Result<(EnumerationOutcome, Vec<Fault>, SchedStats), TopKError> {
    let out = sweep(p, k, None)?;
    let outcome = select(p, k, &out.lists, &out.counters)?;
    Ok((outcome, out.faults, out.sched))
}

/// The residual-list sweep on its own — scheduled over the work-stealing
/// deques, a victim reads only strict-fanin slots (the pseudo-elimination
/// grouping). With `seeds`, only the flagged dirty victims are recomputed
/// and the rest are served from the cached lists/counters — the what-if
/// incremental path.
pub(crate) fn sweep(
    p: &Prepared<'_>,
    k: usize,
    seeds: Option<(&[NetLists], &[VictimCounters], &[bool])>,
) -> Result<SweepOutput, TopKError> {
    let per_victim = per_victim_fn(p, k);
    match seeds {
        None => sweep_victims(p, per_victim),
        Some((lists, counters, dirty)) => {
            sweep_victims_subset(p, lists, counters, dirty, per_victim)
        }
    }
}

/// The per-victim enumeration as a standalone closure, for drivers that
/// schedule victims themselves (the batch engine interleaves several
/// scenarios' victims through one scheduler). The closure's `allowance`
/// argument is the victim's pre-partitioned budget share.
pub(crate) fn per_victim_fn<'a>(
    p: &'a Prepared<'_>,
    k: usize,
) -> impl Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync + 'a {
    let breadth = if p.config.max_list_width.is_none() { usize::MAX } else { COMBO_BREADTH };
    move |v, ilists: &Slots, allowance: usize| victim_lists(p, k, breadth, v, ilists, allowance)
}

/// The sink-selection stage on its own (see [`select_sink`]).
pub(crate) fn select(
    p: &Prepared<'_>,
    k: usize,
    ilists: &[NetLists],
    counters: &[VictimCounters],
) -> Result<EnumerationOutcome, TopKError> {
    let Some(noisy) = p.noisy.as_ref() else {
        return Err(TopKError::Internal {
            what: "elimination selection reached without a converged noisy report".into(),
        });
    };
    let totals = VictimCounters::aggregate(counters);
    Ok(select_sink(p, k, noisy, ilists, totals))
}

/// Builds one victim's residual lists. Reads `ilists` only at the
/// victim's driver inputs (strict fanin), which the scheduler's
/// dependency edges guarantee are published.
fn victim_lists(
    p: &Prepared<'_>,
    k: usize,
    breadth: usize,
    v: NetId,
    ilists: &Slots,
    allowance: usize,
) -> Result<VictimLists, TopKError> {
    let circuit = p.circuit;
    let Some(noisy) = p.noisy.as_ref() else {
        return Err(TopKError::Internal {
            what: "elimination enumeration reached without a converged noisy report".into(),
        });
    };
    let vi = v.index();
    let iv = p.dominance_iv[vi];
    let mut peak_list_width = 0usize;
    let mut generated = 0usize;
    let mut raw_generated = 0usize;
    let mut truncated = false;

    // Fanin shift carried into this victim by upstream noise: the
    // noisy arrival minus the victim's own injected noise, relative to
    // the noiseless arrival.
    let d_fanin =
        (p.window_timings[vi].lat() - noisy.delay_noise(v) - p.base.timing(v).lat()).max(0.0);

    // Total envelope (all primaries, noisy windows, plus fanin shift).
    let primary_envs: Vec<Envelope> =
        p.primaries[vi].iter().map(|info| p.primary_envelope(v, info, 0.0)).collect();
    let pseudo_full = p.pseudo_envelope(v, d_fanin);
    let total = Envelope::sum_all(primary_envs.iter()).sum(&pseudo_full);

    // --- Removal atom pool -----------------------------------------
    let mut atoms: Vec<RemovalAtom> = Vec::new();
    // Primary eliminations. Zero-contribution primaries (envelope
    // clipped away from the victim's crossing) cannot help and are
    // dropped up front.
    for (info, env) in p.primaries[vi].iter().zip(&primary_envs) {
        if env.is_zero() {
            continue;
        }
        atoms
            .push(RemovalAtom { set: CouplingSet::singleton(info.coupling), removal: env.clone() });
    }
    // Higher-order eliminations: removing the j strongest wideners of
    // a primary's aggressor narrows that primary's noisy window.
    if p.config.higher_order && k >= 1 {
        for (info, env) in p.primaries[vi].iter().zip(&primary_envs) {
            let window_noise = (info.lat - p.base.timing(info.aggressor).lat()).max(0.0);
            if window_noise <= 0.0 || env.is_zero() {
                continue;
            }
            let wideners = p.wideners_of(info.aggressor);
            // Prefix sets: the j strongest wideners together.
            let mut set = CouplingSet::new();
            let mut delta = 0.0;
            for &(cc, dn) in wideners.iter().take(k) {
                let grown = set.with(cc);
                if grown.len() == set.len() {
                    continue;
                }
                set = grown;
                delta = (delta + dn).min(window_noise);
                let narrowed = p.primary_envelope(v, info, -delta);
                atoms.push(RemovalAtom {
                    set: set.clone(),
                    removal: p.primary_envelope(v, info, 0.0).saturating_sub(&narrowed),
                });
            }
            // Individual wideners: a lower-ranked widener can still be
            // the best *single* fix when the top one is spoken for.
            for &(cc, dn) in wideners.iter().take(WIDENER_POOL).skip(1) {
                let narrowed = p.primary_envelope(v, info, -dn.min(window_noise));
                atoms.push(RemovalAtom {
                    set: CouplingSet::singleton(cc),
                    removal: p.primary_envelope(v, info, 0.0).saturating_sub(&narrowed),
                });
            }
        }
    }
    // Pseudo eliminations: sets fixed upstream reduce the fanin shift.
    // Benefits are anchored at the *noisy* fanin arrivals — a fixed
    // input arrives `benefit` earlier than its converged noisy arrival,
    // where `benefit` is measured against the input's own I-list_0
    // (nothing fixed) so the empty fix maps exactly onto `d_fanin`.
    //
    // A coupling in the shared fanin cone benefits *several* inputs at
    // once (both its endpoints propagate), so candidates with the same
    // coupling set arriving through different inputs are grouped and
    // their fixed arrivals applied jointly; inputs that do not carry
    // the set keep their noisy arrivals.
    if p.config.pseudo_aggressors && d_fanin > 0.0 {
        if let (Some(noisy_arr), Some(base_arr)) = (p.fanin_arrivals(v), p.fanin_base_arrivals(v)) {
            let max_base = base_arr.iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
            // set -> per-input fixed arrival (noisy arrival if absent).
            let mut grouped: std::collections::HashMap<CouplingSet, Vec<f64>> =
                std::collections::HashMap::new();
            for (idx, &(u, arr_noisy_u)) in noisy_arr.iter().enumerate() {
                let arr_base_u = base_arr[idx].1;
                let Some(total_u) = ilists.lists(u)?.first() else { continue };
                let total_dn_u = total_u[0].delay_noise();
                // Scale envelope-estimated benefits to the converged
                // noise at u: the one-shot superposition overestimates
                // relative to the iterative fixpoint, and the ratio
                // maps "everything fixed" exactly onto the noiseless
                // arrival.
                let ratio = if total_dn_u > 1e-12 {
                    ((arr_noisy_u - arr_base_u) / total_dn_u).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                for c in 1..=k {
                    let Some(list) = ilists.lists(u)?.get(c) else { continue };
                    for cand in list.iter().take(breadth) {
                        // Residual noise at u after fixing this set.
                        let benefit = (total_dn_u - cand.delay_noise()).max(0.0) * ratio;
                        let arr_fixed = (arr_noisy_u - benefit).max(arr_base_u);
                        let entry = grouped
                            .entry(cand.set().clone())
                            .or_insert_with(|| noisy_arr.iter().map(|&(_, a)| a).collect());
                        entry[idx] = entry[idx].min(arr_fixed);
                    }
                }
            }
            // Drain in canonical set order: hash order would feed atoms
            // into candidate generation nondeterministically, and
            // `irredundant`'s keep-the-earlier tie rule would turn that
            // into run-to-run (and serial-vs-parallel) divergence.
            let mut grouped: Vec<(CouplingSet, Vec<f64>)> = grouped.into_iter().collect();
            grouped.sort_unstable_by(|a, b| a.0.ids().cmp(b.0.ids()));
            for (set, arrivals) in grouped {
                let joint = arrivals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let d_after = (joint - max_base).max(0.0).min(d_fanin);
                if d_after >= d_fanin {
                    continue; // fixing this upstream set does not help v
                }
                let removal = pseudo_full.saturating_sub(&p.pseudo_envelope(v, d_after));
                atoms.push(RemovalAtom { set, removal });
            }
        }
    }

    // --- Iterative residual-list construction -----------------------
    let mut lists: Vec<Vec<Candidate>> = Vec::with_capacity(k + 1);
    // The baseline (nothing-fixed) candidate bypasses the budget: even a
    // zero allowance keeps the seed, so every downstream consumer still
    // has the victim's total envelope to anchor on.
    let total_dn = faultsim::corrupt_delay_noise(v, p.delay_noise_at(v, &total));
    lists.push(vec![Candidate::try_new(CouplingSet::new(), total.clone(), total_dn)?]);
    for i in 1..=k {
        let mut cands: Vec<Candidate> = Vec::new();
        let mut push = |set: CouplingSet,
                        env: Envelope,
                        cands: &mut Vec<Candidate>|
         -> Result<(), TopKError> {
            if raw_generated >= allowance {
                truncated = true;
                return Ok(());
            }
            raw_generated += 1;
            let dn = faultsim::corrupt_delay_noise(v, p.delay_noise_at(v, &env));
            cands.push(Candidate::try_new(set, env, dn)?);
            Ok(())
        };

        // Extend I_{i-1} with one primary removal.
        for s in &lists[i - 1] {
            for atom in atoms.iter().filter(|a| a.set.len() == 1) {
                if s.set().intersects(&atom.set) {
                    continue;
                }
                push(
                    s.set().union(&atom.set),
                    s.envelope().saturating_sub(&atom.removal),
                    &mut cands,
                )?;
            }
        }
        // Atoms standalone (exact cardinality) or, for multi-coupling
        // atoms, combined with the best smaller sets. Single-coupling
        // extension is already covered above.
        for atom in &atoms {
            let c = atom.set.len();
            if c > i || c == 0 {
                continue;
            }
            let j = i - c;
            if j == 0 {
                push(atom.set.clone(), total.saturating_sub(&atom.removal), &mut cands)?;
            } else if c > 1 {
                for s in lists[j].iter().take(breadth) {
                    if s.set().intersects(&atom.set) {
                        continue;
                    }
                    push(
                        s.set().union(&atom.set),
                        s.envelope().saturating_sub(&atom.removal),
                        &mut cands,
                    )?;
                }
            }
        }

        cands.retain(|c| c.cardinality() == i);
        generated += cands.len();
        let mut pruned = irredundant(
            cands,
            iv,
            DominanceDirection::SmallerIsBetter,
            p.config.dominance_pruning,
            p.config.max_list_width,
        );
        peak_list_width = peak_list_width.max(pruned.len());
        pruned.sort_by(|a, b| a.delay_noise().total_cmp(&b.delay_noise()));
        lists.push(pruned);
    }
    if std::env::var_os("DNA_DEBUG_ELIM").is_some() {
        let sizes: Vec<usize> = lists.iter().map(Vec::len).collect();
        eprintln!(
            "[elim] net {} d_fanin {:.2} total_dn {:.2} atoms [{}] lists {:?} I1 [{}]",
            circuit.net(v).name(),
            d_fanin,
            lists[0][0].delay_noise(),
            atoms
                .iter()
                .map(|a| format!("{}@{:.2}", a.set, a.removal.peak()))
                .collect::<Vec<_>>()
                .join(" "),
            sizes,
            lists
                .get(1)
                .map(|l| l
                    .iter()
                    .map(|c| format!("{}:{:.2}", c.set(), c.delay_noise()))
                    .collect::<Vec<_>>()
                    .join(" "))
                .unwrap_or_default()
        );
    }
    let curtailment = if truncated { Curtailment::Truncated } else { Curtailment::None };
    Ok(VictimLists { lists, peak_list_width, generated, curtailment })
}

/// Chooses the set minimizing the predicted circuit delay after
/// elimination.
///
/// The circuit delay is the max over primary outputs, so an elimination
/// budget of `k` must in general be *split* across outputs — fixing only
/// the currently critical path leaves the next output as the bottleneck.
/// A small knapsack-style DP assigns a budget to every output: for each
/// output the best candidate per budget is tabulated (anchored at the
/// output's converged noisy arrival), then budgets are allocated to
/// minimize the resulting max arrival. The union of the chosen sets can
/// have fewer than `k` couplings when extra fixes cannot help further.
fn select_sink(
    p: &Prepared<'_>,
    k: usize,
    noisy: &dna_noise::NoiseReport,
    ilists: &[NetLists],
    totals: SweepTotals,
) -> EnumerationOutcome {
    let outputs = p.circuit.primary_outputs();
    let noisy_lat = |o: NetId| noisy.noisy_timing().timing(o).lat();

    // Per output: best (delay-after, candidate) for each budget 0..=k.
    // Budget c may use any candidate of cardinality <= c. Benefits are
    // scaled to the converged noise at the output (see the pseudo-atom
    // construction above for the rationale).
    type Choice<'a> = (f64, Option<&'a Candidate>);
    let rows: Vec<(NetId, Vec<Choice<'_>>)> = outputs
        .iter()
        .map(|&o| {
            let lat_base = p.base.timing(o).lat();
            let total_dn = ilists[o.index()].first().map_or(0.0, |l| l[0].delay_noise());
            let ratio = if total_dn > 1e-12 {
                ((noisy_lat(o) - lat_base) / total_dn).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let mut best: Choice<'_> = (noisy_lat(o), None);
            let mut row = Vec::with_capacity(k + 1);
            row.push(best);
            for c in 1..=k {
                if let Some(list) = ilists[o.index()].get(c) {
                    for cand in list {
                        let benefit = (total_dn - cand.delay_noise()).max(0.0) * ratio;
                        let after = (noisy_lat(o) - benefit).max(lat_base);
                        if after < best.0 {
                            best = (after, Some(cand));
                        }
                    }
                }
                row.push(best);
            }
            (o, row)
        })
        .collect();

    // DP over outputs: state = budget spent, value = (max arrival so far,
    // chosen budget per processed output).
    let mut states: Vec<Option<(f64, Vec<usize>)>> = vec![None; k + 1];
    states[0] = Some((f64::NEG_INFINITY, Vec::new()));
    for (_, row) in &rows {
        let mut next: Vec<Option<(f64, Vec<usize>)>> = vec![None; k + 1];
        for (spent, state) in states.iter().enumerate() {
            let Some((worst, choices)) = state else { continue };
            for (c, &(after, _)) in row.iter().enumerate() {
                if spent + c > k {
                    break;
                }
                let new_worst = worst.max(after);
                let slot = &mut next[spent + c];
                if slot.as_ref().is_none_or(|(w, _)| new_worst < *w) {
                    let mut ch = choices.clone();
                    ch.push(c);
                    *slot = Some((new_worst, ch));
                }
            }
        }
        states = next;
    }

    // Turn DP states into ranked answer options: one per total budget
    // (different budgets trade marginal fixes for smaller sets), plus each
    // output's solo allocation for pool diversity.
    let materialize = |choices: &[usize]| {
        let mut set = CouplingSet::new();
        let mut sink = noisy.noisy_timing().critical_output();
        let mut sink_delay = f64::NEG_INFINITY;
        for ((o, row), &c) in rows.iter().zip(choices) {
            let (after, cand) = row[c];
            if let Some(cand) = cand {
                set = set.union(cand.set());
            }
            if after > sink_delay {
                sink_delay = after;
                sink = *o;
            }
        }
        (set, sink)
    };

    let mut options: Vec<SinkOption> = Vec::new();
    for state in states.iter().flatten() {
        let (set, sink) = materialize(&state.1);
        options.push(SinkOption { set, predicted_delay: state.0, sink });
    }
    for (i, (o, row)) in rows.iter().enumerate() {
        let (after, Some(cand)) = row[k] else { continue };
        let others = rows
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, (x, _))| noisy_lat(*x))
            .fold(f64::NEG_INFINITY, f64::max);
        options.push(SinkOption {
            set: cand.set().clone(),
            predicted_delay: after.max(others),
            sink: *o,
        });
    }

    options.sort_by(|a, b| a.predicted_delay.total_cmp(&b.predicted_delay));
    let pool = p.config.validation_pool.max(1);
    let mut seen: HashSet<CouplingSet> = HashSet::new();
    let mut deduped: Vec<SinkOption> = Vec::new();
    for opt in options {
        if deduped.len() >= pool {
            break;
        }
        if !seen.insert(opt.set.clone()) {
            continue;
        }
        deduped.push(opt);
    }
    if deduped.is_empty() {
        deduped.push(SinkOption {
            set: CouplingSet::new(),
            predicted_delay: noisy.circuit_delay(),
            sink: noisy.noisy_timing().critical_output(),
        });
    }
    if std::env::var_os("DNA_DEBUG_ELIM").is_some() {
        for opt in &deduped {
            eprintln!("[elim] option {} predicted {:.2}", opt.set, opt.predicted_delay);
        }
    }
    EnumerationOutcome { options: deduped, totals }
}
