//! Batch what-if evaluation: many independent scenarios against one
//! session snapshot.
//!
//! A designer triaging an elimination set rarely has *one* question —
//! they have a menu: "what if I shield these two?", "what if only the
//! first?", "what if I also un-shield that earlier fix?". Applying each
//! [`MaskDelta`] through [`WhatIfSession::apply`] answers them one at a
//! time, but serializes work that is almost entirely shareable:
//!
//! * **Closure sharing.** Scenario dirty sets are fixpoints of a
//!   monotone worklist, and a scenario's adjacency predicate is `base
//!   mask ∪ its flipped couplings` — monotone in the flipped set. The
//!   batch sorts the distinct flipped-sets lexicographically and walks
//!   them as a trie: each prefix's dirty fixpoint is computed once
//!   ([`Circuit::dirty_closure_extend`]) and extended per added
//!   coupling, so scenarios sharing fix prefixes share the closure work
//!   ([`BatchStats::closure_frames_shared`] counts the reuse).
//! * **One scheduler.** Instead of S sequential sweeps, the batch feeds
//!   (scenario, victim) tasks from *every* scenario through one
//!   deterministic work-stealing scheduler ([`crate::sched`]) — narrow
//!   cones that would each under-fill a thread pool fill the deques
//!   together, and a long-tail victim of one scenario no longer stalls
//!   any other scenario's progress.
//! * **Dedup.** Scenarios with identical flipped-sets (common when a
//!   script enumerates neighborhoods) are evaluated once.
//!
//! # Identity contract
//!
//! `apply_batch` does not mutate the session. Scenario `i`'s outcome is
//! bit-identical to `session.fork().apply(&deltas[i])` — same lists,
//! same counters, same faults, same result — at any
//! [`threads`](crate::TopKConfig::threads) setting, because the
//! per-victim enumeration is pure, every task writes only its own
//! scenario's victim slot, and each scenario's budget is pre-partitioned
//! over exactly the dirty set its own incremental sweep would partition
//! over (clean victims consume no share, so a scenario with nothing
//! dirty charges nothing, exactly as its own sweep would).

use std::sync::Arc;
use std::time::Instant;

use dna_netlist::{CouplingId, NetId, NetSource};
use dna_noise::CouplingMask;

use crate::bounds::{self, CleanCertificate};
use crate::engine::{self, NetLists, Prepared, VictimCounters, VictimLists};
use crate::result::{Fault, FaultPhase};
use crate::sched::{self, BudgetPartition, SchedStats, Slots};
use crate::session::changed_and_seeds;
use crate::{
    addition, elimination, faultsim, guard, MaskDelta, Mode, TopKError, TopKResult, WhatIfOutcome,
    WhatIfSession,
};

/// A set of independent what-if scenarios to evaluate against one
/// [`WhatIfSession`] snapshot with [`WhatIfSession::apply_batch`].
///
/// Each [`MaskDelta`] is interpreted against the session's *current*
/// mask — scenarios do not compose with each other.
#[derive(Debug, Clone, Default)]
pub struct WhatIfBatch {
    deltas: Vec<MaskDelta>,
}

impl WhatIfBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch over `deltas`, one scenario per delta, in order.
    #[must_use]
    pub fn from_deltas(deltas: Vec<MaskDelta>) -> Self {
        Self { deltas }
    }

    /// Appends one scenario.
    pub fn push(&mut self, delta: MaskDelta) {
        self.deltas.push(delta);
    }

    /// Number of scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the batch holds no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The scenarios, in submission order.
    #[must_use]
    pub fn deltas(&self) -> &[MaskDelta] {
        &self.deltas
    }
}

/// Work-sharing counters of one [`WhatIfSession::apply_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    scenarios: usize,
    distinct_scenarios: usize,
    dirty_victims: usize,
    unmasked_dirty_victims: usize,
    proven_clean_victims: usize,
    closure_frames_built: usize,
    closure_frames_shared: usize,
    sched: SchedStats,
}

impl BatchStats {
    /// Scenarios submitted.
    #[must_use]
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Scenarios actually evaluated after deduplicating identical
    /// flipped-coupling sets.
    #[must_use]
    pub fn distinct_scenarios(&self) -> usize {
        self.distinct_scenarios
    }

    /// Structurally dirty victims across all distinct scenarios — what
    /// the batch *would* re-sweep under [`Damping::Structural`]. Under
    /// semantic damping the corridor prover then removes
    /// [`proven_clean_victims`](Self::proven_clean_victims) of these, so
    /// the actual enumeration work is the difference.
    ///
    /// [`Damping::Structural`]: crate::Damping::Structural
    #[must_use]
    pub fn dirty_victims(&self) -> usize {
        self.dirty_victims
    }

    /// Structurally dirty victims (summed over distinct scenarios) the
    /// corridor prover certified clean and the sweep therefore skipped.
    /// Zero under [`Damping::Structural`](crate::Damping::Structural) or
    /// when no semantic state is cached (first apply after a resume).
    #[must_use]
    pub fn proven_clean_victims(&self) -> usize {
        self.proven_clean_victims
    }

    /// What [`dirty_victims`](Self::dirty_victims) would have been under
    /// mask-oblivious adjacency (closure through every coupling, enabled
    /// or not) — the batch-level measurement of what mask-aware closure
    /// filtering saved. Never smaller than `dirty_victims`.
    #[must_use]
    pub fn unmasked_dirty_victims(&self) -> usize {
        self.unmasked_dirty_victims
    }

    /// Closure trie nodes computed: one per (prefix, coupling) extension
    /// actually run.
    #[must_use]
    pub fn closure_frames_built(&self) -> usize {
        self.closure_frames_built
    }

    /// Closure trie nodes *reused* from an earlier scenario's prefix —
    /// the closure work prefix sharing saved. `built + shared` equals the
    /// sum of flipped-set sizes over distinct scenarios.
    #[must_use]
    pub fn closure_frames_shared(&self) -> usize {
        self.closure_frames_shared
    }

    /// Scheduler counters of the shared (scenario × victim) sweep:
    /// threads, tasks, steals and per-worker load spread. Diagnostic
    /// only — excluded from the batch identity contract.
    #[must_use]
    pub fn sched(&self) -> &SchedStats {
        &self.sched
    }
}

/// The result of one [`WhatIfSession::apply_batch`] call: one
/// [`WhatIfOutcome`] per submitted scenario (in submission order), plus
/// the batch's work-sharing counters.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    scenarios: Vec<WhatIfOutcome>,
    stats: BatchStats,
}

impl BatchOutcome {
    /// Per-scenario outcomes, indexed like the submitted deltas. Each is
    /// bit-identical to what `session.fork().apply(&delta)` returns.
    #[must_use]
    pub fn scenarios(&self) -> &[WhatIfOutcome] {
        &self.scenarios
    }

    /// Work-sharing counters of the batch evaluation.
    #[must_use]
    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

/// One distinct scenario after the front end: the flipped couplings (the
/// dedup/trie key, sorted by id), their endpoint seeds and the scenario's
/// absolute mask.
struct Scenario {
    changed: Vec<CouplingId>,
    seeds: Vec<NetId>,
    mask: CouplingMask,
}

/// The boxed per-victim enumeration of one scenario, so both modes fit
/// one work-item array (dispatch cost is noise next to envelope algebra).
type PerVictim<'p> =
    Box<dyn Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync + 'p>;

impl WhatIfSession<'_, '_> {
    /// Evaluates every scenario of `batch` against this session's current
    /// state, sharing closure work across scenarios and running all
    /// scenarios' dirty victims through one work-stealing sweep.
    ///
    /// The session is **not** mutated: each scenario is independent, and
    /// its outcome is bit-identical to `self.fork().apply(&delta)` at any
    /// thread count (see the module docs). To commit a scenario, apply
    /// its delta with [`apply`](Self::apply).
    ///
    /// # Errors
    ///
    /// Propagates the first scenario's timing/engine error; the session
    /// is unchanged regardless.
    pub fn apply_batch(&self, batch: &WhatIfBatch) -> Result<BatchOutcome, TopKError> {
        let start = Instant::now();
        let circuit = self.analysis.circuit();
        if batch.is_empty() {
            return Ok(BatchOutcome { scenarios: Vec::new(), stats: BatchStats::default() });
        }

        // --- Front end: flipped sets, dedup --------------------------
        let mut scenarios: Vec<Scenario> = Vec::with_capacity(batch.len());
        let mut group_of: Vec<usize> = Vec::with_capacity(batch.len());
        {
            let mut by_key: std::collections::HashMap<Vec<CouplingId>, usize> =
                std::collections::HashMap::new();
            for delta in batch.deltas() {
                let mask = self.mask.clone().without(delta.removed()).with(delta.added());
                let (changed, seeds) = changed_and_seeds(circuit, &self.mask, &mask);
                let group = *by_key.entry(changed.clone()).or_insert_with(|| {
                    scenarios.push(Scenario { changed, seeds, mask });
                    scenarios.len() - 1
                });
                group_of.push(group);
            }
        }

        // --- Shared dirty closures (prefix trie) ---------------------
        // A scenario's adjacency predicate is `base mask ∪ flipped set`,
        // monotone in the flipped set, and `dirty_closure_extend`'s
        // contract is met at every step: the parent frame is a fixpoint
        // of the prefix predicate, and the one newly-allowed coupling's
        // endpoints are exactly the new seeds. Walking the distinct
        // flipped-sets in lexicographic order makes shared prefixes
        // adjacent, so each trie node is computed once.
        let mut order: Vec<usize> = (0..scenarios.len()).collect();
        order.sort_by(|&a, &b| scenarios[a].changed.cmp(&scenarios[b].changed));
        let mut dirty_of: Vec<Vec<bool>> = vec![Vec::new(); scenarios.len()];
        let mut stats = BatchStats {
            scenarios: batch.len(),
            distinct_scenarios: scenarios.len(),
            ..BatchStats::default()
        };
        {
            let root = vec![false; circuit.num_nets()];
            let mut frames: Vec<(CouplingId, Vec<bool>)> = Vec::new();
            let mut in_path = vec![false; circuit.num_couplings()];
            for &s in &order {
                let changed = &scenarios[s].changed;
                let mut common = 0;
                while common < frames.len()
                    && common < changed.len()
                    && frames[common].0 == changed[common]
                {
                    common += 1;
                }
                stats.closure_frames_shared += common;
                while frames.len() > common {
                    let (cc, _) = frames.pop().expect("len checked");
                    in_path[cc.index()] = false;
                }
                for &cc in &changed[common..] {
                    let mut dirty = frames.last().map_or(&root, |(_, d)| d).clone();
                    in_path[cc.index()] = true;
                    let ends = circuit.coupling(cc);
                    circuit.dirty_closure_extend(&mut dirty, &[ends.a(), ends.b()], |id| {
                        self.mask.is_enabled(id) || in_path[id.index()]
                    });
                    frames.push((cc, dirty));
                    stats.closure_frames_built += 1;
                }
                dirty_of[s] = frames.last().map_or_else(|| root.clone(), |(_, d)| d.clone());
            }
        }
        let unmasked_of: Vec<usize> = scenarios
            .iter()
            .map(|sc| circuit.dirty_closure(&sc.seeds).iter().filter(|&&d| d).count())
            .collect();
        stats.dirty_victims = dirty_of.iter().map(|d| d.iter().filter(|&&x| x).count()).sum();
        stats.unmasked_dirty_victims = unmasked_of.iter().sum();

        // --- Phase A: per-scenario preparation -----------------------
        let config = self.analysis.config();
        let threads = config.effective_threads();
        let build_one = |sc: &Scenario| {
            guard(FaultPhase::Prepare, || {
                Prepared::build(circuit, *config, self.mode, &self.analysis.noise, sc.mask.clone())
            })
        };
        let built: Vec<Result<Prepared<'_>, TopKError>> = if threads <= 1 || scenarios.len() == 1 {
            scenarios.iter().map(build_one).collect()
        } else {
            std::thread::scope(|sp| {
                let handles: Vec<_> =
                    scenarios.iter().map(|sc| sp.spawn(|| build_one(sc))).collect();
                handles.into_iter().map(|h| join_or_panic(h, FaultPhase::Prepare)).collect()
            })
        };
        let prepareds: Vec<Prepared<'_>> = built.into_iter().collect::<Result<_, _>>()?;

        // --- Corridor refinement (semantic damping) ------------------
        // Same prover call `apply` makes, per scenario against the same
        // cached pre-state, so each scenario's refined dirty set — and
        // hence its sweep, fault merge and certificates — stays
        // bit-identical to `fork().apply(&delta)`.
        let structural_of: Vec<usize> =
            dirty_of.iter().map(|d| d.iter().filter(|&&x| x).count()).collect();
        let mut certs_of: Vec<Vec<CleanCertificate>> = vec![Vec::new(); scenarios.len()];
        if let Some(sem) = &self.semantic {
            let forced = faultsim::forced_clean_victim();
            for s in 0..scenarios.len() {
                let (refined, _) = bounds::refine(&prepareds[s], sem, &dirty_of[s], forced);
                certs_of[s] = refined.certificates;
                dirty_of[s] = refined.dirty;
            }
            stats.proven_clean_victims = stats.dirty_victims
                - dirty_of.iter().map(|d| d.iter().filter(|&&x| x).count()).sum::<usize>();
        }

        // --- Phase B: one shared work-stealing sweep -----------------
        let k = self.k;
        let per_victims: Vec<PerVictim<'_>> = prepareds
            .iter()
            .map(|p| match self.mode {
                Mode::Addition => Box::new(addition::per_victim_fn(p, k)) as PerVictim<'_>,
                Mode::Elimination => Box::new(elimination::per_victim_fn(p, k)) as PerVictim<'_>,
            })
            .collect();
        let mut counters: Vec<Vec<VictimCounters>> =
            scenarios.iter().map(|_| self.counters.clone()).collect();
        let mut fresh_faults: Vec<Vec<Fault>> = vec![Vec::new(); scenarios.len()];

        // Each scenario keeps its own budget partition over *its* refined
        // dirty set, ranked in victim-index order — the same shares its
        // own incremental sweep would hand out, so truncation stays
        // bit-identical to `fork().apply(&delta)`.
        let mut rank_of: Vec<Vec<usize>> = Vec::with_capacity(scenarios.len());
        let mut partitions: Vec<BudgetPartition> = Vec::with_capacity(scenarios.len());
        for dirty in &dirty_of {
            let mut ranks = vec![usize::MAX; dirty.len()];
            let mut n = 0usize;
            for (i, &d) in dirty.iter().enumerate() {
                if d {
                    ranks[i] = n;
                    n += 1;
                }
            }
            rank_of.push(ranks);
            partitions.push(BudgetPartition::new(config, n));
        }

        // Flattened (scenario, victim) tasks: scenario-major with each
        // scenario's victims in topological order, so dependency edges
        // (which never cross scenarios) always point forward.
        let topo = circuit.nets_topological();
        let mut order: Vec<(usize, NetId)> = Vec::new();
        let mut task_of: Vec<Vec<usize>> =
            dirty_of.iter().map(|d| vec![usize::MAX; d.len()]).collect();
        for (s, dirty) in dirty_of.iter().enumerate() {
            for &v in topo {
                if dirty[v.index()] {
                    task_of[s][v.index()] = order.len();
                    order.push((s, v));
                }
            }
        }
        let mut tasks: Vec<sched::Task> = order
            .iter()
            .map(|&(s, v)| sched::Task {
                dependents: Vec::new(),
                indegree: 0,
                // LPT seeding from the session's cached sweep counters
                // (aggressor-count fallback) — steering only, never bits.
                cost: engine::cost_estimate(&prepareds[s], &self.counters, v),
            })
            .collect();
        for (t, &(s, v)) in order.iter().enumerate() {
            if let NetSource::Gate(g) = circuit.net(v).source() {
                for &u in circuit.gate(g).inputs() {
                    let d = task_of[s][u.index()];
                    if d != usize::MAX {
                        tasks[d].dependents.push(t);
                        tasks[t].indegree += 1;
                    }
                }
            }
        }

        let slots_of: Vec<Slots> =
            dirty_of.iter().map(|d| Slots::from_seeds(&self.lists, d)).collect();
        let (done, sched_stats) = sched::execute(&tasks, threads, |t| {
            let (s, v) = order[t];
            let (skip_share, allowance) = partitions[s].share(rank_of[s][v.index()]);
            let skip = skip_share || partitions[s].expired();
            let (out, fault) = engine::run_one(v, &slots_of[s], skip, allowance, &per_victims[s]);
            let c = VictimCounters {
                peak_list_width: out.peak_list_width,
                generated: out.generated,
                curtailment: out.curtailment,
            };
            if faultsim::drop_sched_publish() != Some(v.index()) {
                slots_of[s].publish(v, Arc::new(out.lists));
            }
            (s, v, c, fault)
        })?;
        for (s, v, c, fault) in done {
            counters[s][v.index()] = c;
            fresh_faults[s].extend(fault);
        }
        stats.sched = sched_stats;
        let ilists: Vec<Vec<NetLists>> = slots_of
            .into_iter()
            .enumerate()
            .map(|(s, slots)| {
                let (lists, violations) = slots.into_lists();
                fresh_faults[s].extend(engine::quarantine_slot_violations(violations));
                lists
            })
            .collect();

        // --- Phase C: per-scenario selection + validation ------------
        let merged_faults: Vec<Vec<Fault>> = fresh_faults
            .into_iter()
            .enumerate()
            .map(|(s, fresh)| {
                let mut faults: Vec<Fault> = self
                    .faults
                    .iter()
                    .filter(|f| !dirty_of[s][f.victim().index()])
                    .cloned()
                    .collect();
                faults.extend(fresh);
                faults.sort_by_key(|f| f.victim().index());
                faults
            })
            .collect();
        let finish_one = |s: usize| -> Result<TopKResult, TopKError> {
            guard(FaultPhase::Selection, || {
                let outcome = match self.mode {
                    Mode::Addition => addition::select(&prepareds[s], k, &ilists[s], &counters[s]),
                    Mode::Elimination => {
                        elimination::select(&prepareds[s], k, &ilists[s], &counters[s])
                    }
                }?;
                self.analysis.finish(
                    self.mode,
                    k,
                    &scenarios[s].mask,
                    &prepareds[s],
                    outcome,
                    &merged_faults[s],
                    sched_stats,
                    start,
                )
            })
        };
        let finished: Vec<Result<TopKResult, TopKError>> = if threads <= 1 || scenarios.len() == 1 {
            (0..scenarios.len()).map(finish_one).collect()
        } else {
            std::thread::scope(|sp| {
                let handles: Vec<_> =
                    (0..scenarios.len()).map(|s| sp.spawn(move || finish_one(s))).collect();
                handles.into_iter().map(|h| join_or_panic(h, FaultPhase::Selection)).collect()
            })
        };
        let results: Vec<TopKResult> = finished.into_iter().collect::<Result<_, _>>()?;

        let group_outcomes: Vec<WhatIfOutcome> = results
            .into_iter()
            .enumerate()
            .map(|(s, result)| {
                WhatIfOutcome::assemble(
                    result,
                    scenarios[s].changed.clone(),
                    dirty_of[s].clone(),
                    structural_of[s],
                    unmasked_of[s],
                    std::mem::take(&mut certs_of[s]),
                )
            })
            .collect();
        let outcomes: Vec<WhatIfOutcome> =
            group_of.iter().map(|&g| group_outcomes[g].clone()).collect();
        if std::env::var_os("DNA_PROFILE").is_some() {
            eprintln!(
                "[profile] whatif batch: {:.2?} ({} scenarios, {} distinct, {} dirty victims, \
                 {} closure frames shared)",
                start.elapsed(),
                stats.scenarios,
                stats.distinct_scenarios,
                stats.dirty_victims,
                stats.closure_frames_shared,
            );
        }
        Ok(BatchOutcome { scenarios: outcomes, stats })
    }
}

/// Joins a scoped worker, converting a propagated unwind into the typed
/// engine error (unreachable while per-victim boundaries hold, but a
/// harness bug must not abort the process).
fn join_or_panic<T>(
    handle: std::thread::ScopedJoinHandle<'_, Result<T, TopKError>>,
    phase: FaultPhase,
) -> Result<T, TopKError> {
    match handle.join() {
        Ok(r) => r,
        Err(payload) => {
            Err(TopKError::EnginePanic { phase, cause: engine::panic_message(payload.as_ref()) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TopKAnalysis, TopKConfig};
    use dna_netlist::{CellKind, Circuit, CircuitBuilder, Library};

    fn two_cones() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let p = b.input("p");
        let q = b.input("q");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        let w = b.gate(CellKind::Inv, "w", &[v]).unwrap();
        let r = b.gate(CellKind::Buf, "r", &[p]).unwrap();
        let s = b.gate(CellKind::Buf, "s", &[q]).unwrap();
        let t = b.gate(CellKind::Inv, "t", &[r]).unwrap();
        b.output(w);
        b.output(g);
        b.output(t);
        b.output(s);
        b.coupling(v, g, 8.0).unwrap();
        b.coupling(w, g, 4.0).unwrap();
        b.coupling(r, s, 8.0).unwrap();
        b.coupling(t, s, 4.0).unwrap();
        b.build().unwrap()
    }

    fn fingerprint(r: &TopKResult) -> (Vec<u32>, usize, u64, u64, u64, usize, usize) {
        (
            r.couplings().iter().map(|c| c.index() as u32).collect(),
            r.sink().index(),
            r.delay_before().to_bits(),
            r.delay_after().to_bits(),
            r.predicted_delay().to_bits(),
            r.peak_list_width(),
            r.generated_candidates(),
        )
    }

    fn deltas() -> Vec<MaskDelta> {
        let id = CouplingId::new;
        vec![
            MaskDelta::remove(&[id(0)]),
            MaskDelta::remove(&[id(2)]),
            MaskDelta::remove(&[id(0), id(1)]),
            MaskDelta::default(),
            MaskDelta::remove(&[id(0)]), // duplicate of scenario 0
        ]
    }

    #[test]
    fn batch_matches_sequential_forks_both_modes() {
        let circuit = two_cones();
        for threads in [1usize, 0, 4] {
            let config = TopKConfig { threads, validate: false, ..TopKConfig::default() };
            let engine = TopKAnalysis::new(&circuit, config);
            for mode in [Mode::Addition, Mode::Elimination] {
                let session = WhatIfSession::start(&engine, mode, 2).unwrap();
                let batch = WhatIfBatch::from_deltas(deltas());
                let out = session.apply_batch(&batch).unwrap();
                assert_eq!(out.scenarios().len(), batch.len());
                for (i, delta) in batch.deltas().iter().enumerate() {
                    let seq = session.fork().apply(delta).unwrap();
                    let got = &out.scenarios()[i];
                    assert_eq!(
                        fingerprint(got.result()),
                        fingerprint(seq.result()),
                        "{} threads={threads} scenario {i} diverged from fork().apply",
                        mode.name()
                    );
                    assert_eq!(got.changed_couplings(), seq.changed_couplings());
                    assert_eq!(got.dirty_flags(), seq.dirty_flags());
                    assert_eq!(got.unmasked_dirty_victims(), seq.unmasked_dirty_victims());
                    assert_eq!(got.structural_dirty_victims(), seq.structural_dirty_victims());
                    assert_eq!(got.proven_clean_victims(), seq.proven_clean_victims());
                    assert_eq!(got.certificates(), seq.certificates());
                }
            }
        }
    }

    #[test]
    fn batch_dedups_identical_flip_sets() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
        let out = session.apply_batch(&WhatIfBatch::from_deltas(deltas())).unwrap();
        // 5 submitted, but the last duplicates the first.
        assert_eq!(out.stats().scenarios(), 5);
        assert_eq!(out.stats().distinct_scenarios(), 4);
        assert_eq!(
            fingerprint(out.scenarios()[0].result()),
            fingerprint(out.scenarios()[4].result())
        );
    }

    #[test]
    fn batch_shares_closure_prefixes() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
        let id = CouplingId::new;
        // {0} and {0,1} share the length-1 prefix {0}.
        let batch = WhatIfBatch::from_deltas(vec![
            MaskDelta::remove(&[id(0)]),
            MaskDelta::remove(&[id(0), id(1)]),
        ]);
        let out = session.apply_batch(&batch).unwrap();
        assert_eq!(out.stats().closure_frames_built(), 2);
        assert_eq!(out.stats().closure_frames_shared(), 1);
    }

    #[test]
    fn batch_does_not_mutate_the_session() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let session = WhatIfSession::start(&engine, Mode::Addition, 2).unwrap();
        let before = fingerprint(session.result());
        let mask_before = session.mask().clone();
        session
            .apply_batch(&WhatIfBatch::from_deltas(vec![MaskDelta::remove(&[CouplingId::new(0)])]))
            .unwrap();
        assert_eq!(fingerprint(session.result()), before);
        assert_eq!(*session.mask(), mask_before);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let session = WhatIfSession::start(&engine, Mode::Addition, 2).unwrap();
        let out = session.apply_batch(&WhatIfBatch::new()).unwrap();
        assert!(out.scenarios().is_empty());
        assert_eq!(out.stats().distinct_scenarios(), 0);
    }
}
