//! Sets of coupling capacitors — the unit the top-k analysis optimizes.

use std::fmt;

use dna_netlist::CouplingId;

/// A sorted, duplicate-free set of coupling capacitors.
///
/// Candidate aggressor sets are identified by the couplings they contain;
/// a *pseudo* or *higher-order* aggressor is simply a set whose couplings
/// live upstream of the victim. Sorted storage makes union, containment
/// and deduplication cheap at the small cardinalities (`k <= ~75`) the
/// analysis works with.
///
/// # Example
///
/// ```
/// use dna_netlist::CouplingId;
/// use dna_topk::CouplingSet;
///
/// let a = CouplingSet::from_iter([CouplingId::new(3), CouplingId::new(1)]);
/// let b = a.with(CouplingId::new(2));
/// assert_eq!(b.len(), 3);
/// assert!(b.contains(CouplingId::new(1)));
/// assert_eq!(b.ids()[0], CouplingId::new(1)); // sorted
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CouplingSet {
    ids: Vec<CouplingId>,
}

impl CouplingSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set containing a single coupling.
    #[must_use]
    pub fn singleton(id: CouplingId) -> Self {
        Self { ids: vec![id] }
    }

    /// Number of couplings in the set (the candidate's cardinality).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` is a member.
    #[must_use]
    pub fn contains(&self, id: CouplingId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// The members, sorted ascending.
    #[must_use]
    pub fn ids(&self) -> &[CouplingId] {
        &self.ids
    }

    /// This set plus one more coupling (no-op if already a member).
    #[must_use]
    pub fn with(&self, id: CouplingId) -> Self {
        match self.ids.binary_search(&id) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut ids = self.ids.clone();
                ids.insert(pos, id);
                Self { ids }
            }
        }
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(&self, other: &CouplingSet) -> Self {
        let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    ids.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    ids.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ids.extend_from_slice(&self.ids[i..]);
        ids.extend_from_slice(&other.ids[j..]);
        Self { ids }
    }

    /// Whether the sets share any member.
    #[must_use]
    pub fn intersects(&self, other: &CouplingSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl FromIterator<CouplingId> for CouplingSet {
    fn from_iter<I: IntoIterator<Item = CouplingId>>(iter: I) -> Self {
        let mut ids: Vec<CouplingId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }
}

impl Extend<CouplingId> for CouplingSet {
    fn extend<I: IntoIterator<Item = CouplingId>>(&mut self, iter: I) {
        self.ids.extend(iter);
        self.ids.sort_unstable();
        self.ids.dedup();
    }
}

impl fmt::Display for CouplingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> CouplingId {
        CouplingId::new(i)
    }

    #[test]
    fn from_iter_sorts_and_dedupes() {
        let s = CouplingSet::from_iter([id(5), id(1), id(5), id(3)]);
        assert_eq!(s.ids(), &[id(1), id(3), id(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn with_is_idempotent() {
        let s = CouplingSet::singleton(id(2));
        assert_eq!(s.with(id(2)), s);
        let t = s.with(id(1));
        assert_eq!(t.ids(), &[id(1), id(2)]);
    }

    #[test]
    fn union_merges() {
        let a = CouplingSet::from_iter([id(1), id(3)]);
        let b = CouplingSet::from_iter([id(2), id(3), id(4)]);
        assert_eq!(a.union(&b).ids(), &[id(1), id(2), id(3), id(4)]);
    }

    #[test]
    fn intersects_detects_overlap() {
        let a = CouplingSet::from_iter([id(1), id(3)]);
        let b = CouplingSet::from_iter([id(3), id(9)]);
        let c = CouplingSet::from_iter([id(0), id(2)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!CouplingSet::new().intersects(&a));
    }

    #[test]
    fn extend_maintains_invariants() {
        let mut s = CouplingSet::singleton(id(4));
        s.extend([id(2), id(4), id(6)]);
        assert_eq!(s.ids(), &[id(2), id(4), id(6)]);
    }

    #[test]
    fn display_lists_members() {
        let s = CouplingSet::from_iter([id(2), id(0)]);
        assert_eq!(s.to_string(), "{cc0, cc2}");
        assert_eq!(CouplingSet::new().to_string(), "{}");
    }
}
