//! Brute-force baseline: exhaustive `C(r, k)` enumeration (paper §2).
//!
//! For every k-subset of the circuit's couplings, run a full iterative
//! noise analysis with only that subset enabled (addition) or disabled
//! (elimination) and keep the best. The paper uses this to validate the
//! proposed algorithm for `k <= 3` and to demonstrate that it becomes
//! intractable beyond that — on their smallest circuit it could not finish
//! `k = 4` within 1800 s. The [`BruteForceConfig::time_budget`] reproduces
//! that wall-clock cap.

use std::time::{Duration, Instant};

use dna_netlist::{Circuit, CouplingId};
use dna_noise::{CouplingMask, NoiseAnalysis, NoiseConfig};
use dna_sta::StaError;

use crate::{CouplingSet, Mode};

/// Limits for the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BruteForceConfig {
    /// Noise-analysis configuration used for every subset evaluation.
    pub noise: NoiseConfig,
    /// Wall-clock budget; the search reports a timeout when exceeded
    /// (checked between subset evaluations).
    pub time_budget: Duration,
}

impl Default for BruteForceConfig {
    fn default() -> Self {
        Self { noise: NoiseConfig::default(), time_budget: Duration::from_secs(1800) }
    }
}

/// Outcome of a brute-force search.
#[derive(Debug, Clone)]
pub enum BruteForceOutcome {
    /// Search finished; the optimal set and its measured circuit delay.
    Completed {
        /// The optimal k-subset.
        set: CouplingSet,
        /// Circuit delay with that subset added (addition) or removed
        /// (elimination).
        delay: f64,
        /// Number of subsets evaluated (`C(r, k)`).
        evaluated: u64,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
    /// The time budget ran out first (the paper's expected result for
    /// `k >= 4` even on small circuits).
    TimedOut {
        /// Subsets evaluated before giving up.
        evaluated: u64,
        /// The best set seen so far, if any.
        best_so_far: Option<(CouplingSet, f64)>,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
}

impl BruteForceOutcome {
    /// The optimal set, if the search completed.
    #[must_use]
    pub fn completed(&self) -> Option<(&CouplingSet, f64)> {
        match self {
            BruteForceOutcome::Completed { set, delay, .. } => Some((set, *delay)),
            BruteForceOutcome::TimedOut { .. } => None,
        }
    }
}

/// Exhaustively finds the optimal top-k set of the given mode.
///
/// # Errors
///
/// Propagates [`StaError`] from the noise analyses.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn brute_force(
    circuit: &Circuit,
    config: &BruteForceConfig,
    mode: Mode,
    k: usize,
) -> Result<BruteForceOutcome, StaError> {
    assert!(k > 0, "k must be positive");
    let start = Instant::now();
    let engine = NoiseAnalysis::new(circuit, config.noise);
    let r = circuit.num_couplings();
    let k = k.min(r);

    let mut best: Option<(CouplingSet, f64)> = None;
    let mut evaluated: u64 = 0;

    let mut subset: Vec<usize> = (0..k).collect();
    loop {
        if start.elapsed() > config.time_budget {
            return Ok(BruteForceOutcome::TimedOut {
                evaluated,
                best_so_far: best,
                elapsed: start.elapsed(),
            });
        }
        let ids: Vec<CouplingId> = subset.iter().map(|&i| CouplingId::new(i as u32)).collect();
        let mask = match mode {
            Mode::Addition => CouplingMask::none(circuit).with(&ids),
            Mode::Elimination => CouplingMask::all(circuit).without(&ids),
        };
        let delay = engine.run_with_mask(&mask)?.circuit_delay();
        evaluated += 1;

        let better = match (&best, mode) {
            (None, _) => true,
            (Some((_, d)), Mode::Addition) => delay > *d,
            (Some((_, d)), Mode::Elimination) => delay < *d,
        };
        if better {
            best = Some((ids.into_iter().collect(), delay));
        }

        if !next_combination(&mut subset, r) {
            break;
        }
    }

    let (set, delay) = best.expect("at least one subset evaluated when r >= k >= 1");
    Ok(BruteForceOutcome::Completed { set, delay, evaluated, elapsed: start.elapsed() })
}

/// Advances `subset` to the next k-combination of `0..r` in lexicographic
/// order; returns `false` after the last one.
fn next_combination(subset: &mut [usize], r: usize) -> bool {
    let k = subset.len();
    if k == 0 || k > r {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < r - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Number of subsets the brute force must evaluate: `C(r, k)`, saturating.
#[must_use]
pub fn subset_count(r: usize, k: usize) -> u128 {
    if k > r {
        return 0;
    }
    let k = k.min(r - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((r - i) as u128) / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    fn small_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let v1 = b.gate(CellKind::Buf, "v1", &[a]).unwrap();
        let v2 = b.gate(CellKind::Buf, "v2", &[v1]).unwrap();
        let g1 = b.gate(CellKind::Buf, "g1", &[x]).unwrap();
        let g2 = b.gate(CellKind::Buf, "g2", &[y]).unwrap();
        b.output(v2);
        b.output(g1);
        b.output(g2);
        b.coupling(v1, g1, 6.0).unwrap();
        b.coupling(v2, g1, 8.0).unwrap();
        b.coupling(v2, g2, 3.0).unwrap();
        b.coupling(g1, g2, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut s = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut s, 4) {
            count += 1;
        }
        assert_eq!(count, 6); // C(4,2)
    }

    #[test]
    fn subset_count_matches_formula() {
        assert_eq!(subset_count(4, 2), 6);
        assert_eq!(subset_count(232, 3), 2_054_360);
        assert_eq!(subset_count(5, 0), 1);
        assert_eq!(subset_count(3, 5), 0);
    }

    #[test]
    fn addition_picks_the_strongest_coupling() {
        let c = small_circuit();
        let out = brute_force(&c, &BruteForceConfig::default(), Mode::Addition, 1).unwrap();
        let (set, delay) = out.completed().expect("tiny search completes");
        assert_eq!(set.len(), 1);
        // Adding a coupling can never reduce delay below noiseless.
        let quiet = NoiseAnalysis::new(&c, NoiseConfig::default())
            .run_with_mask(&CouplingMask::none(&c))
            .unwrap()
            .circuit_delay();
        assert!(delay >= quiet);
    }

    #[test]
    fn elimination_reduces_delay() {
        let c = small_circuit();
        let noisy = NoiseAnalysis::new(&c, NoiseConfig::default()).run().unwrap();
        let out = brute_force(&c, &BruteForceConfig::default(), Mode::Elimination, 2).unwrap();
        let (set, delay) = out.completed().expect("tiny search completes");
        assert_eq!(set.len(), 2);
        assert!(delay <= noisy.circuit_delay() + 1e-9);
    }

    #[test]
    fn evaluated_counts_match_subset_count() {
        let c = small_circuit();
        let out = brute_force(&c, &BruteForceConfig::default(), Mode::Addition, 2).unwrap();
        match out {
            BruteForceOutcome::Completed { evaluated, .. } => {
                assert_eq!(u128::from(evaluated), subset_count(4, 2));
            }
            BruteForceOutcome::TimedOut { .. } => panic!("tiny search must complete"),
        }
    }

    #[test]
    fn zero_budget_times_out() {
        let c = small_circuit();
        let cfg =
            BruteForceConfig { time_budget: Duration::from_secs(0), ..BruteForceConfig::default() };
        // The first subset is evaluated before the budget check triggers,
        // so a timeout reports at least zero evaluations without panicking.
        let out = brute_force(&c, &cfg, Mode::Addition, 2).unwrap();
        assert!(matches!(out, BruteForceOutcome::TimedOut { .. }));
    }
}
