//! Results of a top-k analysis.

use std::fmt;
use std::time::Duration;

use dna_netlist::{CouplingId, NetId};

use crate::{CouplingSet, Mode};

/// The outcome of one top-k addition- or elimination-set computation.
#[derive(Debug, Clone)]
pub struct TopKResult {
    pub(crate) mode: Mode,
    pub(crate) requested_k: usize,
    pub(crate) set: CouplingSet,
    pub(crate) sink: NetId,
    pub(crate) delay_before: f64,
    pub(crate) delay_after: f64,
    pub(crate) predicted_delay: f64,
    pub(crate) peak_list_width: usize,
    pub(crate) generated_candidates: usize,
    pub(crate) runtime: Duration,
}

impl TopKResult {
    /// Which flavor was computed.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The `k` that was requested. The returned set can be smaller when
    /// the circuit has fewer useful couplings.
    #[must_use]
    pub fn requested_k(&self) -> usize {
        self.requested_k
    }

    /// The chosen coupling set, sorted by id.
    #[must_use]
    pub fn couplings(&self) -> &[CouplingId] {
        self.set.ids()
    }

    /// The chosen set as a [`CouplingSet`].
    #[must_use]
    pub fn set(&self) -> &CouplingSet {
        &self.set
    }

    /// The primary output whose delay the set drives.
    #[must_use]
    pub fn sink(&self) -> NetId {
        self.sink
    }

    /// Circuit delay before applying the set: noiseless delay for
    /// addition, full-noise delay for elimination.
    #[must_use]
    pub fn delay_before(&self) -> f64 {
        self.delay_before
    }

    /// Circuit delay after applying the set, measured by a full iterative
    /// noise analysis (or the predicted value when validation is
    /// disabled): with only the set's couplings for addition, with the
    /// set's couplings removed for elimination.
    #[must_use]
    pub fn delay_after(&self) -> f64 {
        self.delay_after
    }

    /// Circuit delay predicted by envelope superposition at the sink
    /// (before validation).
    #[must_use]
    pub fn predicted_delay(&self) -> f64 {
        self.predicted_delay
    }

    /// Convenience aliases matching the paper's tables: the delay *with*
    /// the aggressor set active.
    #[must_use]
    pub fn delay_with(&self) -> f64 {
        match self.mode {
            Mode::Addition => self.delay_after,
            Mode::Elimination => self.delay_before,
        }
    }

    /// The delay *without* the aggressor set active.
    #[must_use]
    pub fn delay_without(&self) -> f64 {
        match self.mode {
            Mode::Addition => self.delay_before,
            Mode::Elimination => self.delay_after,
        }
    }

    /// Delay impact of the set (always non-negative for a useful set).
    #[must_use]
    pub fn delay_impact(&self) -> f64 {
        self.delay_with() - self.delay_without()
    }

    /// Largest irredundant-list width observed during enumeration — the
    /// paper's evidence that dominance pruning keeps the search tractable.
    #[must_use]
    pub fn peak_list_width(&self) -> usize {
        self.peak_list_width
    }

    /// Total candidates generated before pruning.
    #[must_use]
    pub fn generated_candidates(&self) -> usize {
        self.generated_candidates
    }

    /// Wall-clock runtime of the computation.
    #[must_use]
    pub fn runtime(&self) -> Duration {
        self.runtime
    }
}

impl fmt::Display for TopKResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "top-{} {} set {} (delay {:.3} -> {:.3} ps, {:.2?})",
            self.requested_k,
            self.mode.name(),
            self.set,
            self.delay_before,
            self.delay_after,
            self.runtime
        )
    }
}
