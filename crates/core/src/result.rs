//! Results of a top-k analysis.

use std::fmt;
use std::time::Duration;

use dna_netlist::{CouplingId, NetId};

use crate::sched::SchedStats;
use crate::{CouplingSet, Mode};

/// The engine phase a fault was caught in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Timing preparation (STA, converged noise, dominance bounds) —
    /// whole-run scope, cannot be isolated to one victim.
    Prepare,
    /// Per-victim I-list construction — isolated: the victim is
    /// quarantined, the rest of the sweep proceeds.
    Enumeration,
    /// Sink selection / validation of the finished lists — whole-run
    /// scope.
    Selection,
}

impl FaultPhase {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Prepare => "prepare",
            FaultPhase::Enumeration => "enumeration",
            FaultPhase::Selection => "selection",
        }
    }
}

impl fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One quarantined victim: a fault (panic or typed error) the sweep
/// isolated to a single victim's enumeration instead of aborting the run.
///
/// The quarantined victim contributes empty I-lists — downstream
/// consumers treat it as offering no candidates, which keeps every
/// reported set achievable (a sound lower bound) while the rest of the
/// circuit is analyzed normally.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    pub(crate) victim: NetId,
    pub(crate) phase: FaultPhase,
    pub(crate) cause: String,
}

impl Fault {
    pub(crate) fn new(victim: NetId, phase: FaultPhase, cause: String) -> Self {
        Self { victim, phase, cause }
    }

    /// The quarantined victim net.
    #[must_use]
    pub fn victim(&self) -> NetId {
        self.victim
    }

    /// The engine phase the fault was caught in.
    #[must_use]
    pub fn phase(&self) -> FaultPhase {
        self.phase
    }

    /// Human-readable cause: the panic message or the typed error's
    /// display form.
    #[must_use]
    pub fn cause(&self) -> &str {
        &self.cause
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "victim {} [{}]: {}", self.victim.index(), self.phase, self.cause)
    }
}

/// The quarantined victims of one analysis, ordered by victim index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    faults: Vec<Fault>,
}

impl FaultReport {
    pub(crate) fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.victim.index());
        Self { faults }
    }

    /// Whether no victim was quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of quarantined victims.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults, sorted by victim index.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates the faults.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.faults.iter()
    }
}

/// Sweep-level robustness counters: how much of the enumeration was
/// curtailed by budgets or quarantined by faults.
///
/// All zeros means the sweep ran exactly as the unbudgeted, fault-free
/// engine — the bit-identical fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Victims whose candidate generation a budget cut short mid-victim
    /// (their I-lists hold the strongest survivors of what was generated).
    pub truncated_victims: usize,
    /// Victims served empty lists because the global budget or deadline
    /// was already exhausted when they came up.
    pub skipped_victims: usize,
    /// Victims quarantined by faults (see
    /// [`TopKResult::faults`]).
    pub quarantined_victims: usize,
}

impl SweepStats {
    /// Whether any counter is non-zero — the result is then a degraded
    /// (but sound) lower bound, not the exact top-k answer.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.truncated_victims > 0 || self.skipped_victims > 0 || self.quarantined_victims > 0
    }
}

/// Soundness classification of a [`TopKResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Soundness {
    /// The full enumeration ran: the result is the engine's exact answer.
    Exact,
    /// Budgets or quarantines curtailed the enumeration. The reported set
    /// is still *achievable* (its delay impact was really measured or
    /// soundly predicted), so the result is a lower bound on the true
    /// top-k impact — `lower_bound` records that direction explicitly.
    Degraded {
        /// Always true for this engine: truncation only ever drops
        /// candidates, it never fabricates them, so the reported impact
        /// can only under-, never over-state the optimum.
        lower_bound: bool,
    },
}

/// The outcome of one top-k addition- or elimination-set computation.
#[derive(Debug, Clone)]
pub struct TopKResult {
    pub(crate) mode: Mode,
    pub(crate) requested_k: usize,
    pub(crate) set: CouplingSet,
    pub(crate) sink: NetId,
    pub(crate) delay_before: f64,
    pub(crate) delay_after: f64,
    pub(crate) predicted_delay: f64,
    pub(crate) peak_list_width: usize,
    pub(crate) generated_candidates: usize,
    pub(crate) runtime: Duration,
    pub(crate) faults: FaultReport,
    pub(crate) stats: SweepStats,
    pub(crate) sched: SchedStats,
}

impl TopKResult {
    /// Which flavor was computed.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The `k` that was requested. The returned set can be smaller when
    /// the circuit has fewer useful couplings.
    #[must_use]
    pub fn requested_k(&self) -> usize {
        self.requested_k
    }

    /// The chosen coupling set, sorted by id.
    #[must_use]
    pub fn couplings(&self) -> &[CouplingId] {
        self.set.ids()
    }

    /// The chosen set as a [`CouplingSet`].
    #[must_use]
    pub fn set(&self) -> &CouplingSet {
        &self.set
    }

    /// The primary output whose delay the set drives.
    #[must_use]
    pub fn sink(&self) -> NetId {
        self.sink
    }

    /// Circuit delay before applying the set: noiseless delay for
    /// addition, full-noise delay for elimination.
    #[must_use]
    pub fn delay_before(&self) -> f64 {
        self.delay_before
    }

    /// Circuit delay after applying the set, measured by a full iterative
    /// noise analysis (or the predicted value when validation is
    /// disabled): with only the set's couplings for addition, with the
    /// set's couplings removed for elimination.
    #[must_use]
    pub fn delay_after(&self) -> f64 {
        self.delay_after
    }

    /// Circuit delay predicted by envelope superposition at the sink
    /// (before validation).
    #[must_use]
    pub fn predicted_delay(&self) -> f64 {
        self.predicted_delay
    }

    /// Convenience aliases matching the paper's tables: the delay *with*
    /// the aggressor set active.
    #[must_use]
    pub fn delay_with(&self) -> f64 {
        match self.mode {
            Mode::Addition => self.delay_after,
            Mode::Elimination => self.delay_before,
        }
    }

    /// The delay *without* the aggressor set active.
    #[must_use]
    pub fn delay_without(&self) -> f64 {
        match self.mode {
            Mode::Addition => self.delay_before,
            Mode::Elimination => self.delay_after,
        }
    }

    /// Delay impact of the set (always non-negative for a useful set).
    #[must_use]
    pub fn delay_impact(&self) -> f64 {
        self.delay_with() - self.delay_without()
    }

    /// Largest irredundant-list width observed during enumeration — the
    /// paper's evidence that dominance pruning keeps the search tractable.
    #[must_use]
    pub fn peak_list_width(&self) -> usize {
        self.peak_list_width
    }

    /// Total candidates generated before pruning.
    #[must_use]
    pub fn generated_candidates(&self) -> usize {
        self.generated_candidates
    }

    /// Wall-clock runtime of the computation.
    #[must_use]
    pub fn runtime(&self) -> Duration {
        self.runtime
    }

    /// Victims quarantined by per-victim fault isolation (empty when the
    /// sweep ran fault-free).
    #[must_use]
    pub fn faults(&self) -> &FaultReport {
        &self.faults
    }

    /// Budget/quarantine counters of the sweep.
    #[must_use]
    pub fn sweep_stats(&self) -> &SweepStats {
        &self.stats
    }

    /// Work-stealing scheduler counters of the enumeration sweep:
    /// threads, tasks, steals and per-worker load spread. Diagnostic
    /// only — never part of fingerprints, identity contracts or
    /// persisted artifacts (a decoded artifact reports default stats).
    #[must_use]
    pub fn scheduler_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Whether budgets or faults curtailed the enumeration. A degraded
    /// result is still *sound*: the reported set is achievable and its
    /// impact lower-bounds the true top-k impact.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.stats.is_degraded() || !self.faults.is_empty()
    }

    /// [`Soundness`] classification of this result.
    #[must_use]
    pub fn soundness(&self) -> Soundness {
        if self.is_degraded() {
            Soundness::Degraded { lower_bound: true }
        } else {
            Soundness::Exact
        }
    }

    /// FNV-1a digest of everything two runs must agree on bit-for-bit:
    /// the selected coupling ids in order, the sink, the raw `f64` bits
    /// of the before/after/predicted delays, the peak list width and the
    /// generated-candidate count — the same tuple the identity test
    /// suites fingerprint. Wall-clock runtime and scheduler counters are
    /// excluded. Used by the serve layer to let clients bit-compare a
    /// daemon response against a local replay without shipping floats
    /// through decimal formatting.
    #[must_use]
    pub fn identity_fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.couplings().len() as u64);
        for c in self.couplings() {
            eat(c.index() as u64);
        }
        eat(self.sink.index() as u64);
        eat(self.delay_before.to_bits());
        eat(self.delay_after.to_bits());
        eat(self.predicted_delay.to_bits());
        eat(self.peak_list_width as u64);
        eat(self.generated_candidates as u64);
        h
    }
}

impl fmt::Display for TopKResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "top-{} {} set {} (delay {:.3} -> {:.3} ps, {:.2?})",
            self.requested_k,
            self.mode.name(),
            self.set,
            self.delay_before,
            self.delay_after,
            self.runtime
        )?;
        if self.is_degraded() {
            write!(
                f,
                " [degraded lower bound: {} truncated, {} skipped, {} quarantined]",
                self.stats.truncated_victims,
                self.stats.skipped_victims,
                self.stats.quarantined_victims
            )?;
        }
        Ok(())
    }
}
