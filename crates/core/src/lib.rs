//! Top-k aggressor sets in delay noise analysis.
//!
//! The primary contribution of the DAC 2007 paper *"Top-k Aggressors Sets
//! in Delay Noise Analysis"* (Gandikota, Chopra, Blaauw, Sylvester,
//! Becer), reimplemented from scratch:
//!
//! * [`TopKAnalysis::addition_set`] — the k couplings whose delay noise,
//!   added to a noiseless analysis, increases circuit delay the most,
//! * [`TopKAnalysis::elimination_set`] — the k couplings whose removal
//!   from a noisy analysis decreases circuit delay the most,
//!
//! both via implicit enumeration with the paper's two key devices:
//! **pseudo input aggressors** (fanin delay noise abstracted into
//! envelope-shaped atoms, §3.1) and **dominance-pruned irredundant lists**
//! (Theorem 1, §3.2).
//!
//! Baselines for the paper's evaluation are included: the exhaustive
//! [`brute_force`] search (Table 1) and the [`naive`] per-victim
//! top-N-by-capacitance heuristic the introduction argues against.
//!
//! # Example
//!
//! ```
//! use dna_netlist::suite;
//! use dna_topk::{TopKAnalysis, TopKConfig};
//!
//! let circuit = suite::benchmark("i1", 42)?;
//! let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
//!
//! let add = engine.addition_set(5)?;
//! assert_eq!(add.couplings().len(), 5);
//! assert!(add.delay_with() >= add.delay_without());
//!
//! let del = engine.elimination_set(5)?;
//! assert!(del.delay_after() <= del.delay_before() + 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addition;
mod aggressor;
mod batch;
mod bounds;
mod candidate;
mod config;
mod elimination;
mod engine;
mod error;
mod persist;
mod result;
mod sched;
mod session;

pub mod brute;
pub mod dominance;
pub mod faultsim;
pub mod naive;
pub mod serve;

pub use aggressor::CouplingSet;
pub use batch::{BatchOutcome, BatchStats, WhatIfBatch};
pub use bounds::{CleanCertificate, CleanWitness, Corridor, CorridorBound, Damping};
pub use brute::{brute_force, BruteForceConfig, BruteForceOutcome};
pub use candidate::Candidate;
pub use config::TopKConfig;
pub use engine::Mode;
pub use error::{ArtifactError, TopKError};
pub use persist::{
    chain_summary, chain_summary_checked, chain_tip, commit_chain, truncate_chain_file,
    ChainAnchor, ChainFault, ChainRecovery, ChainSummary, CommitOptions, RecordKind, RecordMeta,
    SaveKind, SaveReport, ARTIFACT_VERSION,
};
pub use result::{Fault, FaultPhase, FaultReport, Soundness, SweepStats, TopKResult};
pub use sched::SchedStats;
pub use session::{MaskDelta, WhatIfOutcome, WhatIfSession};

use std::time::Instant;

use dna_netlist::Circuit;
use dna_noise::{CouplingMask, NoiseAnalysis};

use engine::Prepared;

/// Runs `f` inside a panic boundary for an engine phase that cannot be
/// isolated to one victim: an escaping panic is contained and converted
/// into [`TopKError::EnginePanic`] naming the phase.
fn guard<T>(phase: FaultPhase, f: impl FnOnce() -> Result<T, TopKError>) -> Result<T, TopKError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            Err(TopKError::EnginePanic { phase, cause: engine::panic_message(payload.as_ref()) })
        }
    }
}

/// Up-front scan for values the analysis substrate cannot process: a NaN
/// or infinite (or negative) coupling capacitance would otherwise panic
/// deep inside timing arithmetic, where no per-victim boundary can catch
/// it soundly. Rejecting the poisoned circuit with a typed error keeps
/// the engine panic-free on corrupt inputs.
fn validate_circuit_finite(circuit: &Circuit) -> Result<(), TopKError> {
    for id in circuit.coupling_ids() {
        let cap = circuit.coupling(id).cap();
        if !cap.is_finite() || cap < 0.0 {
            return Err(TopKError::CorruptCircuit {
                what: format!(
                    "coupling {} has non-finite or negative capacitance {cap}",
                    id.index()
                ),
            });
        }
    }
    Ok(())
}

/// Cross-round cache of the peeled-elimination loop: the previous
/// round's sweep output plus what that round went on to remove, so the
/// next round can re-sweep only the removed couplings' dirty cones.
/// Valid only for the mask and round budget it was computed under —
/// the loop drops it when the budget shrinks.
struct PeelCache {
    lists: Vec<engine::NetLists>,
    counters: Vec<engine::VictimCounters>,
    faults: Vec<Fault>,
    budget: usize,
    mask: CouplingMask,
    removed: Vec<dna_netlist::CouplingId>,
}

/// Outcome of [`TopKAnalysis::sched_audit`]: a serial replay of the
/// work-stealing sweep compared slot-by-slot against a parallel run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedAudit {
    /// Victims compared (every net of the circuit).
    pub checked_victims: usize,
    /// Net indices whose published I-lists or enumeration counters
    /// differ between the parallel scheduler and the serial replay.
    pub mismatched_slots: Vec<usize>,
    /// Net indices whose curtailment state contradicts their
    /// pre-partitioned budget share (skipped without a zero share, or a
    /// zero share that was not skipped).
    pub share_violations: Vec<usize>,
}

impl SchedAudit {
    /// Whether the parallel sweep matched the serial replay everywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatched_slots.is_empty() && self.share_violations.is_empty()
    }
}

/// The top-k aggressor-set engine.
///
/// Construct once per circuit, then query
/// [`addition_set`](Self::addition_set) and
/// [`elimination_set`](Self::elimination_set) for any `k`. See the crate
/// docs for an end-to-end example.
#[derive(Debug)]
pub struct TopKAnalysis<'c> {
    circuit: &'c Circuit,
    config: TopKConfig,
    noise: NoiseAnalysis<'c>,
}

impl<'c> TopKAnalysis<'c> {
    /// Creates an engine over `circuit`.
    #[must_use]
    pub fn new(circuit: &'c Circuit, config: TopKConfig) -> Self {
        let noise = NoiseAnalysis::new(circuit, config.noise);
        Self { circuit, config, noise }
    }

    /// The analyzed circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &TopKConfig {
        &self.config
    }

    /// Computes the top-k aggressors **addition** set (paper §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn addition_set(&self, k: usize) -> Result<TopKResult, TopKError> {
        self.run(Mode::Addition, k)
    }

    /// Computes the top-k aggressors **elimination** set (paper §3.4).
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn elimination_set(&self, k: usize) -> Result<TopKResult, TopKError> {
        self.run(Mode::Elimination, k)
    }

    /// Computes a top-k elimination set by **peeling** — an extension
    /// beyond the paper: repeatedly find the top-`step` elimination set,
    /// commit it (mask those couplings out), and re-run on the reduced
    /// design until `k` couplings are chosen or further fixes stop
    /// helping.
    ///
    /// Each round re-anchors on a full converged analysis, capturing the
    /// cross-input and cross-output fix interactions the one-pass
    /// algorithm's superposition cannot represent (see the module docs of
    /// the elimination algorithm).
    ///
    /// Rounds after the first run **incrementally**, on the what-if
    /// session substrate: the per-victim lists and counters of the
    /// previous round are cached, and only the mask-aware dirty closure
    /// of the just-peeled couplings' endpoints is re-swept (the peeled
    /// couplings were enabled in the previous round, so the old mask
    /// alone is the `old ∪ new` adjacency predicate). The cache is
    /// dropped when the round budget shrinks (the final `k - chosen <
    /// step` round): cached lists are built per requested cardinality
    /// and counters per budget, so only same-budget rounds may reuse
    /// them. Results are bit-identical to
    /// [`elimination_set_peeled_scratch`](Self::elimination_set_peeled_scratch)
    /// — except under a
    /// [`global_candidate_budget`](TopKConfig::global_candidate_budget),
    /// where incremental rounds deliberately charge only the victims
    /// they actually re-sweep (cached victims cost nothing, as in any
    /// incremental sweep), so a budget that would have been exhausted by
    /// re-enumerating clean victims stretches further.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn elimination_set_peeled(&self, k: usize, step: usize) -> Result<TopKResult, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let step = step.max(1);
        validate_circuit_finite(self.circuit)?;
        let start = Instant::now();
        let mut mask = CouplingMask::all(self.circuit);
        let mut chosen = CouplingSet::new();
        let before = self.noise.run()?;
        let delay_before = before.circuit_delay();
        let mut delay_now = delay_before;
        let mut sink = before.noisy_timing().critical_output();
        let mut predicted = delay_before;
        let mut peak_list_width = 0;
        let mut generated = 0;
        let mut stats = SweepStats::default();
        let mut sched_total = SchedStats::default();
        let mut faults: Vec<Fault> = Vec::new();
        let mut cache: Option<PeelCache> = None;

        while chosen.len() < k {
            let budget = (k - chosen.len()).min(step);
            let prepared = guard(FaultPhase::Prepare, || {
                Prepared::build(
                    self.circuit,
                    self.config,
                    Mode::Elimination,
                    &self.noise,
                    mask.clone(),
                )
            })?;
            let (outcome, lists, counters, round_faults, round_sched) =
                guard(FaultPhase::Selection, || {
                    let (out, merged) = match cache.take() {
                        Some(rc) if rc.budget == budget && !rc.removed.is_empty() => {
                            let mut seeds: Vec<dna_netlist::NetId> =
                                Vec::with_capacity(rc.removed.len() * 2);
                            for &cc in &rc.removed {
                                let ends = self.circuit.coupling(cc);
                                seeds.push(ends.a());
                                seeds.push(ends.b());
                            }
                            // This round only removed couplings, so the
                            // previous round's mask is the `old ∪ new`
                            // adjacency predicate of the dirty closure.
                            let dirty = self
                                .circuit
                                .dirty_closure_filtered(&seeds, |id| rc.mask.is_enabled(id));
                            let out = elimination::sweep(
                                &prepared,
                                budget,
                                Some((&rc.lists, &rc.counters, &dirty)),
                            )?;
                            let mut merged: Vec<Fault> = rc
                                .faults
                                .iter()
                                .filter(|f| !dirty[f.victim().index()])
                                .cloned()
                                .collect();
                            merged.extend(out.faults.iter().cloned());
                            merged.sort_by_key(|f| f.victim().index());
                            (out, merged)
                        }
                        _ => {
                            let out = elimination::sweep(&prepared, budget, None)?;
                            let merged = out.faults.clone();
                            (out, merged)
                        }
                    };
                    let outcome =
                        elimination::select(&prepared, budget, &out.lists, &out.counters)?;
                    Ok((outcome, out.lists, out.counters, merged, out.sched))
                })?;
            sched_total.merge(&round_sched);
            cache = Some(PeelCache {
                lists,
                counters,
                faults: round_faults.clone(),
                budget,
                mask: mask.clone(),
                removed: Vec::new(),
            });
            peak_list_width = peak_list_width.max(outcome.totals.peak_list_width);
            generated += outcome.totals.generated;
            // Rounds re-sweep the same victims: count each curtailment at
            // its per-round worst instead of summing duplicates, and keep
            // one fault per victim.
            stats.truncated_victims = stats.truncated_victims.max(outcome.totals.truncated_victims);
            stats.skipped_victims = stats.skipped_victims.max(outcome.totals.skipped_victims);
            for f in round_faults {
                if !faults.iter().any(|g| g.victim() == f.victim()) {
                    faults.push(f);
                }
            }

            // Measure each option under the current mask; commit the best.
            let mut best: Option<(f64, f64, &CouplingSet, dna_netlist::NetId)> = None;
            for opt in &outcome.options {
                if opt.set.is_empty() {
                    continue;
                }
                let trial = mask.clone().without(opt.set.ids());
                let measured = self.noise.run_with_mask(&trial)?.circuit_delay();
                if best.as_ref().is_none_or(|(m, ..)| measured < *m) {
                    best = Some((measured, opt.predicted_delay, &opt.set, opt.sink));
                }
            }
            let Some((measured, pred, set, opt_sink)) = best else { break };
            if measured >= delay_now - self.config.noise.tolerance {
                break; // no further improvement available
            }
            if let Some(rc) = cache.as_mut() {
                rc.removed = set.ids().to_vec();
            }
            mask = mask.without(set.ids());
            chosen = chosen.union(set);
            delay_now = measured;
            predicted = pred;
            sink = opt_sink;
        }

        stats.quarantined_victims = faults.len();
        Ok(TopKResult {
            mode: Mode::Elimination,
            requested_k: k,
            set: chosen,
            sink,
            delay_before,
            delay_after: delay_now,
            predicted_delay: predicted,
            peak_list_width,
            generated_candidates: generated,
            runtime: start.elapsed(),
            faults: FaultReport::new(faults),
            stats,
            sched: sched_total,
        })
    }

    /// The from-scratch reference implementation of
    /// [`elimination_set_peeled`](Self::elimination_set_peeled): every
    /// peel round re-enumerates **all** victims instead of only the
    /// peeled couplings' dirty cones. Costs roughly `k / step` full
    /// one-pass runs; exists for the identity tests and benchmarks that
    /// certify the incremental loop, and as the semantic baseline when a
    /// [`global_candidate_budget`](TopKConfig::global_candidate_budget)
    /// should be charged for clean victims too.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn elimination_set_peeled_scratch(
        &self,
        k: usize,
        step: usize,
    ) -> Result<TopKResult, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let step = step.max(1);
        validate_circuit_finite(self.circuit)?;
        let start = Instant::now();
        let mut mask = CouplingMask::all(self.circuit);
        let mut chosen = CouplingSet::new();
        let before = self.noise.run()?;
        let delay_before = before.circuit_delay();
        let mut delay_now = delay_before;
        let mut sink = before.noisy_timing().critical_output();
        let mut predicted = delay_before;
        let mut peak_list_width = 0;
        let mut generated = 0;
        let mut stats = SweepStats::default();
        let mut sched_total = SchedStats::default();
        let mut faults: Vec<Fault> = Vec::new();

        while chosen.len() < k {
            let budget = (k - chosen.len()).min(step);
            let prepared = guard(FaultPhase::Prepare, || {
                Prepared::build(
                    self.circuit,
                    self.config,
                    Mode::Elimination,
                    &self.noise,
                    mask.clone(),
                )
            })?;
            let (outcome, round_faults, round_sched) =
                guard(FaultPhase::Selection, || elimination::run(&prepared, budget))?;
            sched_total.merge(&round_sched);
            peak_list_width = peak_list_width.max(outcome.totals.peak_list_width);
            generated += outcome.totals.generated;
            stats.truncated_victims = stats.truncated_victims.max(outcome.totals.truncated_victims);
            stats.skipped_victims = stats.skipped_victims.max(outcome.totals.skipped_victims);
            for f in round_faults {
                if !faults.iter().any(|g| g.victim() == f.victim()) {
                    faults.push(f);
                }
            }

            let mut best: Option<(f64, f64, &CouplingSet, dna_netlist::NetId)> = None;
            for opt in &outcome.options {
                if opt.set.is_empty() {
                    continue;
                }
                let trial = mask.clone().without(opt.set.ids());
                let measured = self.noise.run_with_mask(&trial)?.circuit_delay();
                if best.as_ref().is_none_or(|(m, ..)| measured < *m) {
                    best = Some((measured, opt.predicted_delay, &opt.set, opt.sink));
                }
            }
            let Some((measured, pred, set, opt_sink)) = best else { break };
            if measured >= delay_now - self.config.noise.tolerance {
                break;
            }
            mask = mask.without(set.ids());
            chosen = chosen.union(set);
            delay_now = measured;
            predicted = pred;
            sink = opt_sink;
        }

        stats.quarantined_victims = faults.len();
        Ok(TopKResult {
            mode: Mode::Elimination,
            requested_k: k,
            set: chosen,
            sink,
            delay_before,
            delay_after: delay_now,
            predicted_delay: predicted,
            peak_list_width,
            generated_candidates: generated,
            runtime: start.elapsed(),
            faults: FaultReport::new(faults),
            stats,
            sched: sched_total,
        })
    }

    /// Computes a top-k set over only the couplings enabled in `mask` —
    /// the from-scratch reference for what-if sessions: after applying a
    /// [`MaskDelta`], [`WhatIfSession::apply`] produces a result
    /// bit-identical to calling this with the session's current mask.
    ///
    /// With the full mask this is exactly
    /// [`addition_set`](Self::addition_set) /
    /// [`elimination_set`](Self::elimination_set).
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn run_with_mask(
        &self,
        mode: Mode,
        k: usize,
        mask: &CouplingMask,
    ) -> Result<TopKResult, TopKError> {
        self.run_seeded(mode, k, mask, None).map(|(result, ..)| result)
    }

    /// The full run pipeline with the sweep stage split out, so a what-if
    /// session can both harvest the per-victim lists/counters (and fault
    /// quarantines) for its cache and feed them back (with dirty flags) on
    /// the next apply.
    ///
    /// Timing preparation and sink selection run inside phase-level panic
    /// boundaries (they cannot be isolated to one victim); the enumeration
    /// sweep carries its own per-victim boundary.
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_seeded(
        &self,
        mode: Mode,
        k: usize,
        mask: &CouplingMask,
        seeds: Option<(&[engine::NetLists], &[engine::VictimCounters], &[Fault], &[bool])>,
    ) -> Result<
        (TopKResult, Vec<engine::NetLists>, Vec<engine::VictimCounters>, Vec<Fault>),
        TopKError,
    > {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let start = Instant::now();
        let prepared = self.prepare(mode, mask)?;
        self.run_prepared(&prepared, k, seeds, start)
    }

    /// The preparation front half of a run: input validation plus the
    /// guarded [`Prepared::build`]. Split out so the what-if paths can
    /// interpose the corridor prover (which reads the prepared state)
    /// between preparation and the sweep.
    pub(crate) fn prepare(
        &self,
        mode: Mode,
        mask: &CouplingMask,
    ) -> Result<Prepared<'c>, TopKError> {
        validate_circuit_finite(self.circuit)?;
        let start = Instant::now();
        let prepared = guard(FaultPhase::Prepare, || {
            Prepared::build(self.circuit, self.config, mode, &self.noise, mask.clone())
        })?;
        if std::env::var_os("DNA_PROFILE").is_some() {
            eprintln!("[profile] prepare: {:.2?}", start.elapsed());
        }
        Ok(prepared)
    }

    /// The sweep/select back half of a run over an already-prepared
    /// state. `start` anchors the reported runtime (callers pass the
    /// instant the whole run began).
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_prepared(
        &self,
        prepared: &Prepared<'_>,
        k: usize,
        seeds: Option<(&[engine::NetLists], &[engine::VictimCounters], &[Fault], &[bool])>,
        start: Instant,
    ) -> Result<
        (TopKResult, Vec<engine::NetLists>, Vec<engine::VictimCounters>, Vec<Fault>),
        TopKError,
    > {
        let mode = prepared.mode;
        let enum_start = Instant::now();
        let sweep_seeds = seeds.map(|(lists, counters, _, dirty)| (lists, counters, dirty));
        let out = match mode {
            Mode::Addition => addition::sweep(prepared, k, sweep_seeds),
            Mode::Elimination => elimination::sweep(prepared, k, sweep_seeds),
        }?;
        // Merge quarantines: clean victims keep their cached faults (their
        // cached empty lists came from those quarantines), dirty victims
        // report this sweep's fresh ones.
        let mut faults: Vec<Fault> = Vec::new();
        if let Some((_, _, seed_faults, dirty)) = seeds {
            faults.extend(seed_faults.iter().filter(|f| !dirty[f.victim().index()]).cloned());
        }
        faults.extend(out.faults);
        faults.sort_by_key(|f| f.victim().index());
        let result = guard(FaultPhase::Selection, || {
            let outcome = match mode {
                Mode::Addition => addition::select(prepared, k, &out.lists, &out.counters),
                Mode::Elimination => elimination::select(prepared, k, &out.lists, &out.counters),
            }?;
            if std::env::var_os("DNA_PROFILE").is_some() {
                eprintln!("[profile] enumerate: {:.2?}", enum_start.elapsed());
            }
            self.finish(mode, k, &prepared.mask, prepared, outcome, &faults, out.sched, start)
        })?;
        Ok((result, out.lists, out.counters, faults))
    }

    /// Independently re-derives the corridor prover's conclusion for a
    /// mask transition `old_mask → new_mask`: the refined dirty set and
    /// one [`CleanCertificate`] per proven-clean victim, computed from
    /// nothing but the circuit, the mode and the two masks. The deep lint
    /// pass compares a session's claims against this witness, and the
    /// fault-injection hooks are deliberately **not** consulted here — a
    /// corrupted session cannot corrupt its own audit.
    ///
    /// # Errors
    ///
    /// Propagates preparation errors from the substrate analyses.
    pub fn derive_clean_witness(
        &self,
        mode: Mode,
        old_mask: &CouplingMask,
        new_mask: &CouplingMask,
    ) -> Result<CleanWitness, TopKError> {
        let old_prepared = self.prepare(mode, old_mask)?;
        let old_state = bounds::SemanticState::capture(&old_prepared);
        drop(old_prepared);
        let new_prepared = self.prepare(mode, new_mask)?;
        let (_, seeds) = session::changed_and_seeds(self.circuit, old_mask, new_mask);
        let structural = self.circuit.dirty_closure_filtered(&seeds, |cc| {
            old_mask.is_enabled(cc) || new_mask.is_enabled(cc)
        });
        let (refined, _) = bounds::refine(&new_prepared, &old_state, &structural, None);
        Ok(CleanWitness::new(refined.dirty, refined.certificates))
    }

    /// Replays a full sweep on the serial reference path and compares it
    /// slot-by-slot against a parallel work-stealing run: every victim's
    /// published I-lists and counters must be bit-identical, and every
    /// victim's curtailment state must agree with its pre-partitioned
    /// budget share. This is the semantic ground truth behind lint rule
    /// L060 (`lint --deep`, `whatif --audit`): the serial path *is* the
    /// determinism argument's reference schedule, so any divergence means
    /// the scheduler published a wrong slot or moved a budget share.
    ///
    /// The parallel run uses the configured thread count, forced to at
    /// least 2 so the deques and steal path are genuinely exercised even
    /// on a single-core host.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn sched_audit(&self, mode: Mode, k: usize) -> Result<SchedAudit, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let mask = CouplingMask::all(self.circuit);
        let run_at = |threads: usize| -> Result<
            (Vec<engine::NetLists>, Vec<engine::VictimCounters>),
            TopKError,
        > {
            let mut config = self.config;
            config.threads = threads;
            let analysis = TopKAnalysis::new(self.circuit, config);
            let prepared = analysis.prepare(mode, &mask)?;
            let out = match mode {
                Mode::Addition => addition::sweep(&prepared, k, None),
                Mode::Elimination => elimination::sweep(&prepared, k, None),
            }?;
            Ok((out.lists, out.counters))
        };
        let (par_lists, par_counters) = run_at(self.config.effective_threads().max(2))?;
        let (ser_lists, ser_counters) = run_at(1)?;

        let n = self.circuit.num_nets();
        // The audit re-derives the shares itself: a full sweep's work set
        // is every net, ranked by index.
        let partition = sched::BudgetPartition::new(&self.config, n);
        let mut audit = SchedAudit { checked_victims: n, ..SchedAudit::default() };
        for i in 0..n {
            if *par_lists[i] != *ser_lists[i] || par_counters[i] != ser_counters[i] {
                audit.mismatched_slots.push(i);
            }
            // Share consistency: a victim is Skipped exactly when its
            // pre-partitioned share says so (modulo deadlines, the one
            // budget that is wall-clock dependent by definition).
            if self.config.deadline.is_none() {
                let (skip, _) = partition.share(i);
                let violates = [&par_counters[i], &ser_counters[i]]
                    .iter()
                    .any(|c| (c.curtailment == engine::Curtailment::Skipped) != skip);
                if violates {
                    audit.share_violations.push(i);
                }
            }
        }
        Ok(audit)
    }

    fn run(&self, mode: Mode, k: usize) -> Result<TopKResult, TopKError> {
        self.run_with_mask(mode, k, &CouplingMask::all(self.circuit))
    }

    /// Shared tail of every top-k run: pick the measured (or predicted)
    /// winner among the enumeration's options and assemble the result.
    /// Validation masks are anchored at `base_mask` — the couplings the
    /// run was allowed to see — so restricted-mask runs (and incremental
    /// sessions re-running under a delta'd mask) measure options in the
    /// same world the enumeration saw.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        mode: Mode,
        k: usize,
        base_mask: &CouplingMask,
        prepared: &Prepared<'_>,
        outcome: addition::EnumerationOutcome,
        faults: &[Fault],
        sched: SchedStats,
        start: Instant,
    ) -> Result<TopKResult, TopKError> {
        let delay_before = match mode {
            Mode::Addition => prepared.base.circuit_delay(),
            Mode::Elimination => {
                let Some(noisy) = prepared.noisy.as_ref() else {
                    return Err(TopKError::Internal {
                        what: "elimination finished without a converged noisy report".into(),
                    });
                };
                noisy.circuit_delay()
            }
        };

        // Measure the best predicted options with full iterative noise
        // analyses and keep the winner by *measured* delay; without
        // validation, trust the single best prediction.
        let mut options = outcome.options;
        debug_assert!(!options.is_empty(), "enumeration always yields an option");
        let (choice, delay_after) = if self.config.validate {
            let mut best: Option<(usize, f64)> = None;
            for (idx, opt) in options.iter().enumerate() {
                let mask = match mode {
                    Mode::Addition => CouplingMask::none(self.circuit).with(opt.set.ids()),
                    Mode::Elimination => base_mask.clone().without(opt.set.ids()),
                };
                let measured = self.noise.run_with_mask(&mask)?.circuit_delay();
                let better = match (&best, mode) {
                    (None, _) => true,
                    (Some((_, d)), Mode::Addition) => measured > *d,
                    (Some((_, d)), Mode::Elimination) => measured < *d,
                };
                if better {
                    best = Some((idx, measured));
                }
            }
            let Some((idx, measured)) = best else {
                return Err(TopKError::Internal {
                    what: "validation pool was empty despite non-empty options".into(),
                });
            };
            (options.swap_remove(idx), measured)
        } else {
            let first = options.swap_remove(0);
            let predicted = first.predicted_delay;
            (first, predicted)
        };

        let stats = SweepStats {
            truncated_victims: outcome.totals.truncated_victims,
            skipped_victims: outcome.totals.skipped_victims,
            quarantined_victims: faults.len(),
        };
        Ok(TopKResult {
            mode,
            requested_k: k,
            set: choice.set,
            sink: choice.sink,
            delay_before,
            delay_after,
            predicted_delay: choice.predicted_delay,
            peak_list_width: outcome.totals.peak_list_width,
            generated_candidates: outcome.totals.generated,
            runtime: start.elapsed(),
            faults: FaultReport::new(faults.to_vec()),
            stats,
            sched,
        })
    }
}
