//! Incremental what-if re-analysis sessions.
//!
//! The elimination set exists to drive a *fix loop*: a designer shields
//! or spaces the reported top-k couplings, then must re-verify timing.
//! Re-running the whole analysis from scratch wastes almost all of that
//! work — only the fanout cones of the fixed couplings can change. A
//! [`WhatIfSession`] makes re-analysis proportional to the affected cone:
//!
//! * [`WhatIfSession::start`] runs the full analysis once and caches the
//!   per-victim irredundant lists (cheap `Arc` handles, no deep copies)
//!   together with the per-victim enumeration counters;
//! * [`WhatIfSession::apply`] takes a [`MaskDelta`] ("remove these
//!   couplings", "add those back"), seeds the dirty set with the
//!   endpoints of every coupling whose enable state actually flips,
//!   closes it over gate-fanout and **mask-aware** coupling-adjacency
//!   edges (`Circuit::dirty_closure_filtered` — a coupling disabled in
//!   both the old and new mask injects no noise in either world, so its
//!   adjacency edge cannot carry a difference and is dropped), and
//!   re-runs the work-stealing sweep over only the dirty victims — every
//!   clean victim's lists and counters are served from the cache. The
//!   outcome also reports what the mask-oblivious closure would have
//!   been, so the adjacency filtering's savings are measurable per apply.
//!
//! For evaluating many *independent* deltas against one session snapshot,
//! see [`WhatIfBatch`](crate::WhatIfBatch) — it shares closure work across
//! scenarios and runs them through one thread pool.
//!
//! # Identity argument
//!
//! The per-victim enumeration is a pure function of (a) the victim's own
//! primaries under the mask, (b) per-net timing/bound state from
//! `Prepared`, and (c) the irredundant lists of its strict fanin. A net
//! whose inputs to that function can change under the new mask is, by
//! construction of the dirty closure, flagged dirty: a toggled coupling
//! dirties both endpoints, dirtiness follows gate fanout (arrival
//! changes propagate downstream) and coupling adjacency (a shifted
//! aggressor window changes its victims' envelopes — and its wideners'
//! rankings, which the adjacency edge also covers because a widener
//! change implies a dirty net in the aggressor's fanin cone, whose
//! fanout reaches the aggressor). Restricting adjacency to couplings
//! enabled in the old *or* new mask is sound: a coupling disabled in both
//! worlds contributes no primary, no widener and no noise in either, so
//! no per-victim input can differ through it, and flipped couplings'
//! endpoints are seeded directly. Clean victims therefore see inputs
//! bit-identical to a from-scratch run, so their cached lists *are* the
//! from-scratch lists, dirty victims read bit-identical fanin lists, and
//! the merged sweep output — and everything derived from it — is
//! bit-identical to [`TopKAnalysis::run_with_mask`] under the session's
//! current mask, at any [`threads`](crate::TopKConfig::threads) setting.

use std::time::Instant;

use dna_netlist::{CouplingId, NetId};
use dna_noise::CouplingMask;

use crate::bounds::{self, CleanCertificate, SemanticState};
use crate::engine::{NetLists, VictimCounters};
use crate::persist::{self, ChainAnchor};
use crate::result::{Fault, FaultReport};
use crate::{faultsim, Damping, Mode, TopKAnalysis, TopKError, TopKResult};

/// How many unsaved applies a session buffers as replayable deltas before
/// giving up on delta encoding for the next save. Each buffered delta
/// holds `Arc` handles to the dirty victims' lists (cheap to keep, but
/// they pin replaced lists alive), so a session applying thousands of
/// deltas without ever saving must not grow without bound: past this cap
/// the buffer is dropped and the next save writes a full checkpoint.
const MAX_PENDING_DELTAS: usize = 256;

/// One applied-but-unsaved generation, buffered so the next save can
/// append a delta record instead of rewriting the full artifact. Holds
/// exactly what chain replay needs to patch a session from generation
/// `g-1` to `g`: the flipped couplings, the post-apply state of the dirty
/// victims (everyone else is untouched by construction of the dirty
/// closure), and the full (small) result/fault state.
#[derive(Debug, Clone)]
pub(crate) struct PendingDelta {
    /// The generation this delta produces when replayed.
    pub generation: u64,
    /// Couplings this apply disabled (state actually flipped).
    pub removed: Vec<CouplingId>,
    /// Couplings this apply enabled (state actually flipped).
    pub added: Vec<CouplingId>,
    /// FNV-1a digest of the full post-apply mask, so replay can prove it
    /// patched its way to the same world (lint rule L072).
    pub mask_digest: u64,
    /// The post-apply result (small: the set, delays, counters).
    pub result: TopKResult,
    /// The post-apply session fault quarantines.
    pub faults: Vec<Fault>,
    /// Post-apply `(victim index, counters, lists)` of every victim the
    /// sweep recomputed — `Arc` handles, no envelope deep copies.
    pub dirty: Vec<(u32, VictimCounters, NetLists)>,
}

/// A change to the coupling set of a running [`WhatIfSession`].
///
/// Removals are applied before additions; a coupling named on both sides
/// ends up **enabled**. Toggles that do not change a coupling's current
/// state (removing an already-disabled coupling, adding an enabled one)
/// are no-ops and do not dirty anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaskDelta {
    removed: Vec<CouplingId>,
    added: Vec<CouplingId>,
}

impl MaskDelta {
    /// Delta disabling `ids` — the "apply the elimination set" direction
    /// of the fix loop.
    #[must_use]
    pub fn remove(ids: &[CouplingId]) -> Self {
        Self { removed: ids.to_vec(), added: Vec::new() }
    }

    /// Delta re-enabling `ids` — the "undo a fix" direction.
    #[must_use]
    pub fn add(ids: &[CouplingId]) -> Self {
        Self { removed: Vec::new(), added: ids.to_vec() }
    }

    /// Delta combining removals and additions (removals apply first).
    #[must_use]
    pub fn new(removed: &[CouplingId], added: &[CouplingId]) -> Self {
        Self { removed: removed.to_vec(), added: added.to_vec() }
    }

    /// The couplings this delta disables.
    #[must_use]
    pub fn removed(&self) -> &[CouplingId] {
        &self.removed
    }

    /// The couplings this delta enables.
    #[must_use]
    pub fn added(&self) -> &[CouplingId] {
        &self.added
    }

    /// Whether the delta names no couplings at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// The result of one incremental [`WhatIfSession::apply`] step, with the
/// sweep counters that certify how much work the cache saved.
#[derive(Debug, Clone)]
pub struct WhatIfOutcome {
    result: TopKResult,
    changed: Vec<CouplingId>,
    dirty: Vec<bool>,
    recomputed_victims: usize,
    structural_dirty_victims: usize,
    unmasked_dirty_victims: usize,
    certificates: Vec<CleanCertificate>,
}

impl WhatIfOutcome {
    /// The re-analysis result — bit-identical to a from-scratch
    /// [`TopKAnalysis::run_with_mask`] under the session's new mask.
    #[must_use]
    pub fn result(&self) -> &TopKResult {
        &self.result
    }

    /// Couplings whose enable state actually flipped under the delta.
    #[must_use]
    pub fn changed_couplings(&self) -> &[CouplingId] {
        &self.changed
    }

    /// Per-net dirty flags the sweep ran under: `dirty_flags()[n]` is
    /// true iff net `n`'s irredundant lists were recomputed. Feed this to
    /// `dna_lint::lint_dirty_closure` to audit cache coherence.
    #[must_use]
    pub fn dirty_flags(&self) -> &[bool] {
        &self.dirty
    }

    /// How many victims the sweep recomputed (the dirty-cone size after
    /// any corridor-prover damping).
    #[must_use]
    pub fn recomputed_victims(&self) -> usize {
        self.recomputed_victims
    }

    /// How many victims the *structural* (mask-aware reachability) dirty
    /// closure flagged, before corridor-prover damping. Always at least
    /// [`recomputed_victims`](Self::recomputed_victims).
    #[must_use]
    pub fn structural_dirty_victims(&self) -> usize {
        self.structural_dirty_victims
    }

    /// How many structurally dirty victims the corridor prover certified
    /// clean on this apply (and the sweep therefore served from cache) —
    /// one [`CleanCertificate`] each in
    /// [`certificates`](Self::certificates). Zero under
    /// [`Damping::Structural`].
    #[must_use]
    pub fn proven_clean_victims(&self) -> usize {
        self.structural_dirty_victims - self.recomputed_victims
    }

    /// How many victims a mask-oblivious closure (adjacency through every
    /// coupling, enabled or not) would have re-swept. The gap to
    /// [`structural_dirty_victims`](Self::structural_dirty_victims) is
    /// what mask-aware adjacency saved on this apply; it is never
    /// negative.
    #[must_use]
    pub fn unmasked_dirty_victims(&self) -> usize {
        self.unmasked_dirty_victims
    }

    /// The machine-checkable certificates justifying every structurally
    /// dirty victim the corridor prover skipped, sorted by victim index.
    /// Empty under [`Damping::Structural`].
    #[must_use]
    pub fn certificates(&self) -> &[CleanCertificate] {
        &self.certificates
    }

    /// Total victims in the circuit.
    #[must_use]
    pub fn total_victims(&self) -> usize {
        self.dirty.len()
    }

    /// How many victims were served from the session cache.
    #[must_use]
    pub fn cached_victims(&self) -> usize {
        self.total_victims() - self.recomputed_victims
    }

    /// Victims quarantined by per-victim fault isolation in this step
    /// (including quarantines inherited from the cached clean victims).
    #[must_use]
    pub fn faults(&self) -> &FaultReport {
        self.result.faults()
    }

    /// Assembles an outcome from the batch engine's parts (same shape
    /// `apply` produces).
    pub(crate) fn assemble(
        result: TopKResult,
        changed: Vec<CouplingId>,
        dirty: Vec<bool>,
        structural_dirty_victims: usize,
        unmasked_dirty_victims: usize,
        certificates: Vec<CleanCertificate>,
    ) -> Self {
        let recomputed_victims = dirty.iter().filter(|&&d| d).count();
        Self {
            result,
            changed,
            dirty,
            recomputed_victims,
            structural_dirty_victims,
            unmasked_dirty_victims,
            certificates,
        }
    }
}

/// The couplings whose enable state differs between `old` and `new`, with
/// both endpoints of each as dirty seeds — the shared front end of
/// [`WhatIfSession::apply`] and the batch engine. Iterates couplings in id
/// order, so `changed` comes back sorted.
pub(crate) fn changed_and_seeds(
    circuit: &dna_netlist::Circuit,
    old: &CouplingMask,
    new: &CouplingMask,
) -> (Vec<CouplingId>, Vec<NetId>) {
    let mut changed: Vec<CouplingId> = Vec::new();
    let mut seeds: Vec<NetId> = Vec::new();
    for id in circuit.coupling_ids() {
        if new.is_enabled(id) != old.is_enabled(id) {
            let cc = circuit.coupling(id);
            changed.push(id);
            seeds.push(cc.a());
            seeds.push(cc.b());
        }
    }
    (changed, seeds)
}

/// An incremental what-if re-analysis session over one
/// [`TopKAnalysis`].
///
/// The caching/incremental substrate for ECO-style fix loops: construct
/// with [`start`](Self::start) (one full run), then [`apply`](Self::apply)
/// coupling-set deltas; each apply re-sweeps only the dirty fanout cone
/// of the touched couplings. See the module docs for the identity
/// argument.
///
/// # Example
///
/// ```
/// use dna_netlist::suite;
/// use dna_topk::{MaskDelta, Mode, TopKAnalysis, TopKConfig, WhatIfSession};
///
/// let circuit = suite::benchmark("i1", 42)?;
/// let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
/// let mut session = WhatIfSession::start(&engine, Mode::Elimination, 3)?;
/// let fix = session.result().set().clone();
///
/// // What if we shield the reported top-3 couplings?
/// let outcome = session.apply(&MaskDelta::remove(fix.ids()))?;
/// assert!(outcome.result().delay_before() <= session.result().delay_before());
/// assert!(outcome.recomputed_victims() <= outcome.total_victims());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WhatIfSession<'a, 'c> {
    // Fields are crate-visible for the artifact codec (`persist`), which
    // snapshots and restores the session's cached state.
    pub(crate) analysis: &'a TopKAnalysis<'c>,
    pub(crate) mode: Mode,
    pub(crate) k: usize,
    pub(crate) mask: CouplingMask,
    pub(crate) lists: Vec<NetLists>,
    pub(crate) counters: Vec<VictimCounters>,
    pub(crate) faults: Vec<Fault>,
    pub(crate) result: TopKResult,
    /// The corridor prover's fingerprint of the current world (per-net
    /// digests + shift bounds), kept when
    /// [`damping`](crate::TopKConfig::damping) is [`Damping::Semantic`].
    /// `None` after an artifact resume (digests are not persisted): the
    /// next apply falls back to the structural closure and re-captures.
    pub(crate) semantic: Option<SemanticState>,
    /// The generation this session's state corresponds to: 0 after a
    /// fresh [`start`](Self::start), the chain tip after a resume, +1 per
    /// effective [`apply`](Self::apply) (one that flips at least one
    /// coupling — a no-op apply changes no state and records nothing).
    pub(crate) generation: u64,
    /// Applied-but-unsaved generations, oldest first, each replayable as
    /// a delta record. Cleared by a successful save; dropped (with the
    /// anchor) past [`MAX_PENDING_DELTAS`].
    pub(crate) pending: Vec<PendingDelta>,
    /// Tip of the on-disk chain this session's *saved* prefix
    /// (generations `..= generation - pending.len()`) is known to equal.
    /// `None` for fresh sessions: the next save must write a checkpoint.
    /// With an anchor, a save may append `pending` as delta records to a
    /// file whose tip still matches it.
    pub(crate) anchor: Option<ChainAnchor>,
}

impl<'a, 'c> WhatIfSession<'a, 'c> {
    /// Runs the full analysis over every coupling and caches its
    /// per-victim state for later incremental re-analysis.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn start(analysis: &'a TopKAnalysis<'c>, mode: Mode, k: usize) -> Result<Self, TopKError> {
        Self::start_with_mask(analysis, mode, k, CouplingMask::all(analysis.circuit()))
    }

    /// Like [`start`](Self::start), but anchored at a restricted mask —
    /// e.g. to resume a fix loop where some couplings are already
    /// shielded, or to exercise the `add` direction of a delta.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::ZeroK`] for `k == 0` and propagates timing
    /// errors from the substrate analyses.
    pub fn start_with_mask(
        analysis: &'a TopKAnalysis<'c>,
        mode: Mode,
        k: usize,
        mask: CouplingMask,
    ) -> Result<Self, TopKError> {
        if k == 0 {
            return Err(TopKError::ZeroK);
        }
        let start = Instant::now();
        let prepared = analysis.prepare(mode, &mask)?;
        let semantic = (analysis.config().damping == Damping::Semantic)
            .then(|| SemanticState::capture(&prepared));
        let (result, lists, counters, faults) = analysis.run_prepared(&prepared, k, None, start)?;
        Ok(Self {
            analysis,
            mode,
            k,
            mask,
            lists,
            counters,
            faults,
            result,
            semantic,
            generation: 0,
            pending: Vec::new(),
            anchor: None,
        })
    }

    /// An independent copy of this session for speculative exploration:
    /// the fork shares the underlying engine and the cached per-victim
    /// lists (`Arc` handles — O(nets) pointer copies, no envelope deep
    /// copies), and applying deltas to it leaves this session untouched.
    /// The batch engine's contract is stated in terms of `fork`: each
    /// scenario's outcome equals `fork().apply(delta)`.
    #[must_use]
    pub fn fork(&self) -> Self {
        Self {
            analysis: self.analysis,
            mode: self.mode,
            k: self.k,
            mask: self.mask.clone(),
            lists: self.lists.clone(),
            counters: self.counters.clone(),
            faults: self.faults.clone(),
            result: self.result.clone(),
            semantic: self.semantic.clone(),
            generation: self.generation,
            pending: self.pending.clone(),
            anchor: self.anchor,
        }
    }

    /// The generation this session's state corresponds to: 0 after a
    /// fresh [`start`](Self::start), the chain tip after a resume, and +1
    /// for every [`apply`](Self::apply) that flips at least one coupling.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many applied generations are buffered but not yet saved — the
    /// number of delta records the next
    /// [`commit_chain`](crate::commit_chain) would append (0 means the
    /// next save is either a no-op or a checkpoint).
    #[must_use]
    pub fn pending_deltas(&self) -> usize {
        self.pending.len()
    }

    /// The tip of the chain file this session's saved state is known to
    /// match, or `None` when the session was started fresh (or buffered
    /// past the delta cap) and the next save must write a checkpoint.
    #[must_use]
    pub fn chain_anchor(&self) -> Option<ChainAnchor> {
        self.anchor
    }

    /// The engine mode this session analyzes.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The `k` every run of this session requests.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The couplings currently enabled in this session.
    #[must_use]
    pub fn mask(&self) -> &CouplingMask {
        &self.mask
    }

    /// The most recent analysis result (from [`start`](Self::start) or
    /// the last [`apply`](Self::apply)).
    #[must_use]
    pub fn result(&self) -> &TopKResult {
        &self.result
    }

    /// Applies a coupling-set delta and incrementally re-analyzes: only
    /// victims in the dirty closure of the flipped couplings' endpoints
    /// are re-swept; everyone else is served from the session cache. The
    /// session then adopts the new mask and caches, so deltas compose
    /// across calls.
    ///
    /// An empty (or fully no-op) delta recomputes nothing in the sweep
    /// and returns a result bit-identical to [`result`](Self::result).
    ///
    /// # Errors
    ///
    /// Propagates timing errors from the substrate analyses. The session
    /// state is unchanged on error.
    pub fn apply(&mut self, delta: &MaskDelta) -> Result<WhatIfOutcome, TopKError> {
        let start = Instant::now();
        let circuit = self.analysis.circuit();
        let new_mask = self.mask.clone().without(delta.removed()).with(delta.added());

        // Seed the dirty set with both endpoints of every coupling whose
        // enable state actually flips — a no-op toggle changes nothing a
        // victim's enumeration can observe.
        let (changed, seeds) = changed_and_seeds(circuit, &self.mask, &new_mask);
        // Mask-aware closure: adjacency propagates only through couplings
        // enabled in the old or new world (see the module docs for the
        // soundness argument). The mask-oblivious closure is also counted
        // so the filtering's savings stay measurable.
        let structural = circuit.dirty_closure_filtered(&seeds, |cc| {
            self.mask.is_enabled(cc) || new_mask.is_enabled(cc)
        });
        let structural_dirty_victims = structural.iter().filter(|&&d| d).count();
        let unmasked_dirty_victims = circuit.dirty_closure(&seeds).iter().filter(|&&d| d).count();

        let prepared = self.analysis.prepare(self.mode, &new_mask)?;

        // Corridor prover: when this session carries a semantic
        // fingerprint of its old world, refine the structural closure to
        // only the victims whose cleanliness cannot be certified. A
        // session without a fingerprint (structural damping, or the first
        // apply after an artifact resume) sweeps the structural closure
        // and — under semantic damping — captures a fingerprint so the
        // next apply can damp.
        let (dirty, certificates, semantic) = match &self.semantic {
            Some(old) => {
                let (refined, state) =
                    bounds::refine(&prepared, old, &structural, faultsim::forced_clean_victim());
                (refined.dirty, refined.certificates, Some(state))
            }
            None => {
                let state = (self.analysis.config().damping == Damping::Semantic)
                    .then(|| SemanticState::capture(&prepared));
                (structural, Vec::new(), state)
            }
        };
        let recomputed_victims = dirty.iter().filter(|&&d| d).count();

        let (result, lists, counters, faults) = self.analysis.run_prepared(
            &prepared,
            self.k,
            Some((&self.lists, &self.counters, &self.faults, &dirty)),
            start,
        )?;

        self.mask = new_mask;
        let old_lists = std::mem::replace(&mut self.lists, lists);
        let old_counters = std::mem::replace(&mut self.counters, counters);
        self.faults = faults;
        self.result = result.clone();
        self.semantic = semantic;
        // Record the generation step for the versioned store. A no-op
        // apply (nothing flipped) leaves the session bit-identical to the
        // generation it was already at, so it records nothing.
        if !changed.is_empty() {
            self.generation += 1;
            let mut removed = Vec::new();
            let mut added = Vec::new();
            for &id in &changed {
                if self.mask.is_enabled(id) {
                    added.push(id);
                } else {
                    removed.push(id);
                }
            }
            // Snapshot only the re-swept victims whose state actually
            // changed: on a saturated closure most re-sweeps reproduce
            // the old lists bit-for-bit, and replay-patching a victim to
            // bytes it already holds is a no-op — omitting it is exactly
            // as bit-exact as storing it, at a fraction of the record.
            let dirty_snapshot: Vec<(u32, VictimCounters, NetLists)> = dirty
                .iter()
                .enumerate()
                .filter(|&(vi, &d)| {
                    d && !persist::victim_state_identical(
                        &old_counters[vi],
                        &old_lists[vi],
                        &self.counters[vi],
                        &self.lists[vi],
                    )
                })
                .map(|(vi, _)| (vi as u32, self.counters[vi], self.lists[vi].clone()))
                .collect();
            self.pending.push(PendingDelta {
                generation: self.generation,
                removed,
                added,
                mask_digest: persist::mask_digest(circuit, &self.mask),
                result: self.result.clone(),
                faults: self.faults.clone(),
                dirty: dirty_snapshot,
            });
            if self.pending.len() > MAX_PENDING_DELTAS {
                // Too much unsaved history to keep pinned: forget it and
                // force the next save to checkpoint instead.
                self.pending.clear();
                self.anchor = None;
            }
        }
        if std::env::var_os("DNA_PROFILE").is_some() {
            eprintln!(
                "[profile] whatif apply: {:.2?} ({recomputed_victims}/{} victims recomputed, \
                 {} proven clean, {unmasked_dirty_victims} under mask-oblivious adjacency)",
                start.elapsed(),
                circuit.num_nets(),
                structural_dirty_victims - recomputed_victims,
            );
        }
        Ok(WhatIfOutcome {
            result,
            changed,
            dirty,
            recomputed_victims,
            structural_dirty_victims,
            unmasked_dirty_victims,
            certificates,
        })
    }

    /// Spot-checks up to `sample` proven-clean victims of `outcome`
    /// against a from-scratch run under the session's current mask: their
    /// cached irredundant lists and enumeration counters must be
    /// bit-identical to the recomputed ones. This is the audit teeth
    /// behind the corridor prover — an unsound [`CleanCertificate`]
    /// (wrong bound, lying digest) surfaces here even though the victim
    /// was never re-swept. Returns how many victims were checked.
    ///
    /// Certificates are sampled at a deterministic stride so repeated
    /// audits of the same outcome check the same victims.
    ///
    /// # Errors
    ///
    /// [`TopKError::Internal`] naming the first diverging victim, or a
    /// propagated analysis error from the from-scratch reference run.
    pub fn audit_clean_victims(
        &self,
        outcome: &WhatIfOutcome,
        sample: usize,
    ) -> Result<usize, TopKError> {
        let certs = outcome.certificates();
        if certs.is_empty() || sample == 0 {
            return Ok(0);
        }
        let (_, lists, counters, _) =
            self.analysis.run_seeded(self.mode, self.k, &self.mask, None)?;
        let stride = (certs.len() / sample).max(1);
        let mut checked = 0;
        for cert in certs.iter().step_by(stride) {
            if checked == sample {
                break;
            }
            let vi = cert.victim().index();
            if *self.lists[vi] != *lists[vi] || self.counters[vi] != counters[vi] {
                return Err(TopKError::Internal {
                    what: format!(
                        "proven-clean victim {vi} diverges from the from-scratch reference — \
                         unsound clean certificate"
                    ),
                });
            }
            checked += 1;
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopKConfig;
    use dna_netlist::{CellKind, Circuit, CircuitBuilder, Library};

    /// Two disjoint cones sharing no nets: fixing a coupling in one cone
    /// must leave the other cone's victims untouched.
    fn two_cones() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let x = b.input("x");
        let p = b.input("p");
        let q = b.input("q");
        let v = b.gate(CellKind::Buf, "v", &[a]).unwrap();
        let g = b.gate(CellKind::Buf, "g", &[x]).unwrap();
        let w = b.gate(CellKind::Inv, "w", &[v]).unwrap();
        let r = b.gate(CellKind::Buf, "r", &[p]).unwrap();
        let s = b.gate(CellKind::Buf, "s", &[q]).unwrap();
        let t = b.gate(CellKind::Inv, "t", &[r]).unwrap();
        b.output(w);
        b.output(g);
        b.output(t);
        b.output(s);
        b.coupling(v, g, 8.0).unwrap();
        b.coupling(w, g, 4.0).unwrap();
        b.coupling(r, s, 8.0).unwrap();
        b.coupling(t, s, 4.0).unwrap();
        b.build().unwrap()
    }

    fn fingerprint(r: &TopKResult) -> (Vec<u32>, usize, u64, u64, u64, usize, usize) {
        (
            r.couplings().iter().map(|c| c.index() as u32).collect(),
            r.sink().index(),
            r.delay_before().to_bits(),
            r.delay_after().to_bits(),
            r.predicted_delay().to_bits(),
            r.peak_list_width(),
            r.generated_candidates(),
        )
    }

    #[test]
    fn mask_delta_constructors() {
        let ids = [CouplingId::new(0), CouplingId::new(2)];
        assert_eq!(MaskDelta::remove(&ids).removed(), &ids);
        assert!(MaskDelta::remove(&ids).added().is_empty());
        assert_eq!(MaskDelta::add(&ids).added(), &ids);
        assert!(MaskDelta::default().is_empty());
        assert!(!MaskDelta::new(&[], &ids).is_empty());
    }

    #[test]
    fn removed_and_added_coupling_ends_up_enabled() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
        let id = CouplingId::new(0);
        let outcome = session.apply(&MaskDelta::new(&[id], &[id])).unwrap();
        assert!(session.mask().is_enabled(id), "removals apply before additions");
        // Already enabled, so nothing flipped and nothing was recomputed.
        assert!(outcome.changed_couplings().is_empty());
        assert_eq!(outcome.recomputed_victims(), 0);
    }

    #[test]
    fn empty_delta_is_a_full_cache_hit() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let mut session = WhatIfSession::start(&engine, Mode::Addition, 2).unwrap();
        let before = fingerprint(session.result());
        let outcome = session.apply(&MaskDelta::default()).unwrap();
        assert_eq!(outcome.recomputed_victims(), 0);
        assert_eq!(outcome.cached_victims(), circuit.num_nets());
        assert_eq!(fingerprint(outcome.result()), before);
    }

    #[test]
    fn disjoint_cone_stays_cached() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        for mode in [Mode::Addition, Mode::Elimination] {
            let mut session = WhatIfSession::start(&engine, mode, 2).unwrap();
            // Remove a coupling of the first cone (v -- g): the second
            // cone (p, q, r, s, t) must be served entirely from cache.
            let outcome = session.apply(&MaskDelta::remove(&[CouplingId::new(0)])).unwrap();
            assert!(outcome.recomputed_victims() > 0);
            assert!(
                outcome.recomputed_victims() < circuit.num_nets(),
                "{}: dirty cone must not cover the disjoint cone",
                mode.name()
            );
            for name in ["p", "q", "r", "s", "t"] {
                let n = circuit.net_by_name(name).unwrap();
                assert!(!outcome.dirty_flags()[n.index()], "{name} must stay clean");
            }
        }
    }

    #[test]
    fn incremental_matches_from_scratch_both_directions() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        for mode in [Mode::Addition, Mode::Elimination] {
            let mut session = WhatIfSession::start(&engine, mode, 2).unwrap();
            let fix: Vec<CouplingId> = session.result().couplings().to_vec();

            let outcome = session.apply(&MaskDelta::remove(&fix)).unwrap();
            let scratch = engine.run_seeded(mode, 2, session.mask(), None).unwrap().0;
            assert_eq!(
                fingerprint(outcome.result()),
                fingerprint(&scratch),
                "{}: remove delta diverged from from-scratch",
                mode.name()
            );

            let outcome = session.apply(&MaskDelta::add(&fix)).unwrap();
            let scratch = engine.run_seeded(mode, 2, session.mask(), None).unwrap().0;
            assert_eq!(
                fingerprint(outcome.result()),
                fingerprint(&scratch),
                "{}: add delta diverged from from-scratch",
                mode.name()
            );
        }
    }

    #[test]
    fn zero_k_is_rejected() {
        let circuit = two_cones();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        assert!(matches!(WhatIfSession::start(&engine, Mode::Addition, 0), Err(TopKError::ZeroK)));
    }
}
