//! Crash-safe, versioned persistence of [`WhatIfSession`] state: the
//! `DNAWIFA` v2 **generation chain**.
//!
//! A what-if session's value is its cache: per-victim irredundant lists,
//! enumeration counters, fault quarantines, the current mask and the last
//! result. Version 1 of this module serialized all of it into one
//! monolithic artifact — i10 weighs ~84 MB, and every save rewrote every
//! byte even when one apply had dirtied a handful of victims. Version 2
//! turns the artifact into an append-only *chain of generations*:
//!
//! * the file starts with a **base checkpoint** record (a full session
//!   snapshot, the v1 payload) at some generation `g`;
//! * every [`WhatIfSession::apply`] that flips at least one coupling
//!   advances the session's generation and buffers a replayable
//!   [`PendingDelta`]; [`commit_chain`] appends those as **delta
//!   records** — only the flipped couplings, the post-apply result/fault
//!   state, and the dirty victims' lists — so a small `MaskDelta` costs a
//!   small write;
//! * when the delta tail grows past
//!   [`CommitOptions::max_delta_records`] (or on `--compact`), the chain
//!   is rewritten as a single checkpoint at the tip generation.
//!
//! Loading replays the chain: decode the checkpoint, patch one delta at a
//! time. Because each delta stores the *post-apply* state of exactly the
//! victims the sweep recomputed (every other victim is untouched by
//! construction of the dirty closure), replay is pure state patching — no
//! engine run — and reproduces every generation f64-bit-exactly.
//! [`WhatIfSession::resume_at`] stops the replay early, which is what
//! `dna whatif --history GEN` uses to reproduce any past generation.
//!
//! # Record framing
//!
//! ```text
//! file   := magic (8) | version u32 (4) | record*
//! record := tag u8 | generation u64 | prev_hash u64 | payload_len u64
//!         | crc u32 | payload
//! ```
//!
//! The CRC-32 covers the header fields (tag through `payload_len`) *and*
//! the payload, so any single flipped bit anywhere in a record is
//! detected. `prev_hash` is the FNV-1a hash of the predecessor's 29
//! header bytes (0 for the base), chaining the records: a record spliced
//! in from another chain — even one with a valid checksum — breaks the
//! link and is rejected. Link hashes are computed from headers only, so
//! verifying that a file's tip matches a session's
//! [`ChainAnchor`] before appending costs header-sized reads and seeks,
//! not an 84 MB scan.
//!
//! # Commit protocol
//!
//! * **Delta append**: serialize the pending records, append, `fsync`.
//!   A crash mid-append leaves a torn tail after a fully-committed
//!   prefix; recovery truncates the tail.
//! * **Checkpoint / compaction**: write the whole chain to a sibling
//!   `*.tmp` file, `fsync` it, atomically rename over the target, then
//!   `fsync` the directory. A crash before the rename leaves the old
//!   chain untouched; after it, the new chain is fully in place.
//!
//! [`faultsim::maybe_crash`](crate::faultsim) points (`pre-append`,
//! `mid-append`, `pre-sync`, `pre-temp`, `mid-temp`, `pre-rename`) sit at
//! every irreversible step so tests can `kill -9` the process at each one
//! and prove recovery lands on the last committed generation.
//!
//! # Trust model
//!
//! The loader trusts **nothing** it cannot validate. Defenses, outermost
//! first:
//!
//! 1. magic + format version (not ours / wrong era → typed rejection),
//! 2. per-record framing: declared length vs. bytes present (torn tail),
//!    CRC-32 over header + payload (bit rot, tampering),
//! 3. chain integrity: base is a checkpoint, generations contiguous,
//!    every `prev_hash` links (splicing),
//! 4. circuit fingerprint (net/gate/coupling counts + a 64-bit FNV-1a
//!    hash of the circuit's canonical text form) and a configuration
//!    hash (with `threads` and `damping` normalized — neither changes
//!    results),
//! 5. semantic validation while decoding: every id in range, every
//!    envelope curve well-formed, every cached delay noise finite, and
//!    every delta's replayed mask hashing to its recorded digest.
//!
//! Every failure is a typed [`ArtifactError`]. Strict loading
//! ([`WhatIfSession::resume`]) rejects the whole chain on any failure;
//! lenient loading ([`WhatIfSession::resume_lenient`], the daemon's
//! recovery pass) salvages the longest committed prefix and reports what
//! was dropped. A damaged chain can cost the *uncommitted* tail, never
//! correctness.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use dna_netlist::{Circuit, CouplingId, NetId};
use dna_noise::CouplingMask;
use dna_waveform::{Envelope, Pwl};

use crate::engine::{Curtailment, NetLists, VictimCounters};
use crate::result::{Fault, FaultPhase, FaultReport, SweepStats};
use crate::sched::SchedStats;
use crate::session::{PendingDelta, WhatIfSession};
use crate::{
    faultsim, ArtifactError, Candidate, CouplingSet, Mode, TopKAnalysis, TopKConfig, TopKError,
    TopKResult,
};

/// Format version this build reads and writes. Bump on any layout change;
/// the loader rejects every other version. v2 is the generation chain —
/// v1 monolithic artifacts are rejected as version skew (regenerate the
/// cache; it is only a cache).
pub const ARTIFACT_VERSION: u32 = 2;

/// Leading magic: "DNA What-If Artifact".
const MAGIC: &[u8; 8] = b"DNAWIFA\0";

/// File header: magic (8) + version (4).
const FILE_HEADER_LEN: usize = 12;

/// Record header: tag (1) + generation (8) + prev_hash (8) +
/// payload_len (8) + CRC-32 (4).
const RECORD_HEADER_LEN: usize = 29;

/// How many record-header bytes the CRC covers (everything before the CRC
/// field itself).
const CRC_COVERED_HEADER: usize = RECORD_HEADER_LEN - 4;

const TAG_CHECKPOINT: u8 = 0;
const TAG_DELTA: u8 = 1;

// Stable phrases for `ChainBroken::what`, matched by `chain_summary` to
// classify faults for the L07x lint rules.
const BROKEN_FIRST: &str = "first record is not a checkpoint";
const BROKEN_BASE_PREV: &str = "base checkpoint has a non-zero predecessor hash";
const BROKEN_MID_CHECKPOINT: &str = "checkpoint record after the base";
const BROKEN_LINK: &str = "predecessor link hash mismatch";
const BROKEN_GENERATION: &str = "generation discontinuity";
const BROKEN_DIGEST: &str = "replayed mask digest does not match the recorded one";

// ---------------------------------------------------------------------
// Checksums and fingerprints
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`), the checksum
/// of zip/png. Table built at compile time; no external crates.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// One CRC over the concatenation of `parts` without materializing it.
pub(crate) fn crc32_multi(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    crc32_multi(&[bytes])
}

/// FNV-1a 64-bit — a cheap, dependency-free content fingerprint for the
/// circuit text and config debug forms, and the chain's link hashes
/// (collision resistance far beyond what an accident needs; this is
/// corruption detection, not crypto).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Config fingerprint with `threads` and `damping` normalized out: both
/// knobs are guaranteed (and tested) not to change results — thread count
/// only shifts scheduling, and the corridor prover only removes certified
/// re-sweep work — so an artifact saved at `threads = 8` under semantic
/// damping loads fine at `threads = 1` under structural damping.
fn config_hash(config: &TopKConfig) -> u64 {
    let normalized = TopKConfig { threads: 0, damping: crate::Damping::Structural, ..*config };
    fnv1a64(format!("{normalized:?}").as_bytes())
}

/// FNV-1a digest of the full mask (one byte per coupling, id order).
/// Recorded in every delta record so replay can prove it patched its way
/// to the same world the writer was in (lint rule L072).
pub(crate) fn mask_digest(circuit: &Circuit, mask: &CouplingMask) -> u64 {
    let mut bits = Vec::with_capacity(circuit.num_couplings());
    for id in circuit.coupling_ids() {
        bits.push(u8::from(mask.is_enabled(id)));
    }
    fnv1a64(&bits)
}

// ---------------------------------------------------------------------
// Byte-stream primitives
// ---------------------------------------------------------------------

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

pub(crate) struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    pub(crate) fn new(buf: &'b [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize, what: &str) -> Result<&'b [u8], ArtifactError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ArtifactError::Malformed { what: format!("{what}: payload ends mid-field") }
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.bytes(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn usize(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| ArtifactError::Malformed { what: format!("{what}: length {v} overflows") })
    }

    /// A length that will be used to pre-allocate or index: bounded by the
    /// remaining payload so a corrupted (but checksum-colliding) length
    /// cannot trigger a huge allocation.
    pub(crate) fn len(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.usize(what)?;
        if v > self.buf.len() - self.pos {
            return Err(ArtifactError::Malformed {
                what: format!("{what}: count {v} exceeds remaining payload"),
            });
        }
        Ok(v)
    }

    pub(crate) fn f64_bits(&mut self, what: &str) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, ArtifactError> {
        let n = self.len(what)?;
        let raw = self.bytes(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ArtifactError::Malformed { what: format!("{what}: invalid utf-8") })
    }

    pub(crate) fn done(&self) -> Result<(), ArtifactError> {
        if self.pos != self.buf.len() {
            return Err(ArtifactError::Malformed {
                what: format!("{} trailing bytes after payload", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

pub(crate) fn mode_to_u8(mode: Mode) -> u8 {
    match mode {
        Mode::Addition => 0,
        Mode::Elimination => 1,
    }
}

pub(crate) fn mode_from_u8(v: u8) -> Result<Mode, ArtifactError> {
    match v {
        0 => Ok(Mode::Addition),
        1 => Ok(Mode::Elimination),
        other => Err(ArtifactError::Malformed { what: format!("unknown mode tag {other}") }),
    }
}

fn phase_to_u8(phase: FaultPhase) -> u8 {
    match phase {
        FaultPhase::Prepare => 0,
        FaultPhase::Enumeration => 1,
        FaultPhase::Selection => 2,
    }
}

fn phase_from_u8(v: u8) -> Result<FaultPhase, ArtifactError> {
    match v {
        0 => Ok(FaultPhase::Prepare),
        1 => Ok(FaultPhase::Enumeration),
        2 => Ok(FaultPhase::Selection),
        other => Err(ArtifactError::Malformed { what: format!("unknown fault phase tag {other}") }),
    }
}

fn curtailment_to_u8(c: Curtailment) -> u8 {
    match c {
        Curtailment::None => 0,
        Curtailment::Truncated => 1,
        Curtailment::Skipped => 2,
    }
}

fn curtailment_from_u8(v: u8) -> Result<Curtailment, ArtifactError> {
    match v {
        0 => Ok(Curtailment::None),
        1 => Ok(Curtailment::Truncated),
        2 => Ok(Curtailment::Skipped),
        other => Err(ArtifactError::Malformed { what: format!("unknown curtailment tag {other}") }),
    }
}

fn encode_set(w: &mut Writer, set: &CouplingSet) {
    w.usize(set.len());
    for id in set.ids() {
        w.u32(id.index() as u32);
    }
}

fn decode_set(r: &mut Reader<'_>, num_couplings: usize) -> Result<CouplingSet, ArtifactError> {
    let n = r.len("coupling set")?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.u32("coupling id")?;
        if raw as usize >= num_couplings {
            return Err(ArtifactError::Malformed {
                what: format!("coupling id {raw} out of range (< {num_couplings})"),
            });
        }
        ids.push(CouplingId::new(raw));
    }
    Ok(CouplingSet::from_iter(ids))
}

fn encode_envelope(w: &mut Writer, env: &Envelope) {
    let pts = env.as_pwl().points();
    w.usize(pts.len());
    for &(t, v) in pts {
        w.f64_bits(t);
        w.f64_bits(v);
    }
}

fn decode_envelope(r: &mut Reader<'_>) -> Result<Envelope, ArtifactError> {
    let n = r.len("envelope points")?;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.f64_bits("envelope t")?;
        let v = r.f64_bits("envelope v")?;
        pts.push((t, v));
    }
    let curve = Pwl::from_points_unchecked(pts);
    if let Err(e) = curve.is_well_formed() {
        return Err(ArtifactError::Malformed { what: format!("envelope curve: {e}") });
    }
    // `from_pwl_unchecked` recomputes the cached bounds from the curve —
    // the same deterministic scan every engine envelope went through, so
    // the loaded envelope is bit-identical to the saved one.
    Ok(Envelope::from_pwl_unchecked(curve))
}

fn encode_fault(w: &mut Writer, f: &Fault) {
    w.u32(f.victim().index() as u32);
    w.u8(phase_to_u8(f.phase()));
    w.str(f.cause());
}

fn decode_fault(r: &mut Reader<'_>, num_nets: usize) -> Result<Fault, ArtifactError> {
    let raw = r.u32("fault victim")?;
    if raw as usize >= num_nets {
        return Err(ArtifactError::Malformed {
            what: format!("fault victim {raw} out of range (< {num_nets})"),
        });
    }
    let phase = phase_from_u8(r.u8("fault phase")?)?;
    let cause = r.str("fault cause")?;
    Ok(Fault::new(NetId::new(raw), phase, cause))
}

fn encode_result(w: &mut Writer, res: &TopKResult) {
    w.u8(mode_to_u8(res.mode));
    w.usize(res.requested_k);
    encode_set(w, &res.set);
    w.u32(res.sink.index() as u32);
    w.f64_bits(res.delay_before);
    w.f64_bits(res.delay_after);
    w.f64_bits(res.predicted_delay);
    w.usize(res.peak_list_width);
    w.usize(res.generated_candidates);
    w.u64(u64::try_from(res.runtime.as_nanos()).unwrap_or(u64::MAX));
    w.usize(res.faults.len());
    for f in res.faults.iter() {
        encode_fault(w, f);
    }
    w.usize(res.stats.truncated_victims);
    w.usize(res.stats.skipped_victims);
    w.usize(res.stats.quarantined_victims);
}

fn decode_result(
    r: &mut Reader<'_>,
    num_nets: usize,
    num_couplings: usize,
) -> Result<TopKResult, ArtifactError> {
    let mode = mode_from_u8(r.u8("result mode")?)?;
    let requested_k = r.usize("result k")?;
    let set = decode_set(r, num_couplings)?;
    let sink_raw = r.u32("result sink")?;
    if sink_raw as usize >= num_nets {
        return Err(ArtifactError::Malformed {
            what: format!("result sink {sink_raw} out of range (< {num_nets})"),
        });
    }
    let delay_before = r.f64_bits("delay before")?;
    let delay_after = r.f64_bits("delay after")?;
    let predicted_delay = r.f64_bits("predicted delay")?;
    for (name, v) in [
        ("delay before", delay_before),
        ("delay after", delay_after),
        ("predicted", predicted_delay),
    ] {
        if !v.is_finite() {
            return Err(ArtifactError::Malformed { what: format!("{name} is not finite ({v})") });
        }
    }
    let peak_list_width = r.usize("peak list width")?;
    let generated_candidates = r.usize("generated candidates")?;
    let runtime = std::time::Duration::from_nanos(r.u64("runtime")?);
    let n_faults = r.len("result faults")?;
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        faults.push(decode_fault(r, num_nets)?);
    }
    let stats = SweepStats {
        truncated_victims: r.usize("truncated victims")?,
        skipped_victims: r.usize("skipped victims")?,
        quarantined_victims: r.usize("quarantined victims")?,
    };
    Ok(TopKResult {
        mode,
        requested_k,
        set,
        sink: NetId::new(sink_raw),
        delay_before,
        delay_after,
        predicted_delay,
        peak_list_width,
        generated_candidates,
        runtime,
        faults: FaultReport::new(faults),
        stats,
        // Scheduler counters are diagnostic, run-local state: they are
        // deliberately not persisted, so a decoded result reports the
        // default (empty) stats.
        sched: SchedStats::default(),
    })
}

/// One victim's per-cardinality irredundant lists.
fn encode_victim_lists(w: &mut Writer, per_card: &[Vec<Candidate>]) {
    w.usize(per_card.len());
    for list in per_card {
        w.usize(list.len());
        for cand in list {
            encode_set(w, cand.set());
            w.f64_bits(cand.delay_noise());
            encode_envelope(w, cand.envelope());
        }
    }
}

fn decode_victim_lists(
    r: &mut Reader<'_>,
    num_couplings: usize,
) -> Result<Vec<Vec<Candidate>>, ArtifactError> {
    let n_lists = r.len("list count")?;
    let mut per_card = Vec::with_capacity(n_lists);
    for _ in 0..n_lists {
        let n_cands = r.len("candidate count")?;
        let mut cands = Vec::with_capacity(n_cands);
        for _ in 0..n_cands {
            let set = decode_set(r, num_couplings)?;
            let dn = r.f64_bits("candidate delay noise")?;
            let env = decode_envelope(r)?;
            let cand = Candidate::try_new(set, env, dn)
                .map_err(|e| ArtifactError::Malformed { what: format!("candidate: {e}") })?;
            cands.push(cand);
        }
        per_card.push(cands);
    }
    Ok(per_card)
}

fn decode_id_list(
    r: &mut Reader<'_>,
    num_couplings: usize,
    what: &str,
) -> Result<Vec<CouplingId>, ArtifactError> {
    let n = r.len(what)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.u32(what)?;
        if raw as usize >= num_couplings {
            return Err(ArtifactError::Malformed {
                what: format!("{what} {raw} out of range (< {num_couplings})"),
            });
        }
        ids.push(CouplingId::new(raw));
    }
    Ok(ids)
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// Serializes one record (header + payload) into `out`; returns the
/// record's link hash (FNV-1a of its finished header bytes), which the
/// *next* record stores as `prev_hash`.
fn append_record(
    out: &mut Vec<u8>,
    tag: u8,
    generation: u64,
    prev_hash: u64,
    payload: &[u8],
) -> u64 {
    let mut head = [0u8; RECORD_HEADER_LEN];
    head[0] = tag;
    head[1..9].copy_from_slice(&generation.to_le_bytes());
    head[9..17].copy_from_slice(&prev_hash.to_le_bytes());
    head[17..25].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32_multi(&[&head[..CRC_COVERED_HEADER], payload]);
    head[25..29].copy_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&head);
    out.extend_from_slice(payload);
    fnv1a64(&head)
}

/// The known tip of an on-disk chain: what a session remembers at
/// load/save time so a later save can prove the file still ends where it
/// left it and append deltas instead of rewriting everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainAnchor {
    /// Generation of the tip record.
    pub generation: u64,
    /// Link hash (header FNV-1a) of the tip record.
    pub tip_hash: u64,
    /// Total committed chain length in bytes.
    pub file_len: u64,
    /// Delta records after the base checkpoint (compaction pressure).
    pub delta_records: usize,
}

/// One parsed-and-verified record, borrowing its payload from the chain
/// bytes.
struct RawRecord<'b> {
    tag: u8,
    generation: u64,
    link_hash: u64,
    offset: usize,
    payload: &'b [u8],
}

/// The longest valid prefix of a chain plus what stopped the scan.
struct ChainScanOutcome<'b> {
    records: Vec<RawRecord<'b>>,
    /// Bytes covered by `records` (including the file header).
    valid_len: usize,
    /// Why scanning stopped before the end of `bytes`, if it did.
    damage: Option<ArtifactError>,
}

fn check_file_header(bytes: &[u8]) -> Result<(), ArtifactError> {
    if bytes.len() < FILE_HEADER_LEN {
        return Err(if bytes.get(..MAGIC.len()).is_some_and(|m| m == MAGIC) {
            ArtifactError::Truncated { needed: FILE_HEADER_LEN, have: bytes.len() }
        } else {
            ArtifactError::BadMagic
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: ARTIFACT_VERSION,
        });
    }
    Ok(())
}

/// Walks the records of `bytes`, verifying framing (length, CRC) and
/// chain integrity (base is a checkpoint, links, generation contiguity)
/// record by record. Returns the valid prefix; the first failure is
/// reported as `damage` and stops the walk. Only file-header problems
/// (not ours, wrong version) are outright errors.
fn scan_chain(bytes: &[u8]) -> Result<ChainScanOutcome<'_>, ArtifactError> {
    check_file_header(bytes)?;
    let mut records: Vec<RawRecord<'_>> = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    let mut prev_hash = 0u64;
    let mut prev_gen = 0u64;
    let mut damage = None;
    while pos < bytes.len() {
        let parsed = parse_record(bytes, pos, records.is_empty(), prev_hash, prev_gen);
        match parsed {
            Ok(rec) => {
                prev_hash = rec.link_hash;
                prev_gen = rec.generation;
                pos = rec.offset + RECORD_HEADER_LEN + rec.payload.len();
                records.push(rec);
            }
            Err(e) => {
                damage = Some(e);
                break;
            }
        }
    }
    Ok(ChainScanOutcome { records, valid_len: pos, damage })
}

fn parse_record(
    bytes: &[u8],
    pos: usize,
    is_first: bool,
    prev_hash: u64,
    prev_gen: u64,
) -> Result<RawRecord<'_>, ArtifactError> {
    if bytes.len() - pos < RECORD_HEADER_LEN {
        return Err(ArtifactError::Truncated {
            needed: pos + RECORD_HEADER_LEN,
            have: bytes.len(),
        });
    }
    let head: &[u8; RECORD_HEADER_LEN] =
        bytes[pos..pos + RECORD_HEADER_LEN].try_into().expect("record header slice");
    let tag = head[0];
    let generation = u64::from_le_bytes(head[1..9].try_into().expect("8 bytes"));
    let rec_prev = u64::from_le_bytes(head[9..17].try_into().expect("8 bytes"));
    let payload_len_u64 = u64::from_le_bytes(head[17..25].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(head[25..29].try_into().expect("4 bytes"));
    if tag != TAG_CHECKPOINT && tag != TAG_DELTA {
        return Err(ArtifactError::Malformed { what: format!("unknown record tag {tag}") });
    }
    let payload_len = usize::try_from(payload_len_u64)
        .map_err(|_| ArtifactError::Malformed { what: "record payload length overflows".into() })?;
    let start = pos + RECORD_HEADER_LEN;
    let end = start.checked_add(payload_len).filter(|&e| e <= bytes.len()).ok_or(
        ArtifactError::Truncated { needed: start.saturating_add(payload_len), have: bytes.len() },
    )?;
    let payload = &bytes[start..end];
    let computed = crc32_multi(&[&head[..CRC_COVERED_HEADER], payload]);
    if computed != stored_crc {
        return Err(ArtifactError::ChecksumMismatch { stored: stored_crc, computed });
    }
    if is_first {
        if tag != TAG_CHECKPOINT {
            return Err(ArtifactError::ChainBroken { generation, what: BROKEN_FIRST.into() });
        }
        if rec_prev != 0 {
            return Err(ArtifactError::ChainBroken { generation, what: BROKEN_BASE_PREV.into() });
        }
    } else {
        if tag != TAG_DELTA {
            return Err(ArtifactError::ChainBroken {
                generation,
                what: format!("{BROKEN_MID_CHECKPOINT} (compaction rewrites the whole chain)"),
            });
        }
        if rec_prev != prev_hash {
            return Err(ArtifactError::ChainBroken {
                generation,
                what: format!("{BROKEN_LINK} (spliced or misdirected append)"),
            });
        }
        if generation != prev_gen.wrapping_add(1) {
            return Err(ArtifactError::ChainBroken {
                generation,
                what: format!("{BROKEN_GENERATION} ({prev_gen} then {generation})"),
            });
        }
    }
    Ok(RawRecord { tag, generation, link_hash: fnv1a64(head), offset: pos, payload })
}

fn anchor_of(records: &[RawRecord<'_>], valid_len: usize) -> Option<ChainAnchor> {
    let tip = records.last()?;
    Some(ChainAnchor {
        generation: tip.generation,
        tip_hash: tip.link_hash,
        file_len: valid_len as u64,
        delta_records: records.len() - 1,
    })
}

// ---------------------------------------------------------------------
// Checkpoint and delta payload codecs
// ---------------------------------------------------------------------

fn encode_checkpoint_payload(session: &WhatIfSession<'_, '_>) -> Vec<u8> {
    let circuit = session.analysis.circuit();
    let mut w = Writer::new();

    // Compatibility fingerprints.
    w.u32(circuit.num_nets() as u32);
    w.u32(circuit.num_gates() as u32);
    w.u32(circuit.num_couplings() as u32);
    w.u64(fnv1a64(dna_netlist::format::write(circuit).as_bytes()));
    w.u64(config_hash(session.analysis.config()));

    // Session identity.
    w.u8(mode_to_u8(session.mode));
    w.usize(session.k);
    for id in circuit.coupling_ids() {
        w.u8(u8::from(session.mask.is_enabled(id)));
    }

    // Last result.
    encode_result(&mut w, &session.result);

    // Quarantine cache.
    w.usize(session.faults.len());
    for f in &session.faults {
        encode_fault(&mut w, f);
    }

    // Per-victim counters.
    for c in &session.counters {
        w.usize(c.peak_list_width);
        w.usize(c.generated);
        w.u8(curtailment_to_u8(c.curtailment));
    }

    // Per-victim irredundant lists.
    for lists in &session.lists {
        encode_victim_lists(&mut w, lists);
    }
    w.buf
}

fn decode_checkpoint<'a, 'c>(
    analysis: &'a TopKAnalysis<'c>,
    payload: &[u8],
    generation: u64,
) -> Result<WhatIfSession<'a, 'c>, ArtifactError> {
    let circuit = analysis.circuit();

    // World fingerprints.
    let mut r = Reader::new(payload);
    let nets = r.u32("net count")? as usize;
    let gates = r.u32("gate count")? as usize;
    let couplings = r.u32("coupling count")? as usize;
    for (what, found, expected) in [
        ("net count", nets, circuit.num_nets()),
        ("gate count", gates, circuit.num_gates()),
        ("coupling count", couplings, circuit.num_couplings()),
    ] {
        if found != expected {
            return Err(ArtifactError::CircuitMismatch {
                what: format!("{what} {found} != {expected}"),
            });
        }
    }
    let circuit_hash = r.u64("circuit hash")?;
    let expected_hash = fnv1a64(dna_netlist::format::write(circuit).as_bytes());
    if circuit_hash != expected_hash {
        return Err(ArtifactError::CircuitMismatch { what: "content hash".into() });
    }
    if r.u64("config hash")? != config_hash(analysis.config()) {
        return Err(ArtifactError::ConfigMismatch);
    }

    // Semantic decode.
    let mode = mode_from_u8(r.u8("session mode")?)?;
    let k = r.usize("session k")?;
    if k == 0 {
        return Err(ArtifactError::Malformed { what: "session k is zero".into() });
    }
    let mut enabled = Vec::with_capacity(couplings);
    for i in 0..couplings {
        match r.u8("mask bit")? {
            0 => enabled.push(false),
            1 => enabled.push(true),
            other => {
                return Err(ArtifactError::Malformed {
                    what: format!("mask bit {i} has value {other}"),
                })
            }
        }
    }
    let ids: Vec<CouplingId> =
        (0..couplings as u32).map(CouplingId::new).filter(|id| enabled[id.index()]).collect();
    let mask = CouplingMask::none(circuit).with(&ids);

    let result = decode_result(&mut r, nets, couplings)?;
    if result.mode != mode {
        return Err(ArtifactError::Malformed {
            what: "result mode disagrees with session mode".into(),
        });
    }

    let n_faults = r.len("session faults")?;
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        faults.push(decode_fault(&mut r, nets)?);
    }

    let mut counters = Vec::with_capacity(nets);
    for _ in 0..nets {
        let peak_list_width = r.usize("counter peak")?;
        let generated = r.usize("counter generated")?;
        let curtailment = curtailment_from_u8(r.u8("counter curtailment")?)?;
        counters.push(VictimCounters { peak_list_width, generated, curtailment });
    }

    let mut lists: Vec<NetLists> = Vec::with_capacity(nets);
    for _ in 0..nets {
        lists.push(std::sync::Arc::new(decode_victim_lists(&mut r, couplings)?));
    }
    r.done()?;

    Ok(WhatIfSession {
        analysis,
        mode,
        k,
        mask,
        lists,
        counters,
        faults,
        result,
        // Corridor digests are cheap to rebuild and tedious to version;
        // the first apply after a resume falls back to the structural
        // closure and re-captures them.
        semantic: None,
        generation,
        pending: Vec::new(),
        anchor: None,
    })
}

/// Whether two victim states would serialize to identical bytes — field
/// for field the set `encode_victim_lists` + the counters write, floats
/// compared by bits. A re-swept victim whose state is identical to the
/// previous generation's can be omitted from a delta record: replaying
/// the record patches the victim to bytes it already holds, so omission
/// is bit-exact by the same argument that makes patching so. This is
/// what keeps a small fix's delta O(changed victims) even when the
/// structural dirty closure saturates the circuit.
pub(crate) fn victim_state_identical(
    old_counters: &VictimCounters,
    old_lists: &[Vec<Candidate>],
    new_counters: &VictimCounters,
    new_lists: &[Vec<Candidate>],
) -> bool {
    if old_counters != new_counters || old_lists.len() != new_lists.len() {
        return false;
    }
    old_lists.iter().zip(new_lists).all(|(a, b)| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(ca, cb)| {
                ca.delay_noise().to_bits() == cb.delay_noise().to_bits()
                    && ca.set().ids() == cb.set().ids()
                    && {
                        let (pa, pb) =
                            (ca.envelope().as_pwl().points(), cb.envelope().as_pwl().points());
                        pa.len() == pb.len()
                            && pa.iter().zip(pb).all(|(&(ta, va), &(tb, vb))| {
                                ta.to_bits() == tb.to_bits() && va.to_bits() == vb.to_bits()
                            })
                    }
            })
    })
}

fn encode_delta_payload(pd: &PendingDelta) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(pd.mask_digest);
    w.usize(pd.removed.len());
    for id in &pd.removed {
        w.u32(id.index() as u32);
    }
    w.usize(pd.added.len());
    for id in &pd.added {
        w.u32(id.index() as u32);
    }
    encode_result(&mut w, &pd.result);
    w.usize(pd.faults.len());
    for f in &pd.faults {
        encode_fault(&mut w, f);
    }
    w.usize(pd.dirty.len());
    for (vi, counters, lists) in &pd.dirty {
        w.u32(*vi);
        w.usize(counters.peak_list_width);
        w.usize(counters.generated);
        w.u8(curtailment_to_u8(counters.curtailment));
        encode_victim_lists(&mut w, lists);
    }
    w.buf
}

/// Patches `session` from generation `g-1` to `g` by replaying one delta
/// record: flip the recorded couplings, verify the mask digest, adopt the
/// recorded result/faults, and overwrite exactly the dirty victims'
/// lists/counters. Pure state patching — bit-exact by construction.
fn apply_delta_record(
    session: &mut WhatIfSession<'_, '_>,
    generation: u64,
    payload: &[u8],
) -> Result<(), ArtifactError> {
    let circuit = session.analysis.circuit();
    let nets = circuit.num_nets();
    let couplings = circuit.num_couplings();
    let mut r = Reader::new(payload);
    let digest = r.u64("delta mask digest")?;
    let removed = decode_id_list(&mut r, couplings, "removed coupling")?;
    let added = decode_id_list(&mut r, couplings, "added coupling")?;
    let new_mask = session.mask.clone().without(&removed).with(&added);
    if mask_digest(circuit, &new_mask) != digest {
        return Err(ArtifactError::ChainBroken { generation, what: BROKEN_DIGEST.into() });
    }
    let result = decode_result(&mut r, nets, couplings)?;
    if result.mode != session.mode {
        return Err(ArtifactError::Malformed {
            what: "delta result mode disagrees with session mode".into(),
        });
    }
    let n_faults = r.len("delta faults")?;
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        faults.push(decode_fault(&mut r, nets)?);
    }
    let n_dirty = r.len("delta dirty victims")?;
    let mut patches = Vec::with_capacity(n_dirty);
    let mut last: Option<u32> = None;
    for _ in 0..n_dirty {
        let vi = r.u32("dirty victim index")?;
        if vi as usize >= nets {
            return Err(ArtifactError::Malformed {
                what: format!("dirty victim {vi} out of range (< {nets})"),
            });
        }
        if last.is_some_and(|p| p >= vi) {
            return Err(ArtifactError::Malformed {
                what: "dirty victim indices not strictly increasing".into(),
            });
        }
        last = Some(vi);
        let counters = VictimCounters {
            peak_list_width: r.usize("dirty counter peak")?,
            generated: r.usize("dirty counter generated")?,
            curtailment: curtailment_from_u8(r.u8("dirty counter curtailment")?)?,
        };
        let lists = decode_victim_lists(&mut r, couplings)?;
        patches.push((vi, counters, lists));
    }
    r.done()?;

    session.mask = new_mask;
    session.result = result;
    session.faults = faults;
    for (vi, counters, lists) in patches {
        session.counters[vi as usize] = counters;
        session.lists[vi as usize] = std::sync::Arc::new(lists);
    }
    session.generation = generation;
    session.semantic = None;
    Ok(())
}

fn replay<'a, 'c>(
    analysis: &'a TopKAnalysis<'c>,
    records: &[RawRecord<'_>],
    upto: Option<u64>,
) -> Result<WhatIfSession<'a, 'c>, ArtifactError> {
    let base = &records[0];
    let tip_gen = records.last().expect("replay needs records").generation;
    let target = upto.unwrap_or(tip_gen);
    if target < base.generation || target > tip_gen {
        return Err(ArtifactError::GenerationUnavailable {
            requested: target,
            base: base.generation,
            tip: tip_gen,
        });
    }
    let mut session = decode_checkpoint(analysis, base.payload, base.generation)?;
    for rec in &records[1..] {
        if rec.generation > target {
            break;
        }
        apply_delta_record(&mut session, rec.generation, rec.payload)?;
    }
    Ok(session)
}

// ---------------------------------------------------------------------
// Session-level load/save API
// ---------------------------------------------------------------------

/// What a lenient chain load salvaged and what it had to give up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRecovery {
    /// Generation the recovered session landed on (the last committed
    /// one).
    pub generation: u64,
    /// Records successfully replayed.
    pub records: usize,
    /// CRC-valid records dropped because *replay* rejected them (e.g. a
    /// mask-digest mismatch) — distinct from the torn tail.
    pub dropped_records: usize,
    /// Bytes past the committed prefix (torn tail + dropped records).
    pub truncated_bytes: u64,
    /// Committed prefix length: truncating the file to this many bytes
    /// repairs it in place.
    pub valid_bytes: u64,
    /// Human-readable description of the damage, when any was found.
    pub damage: Option<String>,
}

impl<'a, 'c> WhatIfSession<'a, 'c> {
    /// Serializes the session's full cached state — mask, per-victim
    /// I-lists, counters, fault quarantines and the last result — as a
    /// single-checkpoint chain at the current generation, for
    /// [`resume`](Self::resume). Buffered pending deltas are *not*
    /// written separately: the checkpoint already holds their net effect.
    #[must_use]
    pub fn save_artifact(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let payload = encode_checkpoint_payload(self);
        append_record(&mut out, TAG_CHECKPOINT, self.generation, 0, &payload);
        out
    }

    /// Rebuilds a session from chain bytes against `analysis`, replaying
    /// the full chain to its tip, after which [`apply`](Self::apply)
    /// behaves bit-identically to a session that never stopped. Strict:
    /// any framing, chain-integrity or semantic failure anywhere in the
    /// bytes rejects the whole chain.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::Artifact`] when the bytes fail any validation
    /// layer — wrong magic, version skew, truncation, checksum mismatch,
    /// broken chain links, circuit/config mismatch, or a semantically
    /// malformed payload. The caller should fall back to
    /// [`start`](Self::start) (the CLI does) or to
    /// [`resume_lenient`](Self::resume_lenient) (the daemon's recovery
    /// pass does).
    pub fn resume(analysis: &'a TopKAnalysis<'c>, bytes: &[u8]) -> Result<Self, TopKError> {
        let scan = scan_chain(bytes)?;
        if let Some(damage) = scan.damage {
            return Err(damage.into());
        }
        if scan.records.is_empty() {
            return Err(ArtifactError::Malformed { what: "chain holds no records".into() }.into());
        }
        let mut session = replay(analysis, &scan.records, None)?;
        session.anchor = anchor_of(&scan.records, scan.valid_len);
        Ok(session)
    }

    /// Rebuilds the session exactly as it was at `generation` — the
    /// substrate of `dna whatif --history GEN`. Strict, like
    /// [`resume`](Self::resume). The returned session carries no
    /// [`ChainAnchor`]: saving it writes a fresh checkpoint instead of
    /// appending onto a chain whose tip it is *not* at (which would fork
    /// history).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::GenerationUnavailable`] when `generation` is past
    /// the tip or below the base checkpoint (compaction discards history
    /// below the base), plus everything [`resume`](Self::resume) rejects.
    pub fn resume_at(
        analysis: &'a TopKAnalysis<'c>,
        bytes: &[u8],
        generation: u64,
    ) -> Result<Self, TopKError> {
        let scan = scan_chain(bytes)?;
        if let Some(damage) = scan.damage {
            return Err(damage.into());
        }
        if scan.records.is_empty() {
            return Err(ArtifactError::Malformed { what: "chain holds no records".into() }.into());
        }
        Ok(replay(analysis, &scan.records, Some(generation))?)
    }

    /// Fsck-style load: salvages the longest committed prefix of a
    /// damaged chain instead of rejecting it — the write-ahead-log
    /// discipline. A torn tail (partial append, `kill -9` mid-write) or a
    /// record that fails replay costs exactly the uncommitted suffix; the
    /// session lands on the last generation that was fully committed.
    ///
    /// # Errors
    ///
    /// Fails only when *nothing* is recoverable: the file header is not
    /// ours / wrong version, no record survives framing, or the base
    /// checkpoint itself is damaged or belongs to a different
    /// circuit/config.
    pub fn resume_lenient(
        analysis: &'a TopKAnalysis<'c>,
        bytes: &[u8],
    ) -> Result<(Self, ChainRecovery), TopKError> {
        let scan = scan_chain(bytes)?;
        let total = scan.records.len();
        if total == 0 {
            return Err(TopKError::from(
                scan.damage
                    .unwrap_or(ArtifactError::Malformed { what: "chain holds no records".into() }),
            ));
        }
        let mut upto = total;
        let mut replay_damage: Option<ArtifactError> = None;
        loop {
            match replay(analysis, &scan.records[..upto], None) {
                Ok(mut session) => {
                    let valid_len =
                        if upto == total { scan.valid_len } else { scan.records[upto].offset };
                    session.anchor = anchor_of(&scan.records[..upto], valid_len);
                    let damage = replay_damage
                        .as_ref()
                        .map(ToString::to_string)
                        .or_else(|| scan.damage.as_ref().map(ToString::to_string));
                    let recovery = ChainRecovery {
                        generation: session.generation,
                        records: upto,
                        dropped_records: total - upto,
                        truncated_bytes: (bytes.len() - valid_len) as u64,
                        valid_bytes: valid_len as u64,
                        damage,
                    };
                    return Ok((session, recovery));
                }
                Err(e) if upto > 1 => {
                    // A CRC-valid record that fails replay poisons only
                    // itself and everything after: retry on the shorter
                    // prefix (the base re-decodes each time — recovery is
                    // rare and correctness beats speed here).
                    replay_damage.get_or_insert(e);
                    upto -= 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

// ---------------------------------------------------------------------
// File-level commit protocol
// ---------------------------------------------------------------------

/// Knobs of [`commit_chain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOptions {
    /// Rewrite the chain as a single checkpoint even when a delta append
    /// would be possible (`dna whatif --compact`).
    pub force_checkpoint: bool,
    /// Compaction threshold: when appending would leave more than this
    /// many delta records after the base, the chain is rewritten as a
    /// checkpoint instead. Replay cost (and torn-tail exposure) stays
    /// bounded.
    pub max_delta_records: usize,
}

impl Default for CommitOptions {
    fn default() -> Self {
        Self { force_checkpoint: false, max_delta_records: 64 }
    }
}

/// How [`commit_chain`] wrote (or didn't write) the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveKind {
    /// Nothing to write: the file already holds exactly this session's
    /// state (no pending deltas, anchor matches the file tip).
    Unchanged,
    /// Full checkpoint via write-temp + fsync + atomic rename (fresh
    /// save, compaction, anchor mismatch, or `force_checkpoint`).
    Checkpoint,
    /// Appended this many delta records (one per pending apply) + fsync.
    Delta(usize),
}

/// What one [`commit_chain`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Which commit path ran.
    pub kind: SaveKind,
    /// Generation the chain tip is now at.
    pub generation: u64,
    /// Bytes physically written by this call (0 for `Unchanged`).
    pub bytes_written: u64,
    /// Total chain file size after the commit.
    pub file_bytes: u64,
}

/// Reads the chain tip of the file at `path` from record *headers* only
/// (seeking over payloads), verifying magic, version, tags, links and
/// generation contiguity — everything except payload CRCs, which the next
/// full load still enforces. `None` when the file is missing, not a
/// chain, or structurally damaged — in every such case the caller must
/// fall back to a full checkpoint rewrite.
fn file_tip(path: &Path) -> Option<ChainAnchor> {
    let mut f = File::open(path).ok()?;
    let file_len = f.metadata().ok()?.len();
    let mut header = [0u8; FILE_HEADER_LEN];
    f.read_exact(&mut header).ok()?;
    if &header[..8] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(header[8..12].try_into().ok()?) != ARTIFACT_VERSION {
        return None;
    }
    let mut pos = FILE_HEADER_LEN as u64;
    let mut prev_hash = 0u64;
    let mut prev_gen = 0u64;
    let mut records = 0usize;
    let mut tip = None;
    while pos < file_len {
        if file_len - pos < RECORD_HEADER_LEN as u64 {
            return None;
        }
        let mut head = [0u8; RECORD_HEADER_LEN];
        f.read_exact(&mut head).ok()?;
        let tag = head[0];
        let generation = u64::from_le_bytes(head[1..9].try_into().ok()?);
        let rec_prev = u64::from_le_bytes(head[9..17].try_into().ok()?);
        let payload_len = u64::from_le_bytes(head[17..25].try_into().ok()?);
        let first = records == 0;
        let tag_ok = if first { tag == TAG_CHECKPOINT } else { tag == TAG_DELTA };
        let link_ok = if first { rec_prev == 0 } else { rec_prev == prev_hash };
        let gen_ok = first || generation == prev_gen.wrapping_add(1);
        if !tag_ok || !link_ok || !gen_ok {
            return None;
        }
        pos += RECORD_HEADER_LEN as u64;
        if file_len - pos < payload_len {
            return None;
        }
        f.seek(SeekFrom::Current(i64::try_from(payload_len).ok()?)).ok()?;
        pos += payload_len;
        prev_hash = fnv1a64(&head);
        prev_gen = generation;
        records += 1;
        tip = Some(ChainAnchor {
            generation,
            tip_hash: prev_hash,
            file_len: pos,
            delta_records: records - 1,
        });
    }
    tip
}

pub(crate) fn io_err(what: &str, path: &Path, e: &std::io::Error) -> TopKError {
    TopKError::from(ArtifactError::Io { what: format!("{what} `{}`: {e}", path.display()) })
}

/// Commits the session to the chain file at `path` under the crash-safe
/// protocol, choosing the cheapest sound write:
///
/// * **unchanged** — no pending deltas and the file tip still matches the
///   session's [`ChainAnchor`]: write nothing;
/// * **delta append** — pending deltas exist, the anchor matches the file
///   tip, and the delta tail stays within
///   [`CommitOptions::max_delta_records`]: append one CRC-framed record
///   per pending apply and `fsync` — O(dirty victims) bytes, the whole
///   point of the versioned store;
/// * **checkpoint** — everything else (fresh session, anchor mismatch or
///   missing, compaction threshold, `force_checkpoint`): write the full
///   chain to a sibling temp file, `fsync`, atomically rename over
///   `path`, `fsync` the directory.
///
/// On success the session's pending buffer is drained and its anchor
/// points at the new tip, so consecutive commits compose.
///
/// # Errors
///
/// [`ArtifactError::Io`] (wrapped in [`TopKError::Artifact`]) on any
/// filesystem failure; the session's pending buffer is left intact so the
/// caller can retry.
pub fn commit_chain(
    session: &mut WhatIfSession<'_, '_>,
    path: &Path,
    opts: &CommitOptions,
) -> Result<SaveReport, TopKError> {
    let disk = file_tip(path);
    let anchored = match (session.anchor, disk) {
        (Some(a), Some(d)) if a == d => Some(a),
        _ => None,
    };

    if let Some(a) = anchored {
        if session.pending.is_empty() && !opts.force_checkpoint {
            return Ok(SaveReport {
                kind: SaveKind::Unchanged,
                generation: session.generation,
                bytes_written: 0,
                file_bytes: a.file_len,
            });
        }
        let fits = a.delta_records + session.pending.len() <= opts.max_delta_records;
        if !session.pending.is_empty() && fits && !opts.force_checkpoint {
            return append_pending(session, path, a);
        }
    }
    write_checkpoint(session, path)
}

/// The delta-append arm of [`commit_chain`]: serialize every pending
/// apply as a record chained onto the file's current tip, append in one
/// write, `fsync`.
fn append_pending(
    session: &mut WhatIfSession<'_, '_>,
    path: &Path,
    anchor: ChainAnchor,
) -> Result<SaveReport, TopKError> {
    let mut buf = Vec::new();
    let mut prev = anchor.tip_hash;
    let mut tip_gen = anchor.generation;
    for pd in &session.pending {
        debug_assert_eq!(pd.generation, tip_gen + 1, "pending deltas must be contiguous");
        let payload = encode_delta_payload(pd);
        prev = append_record(&mut buf, TAG_DELTA, pd.generation, prev, &payload);
        tip_gen = pd.generation;
    }
    let records = session.pending.len();

    faultsim::maybe_crash("pre-append");
    let mut f = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err("cannot open chain", path, &e))?;
    let half = buf.len() / 2;
    f.write_all(&buf[..half]).map_err(|e| io_err("cannot append to chain", path, &e))?;
    faultsim::maybe_crash("mid-append");
    f.write_all(&buf[half..]).map_err(|e| io_err("cannot append to chain", path, &e))?;
    faultsim::maybe_crash("pre-sync");
    f.sync_all().map_err(|e| io_err("cannot fsync chain", path, &e))?;

    session.pending.clear();
    session.anchor = Some(ChainAnchor {
        generation: tip_gen,
        tip_hash: prev,
        file_len: anchor.file_len + buf.len() as u64,
        delta_records: anchor.delta_records + records,
    });
    Ok(SaveReport {
        kind: SaveKind::Delta(records),
        generation: tip_gen,
        bytes_written: buf.len() as u64,
        file_bytes: anchor.file_len + buf.len() as u64,
    })
}

/// The checkpoint arm of [`commit_chain`]: full chain bytes to a sibling
/// temp file, `fsync`, atomic rename, directory `fsync`.
fn write_checkpoint(
    session: &mut WhatIfSession<'_, '_>,
    path: &Path,
) -> Result<SaveReport, TopKError> {
    let bytes = session.save_artifact();
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "chain".into());
    let tmp = path.with_file_name(format!("{file_name}.tmp"));

    faultsim::maybe_crash("pre-temp");
    let mut f = File::create(&tmp).map_err(|e| io_err("cannot create temp file", &tmp, &e))?;
    let half = bytes.len() / 2;
    f.write_all(&bytes[..half]).map_err(|e| io_err("cannot write temp file", &tmp, &e))?;
    faultsim::maybe_crash("mid-temp");
    f.write_all(&bytes[half..]).map_err(|e| io_err("cannot write temp file", &tmp, &e))?;
    f.sync_all().map_err(|e| io_err("cannot fsync temp file", &tmp, &e))?;
    drop(f);
    faultsim::maybe_crash("pre-rename");
    fs::rename(&tmp, path).map_err(|e| io_err("cannot rename temp file over", path, &e))?;
    // Make the rename itself durable. Failure to fsync the directory is
    // not worth failing the save over (the data file is synced; at worst
    // the rename replays from the journal), so this is best-effort.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }

    session.pending.clear();
    session.anchor = chain_tip(&bytes);
    Ok(SaveReport {
        kind: SaveKind::Checkpoint,
        generation: session.generation,
        bytes_written: bytes.len() as u64,
        file_bytes: bytes.len() as u64,
    })
}

/// Truncates a damaged chain file to its committed prefix, in place —
/// the repair arm of the daemon's recovery pass. `valid_bytes` comes from
/// [`ChainRecovery::valid_bytes`]; truncation is idempotent, so a crash
/// mid-repair just repairs again on the next pass.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn truncate_chain_file(path: &Path, valid_bytes: u64) -> Result<(), TopKError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("cannot open chain for repair", path, &e))?;
    f.set_len(valid_bytes).map_err(|e| io_err("cannot truncate chain", path, &e))?;
    f.sync_all().map_err(|e| io_err("cannot fsync repaired chain", path, &e))?;
    Ok(())
}

// ---------------------------------------------------------------------
// Chain inspection (CLI `--history`, lint L07x)
// ---------------------------------------------------------------------

/// Reads the chain tip from in-memory bytes (header walk, no payload
/// CRCs). `None` when the bytes are not a structurally valid chain.
#[must_use]
pub fn chain_tip(bytes: &[u8]) -> Option<ChainAnchor> {
    let scan = scan_chain(bytes).ok()?;
    if scan.damage.is_some() || scan.valid_len != bytes.len() {
        return None;
    }
    anchor_of(&scan.records, scan.valid_len)
}

/// Which kind of record a [`RecordMeta`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Full session snapshot (the chain base, or a compacted chain).
    Checkpoint,
    /// Incremental generation step.
    Delta,
}

/// One record of a chain, as reported by [`chain_summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMeta {
    /// Checkpoint or delta.
    pub kind: RecordKind,
    /// Generation this record produces.
    pub generation: u64,
    /// Payload size in bytes (header excluded).
    pub payload_bytes: u64,
    /// Byte offset of the record header in the chain.
    pub offset: u64,
}

/// A typed chain-integrity defect, classified for the L07x lint rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainFault {
    /// Records out of order: the base is not a checkpoint, a checkpoint
    /// appears mid-chain, or generations are not contiguous (L070).
    OutOfOrder {
        /// Generation of the offending record.
        generation: u64,
        /// What exactly is out of order.
        what: String,
    },
    /// A record's `prev_hash` does not match its predecessor — splicing
    /// or a misdirected append (L071).
    LinkBroken {
        /// Generation of the unlinked record.
        generation: u64,
    },
    /// A record failed its framing CRC — bit rot or tampering (L071).
    Corrupt {
        /// The underlying checksum error.
        error: String,
    },
    /// A delta's replayed mask does not hash to its recorded digest
    /// (L072). Only reported by [`chain_summary_checked`], which replays.
    MaskDivergence {
        /// Generation of the diverging delta.
        generation: u64,
    },
    /// The chain ends mid-record — the torn tail of an interrupted
    /// append (L073; recoverable by design).
    TornTail {
        /// Bytes past the last committed record.
        bytes: u64,
    },
    /// Replay of a CRC-valid record failed semantic decoding (reported
    /// by [`chain_summary_checked`]).
    ReplayRejected {
        /// The underlying decode error.
        error: String,
    },
}

/// Everything `dna whatif --history` (bare) prints and `lint --deep`'s
/// L07x rules consume: the committed records plus every classified
/// defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// The committed (valid-prefix) records, base first.
    pub records: Vec<RecordMeta>,
    /// Classified defects; empty for a healthy chain.
    pub faults: Vec<ChainFault>,
}

impl ChainSummary {
    /// Generation of the base checkpoint (the oldest reproducible one).
    #[must_use]
    pub fn base_generation(&self) -> Option<u64> {
        self.records.first().map(|r| r.generation)
    }

    /// Generation of the newest committed record.
    #[must_use]
    pub fn tip_generation(&self) -> Option<u64> {
        self.records.last().map(|r| r.generation)
    }
}

fn classify_damage(bytes_len: usize, valid_len: usize, damage: &ArtifactError) -> ChainFault {
    match damage {
        ArtifactError::Truncated { .. } => {
            ChainFault::TornTail { bytes: (bytes_len - valid_len) as u64 }
        }
        ArtifactError::ChecksumMismatch { .. } => ChainFault::Corrupt { error: damage.to_string() },
        ArtifactError::ChainBroken { generation, what } => {
            if what.starts_with(BROKEN_LINK) {
                ChainFault::LinkBroken { generation: *generation }
            } else if what.starts_with(BROKEN_DIGEST) {
                ChainFault::MaskDivergence { generation: *generation }
            } else {
                ChainFault::OutOfOrder { generation: *generation, what: what.clone() }
            }
        }
        other => ChainFault::Corrupt { error: other.to_string() },
    }
}

/// Structural summary of a chain: framing, links and generation order —
/// everything that can be checked without a circuit.
///
/// # Errors
///
/// Only file-header problems (wrong magic / version): there is no chain
/// to summarize.
pub fn chain_summary(bytes: &[u8]) -> Result<ChainSummary, ArtifactError> {
    let scan = scan_chain(bytes)?;
    let records = scan
        .records
        .iter()
        .map(|r| RecordMeta {
            kind: if r.tag == TAG_CHECKPOINT { RecordKind::Checkpoint } else { RecordKind::Delta },
            generation: r.generation,
            payload_bytes: r.payload.len() as u64,
            offset: r.offset as u64,
        })
        .collect();
    let faults = scan
        .damage
        .as_ref()
        .map(|d| classify_damage(bytes.len(), scan.valid_len, d))
        .into_iter()
        .collect();
    Ok(ChainSummary { records, faults })
}

/// Like [`chain_summary`], additionally replaying the committed prefix
/// against `analysis` so delta-level semantic defects — above all the
/// L072 mask-digest divergence — are surfaced too.
///
/// # Errors
///
/// Only file-header problems; replay failures are reported as faults, not
/// errors.
pub fn chain_summary_checked(
    analysis: &TopKAnalysis<'_>,
    bytes: &[u8],
) -> Result<ChainSummary, ArtifactError> {
    let mut summary = chain_summary(bytes)?;
    let scan = scan_chain(bytes)?;
    if !scan.records.is_empty() {
        if let Err(e) = replay(analysis, &scan.records, None) {
            let fault = match &e {
                ArtifactError::ChainBroken { generation, what }
                    if what.starts_with(BROKEN_DIGEST) =>
                {
                    ChainFault::MaskDivergence { generation: *generation }
                }
                other => ChainFault::ReplayRejected { error: other.to_string() },
            };
            summary.faults.push(fault);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming over parts equals one shot over the concatenation.
        assert_eq!(crc32_multi(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn fnv_separates_close_inputs() {
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
    }

    #[test]
    fn config_hash_ignores_threads_only() {
        let base = TopKConfig::default();
        assert_eq!(config_hash(&base), config_hash(&TopKConfig { threads: 7, ..base }));
        assert_eq!(
            config_hash(&base),
            config_hash(&TopKConfig { damping: crate::Damping::Structural, ..base })
        );
        assert_ne!(config_hash(&base), config_hash(&TopKConfig { validate: false, ..base }));
        assert_ne!(
            config_hash(&base),
            config_hash(&TopKConfig { victim_candidate_budget: Some(10), ..base })
        );
    }

    #[test]
    fn record_framing_round_trips_and_links() {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let l0 = append_record(&mut out, TAG_CHECKPOINT, 3, 0, b"base payload");
        let l1 = append_record(&mut out, TAG_DELTA, 4, l0, b"delta one");
        let _ = append_record(&mut out, TAG_DELTA, 5, l1, b"");
        let scan = scan_chain(&out).unwrap();
        assert!(scan.damage.is_none(), "{:?}", scan.damage);
        assert_eq!(scan.valid_len, out.len());
        assert_eq!(scan.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![3, 4, 5]);
        let tip = chain_tip(&out).unwrap();
        assert_eq!(tip.generation, 5);
        assert_eq!(tip.delta_records, 2);
        assert_eq!(tip.file_len, out.len() as u64);
    }

    #[test]
    fn every_record_byte_is_covered_by_framing_checks() {
        let mut chain = Vec::new();
        chain.extend_from_slice(MAGIC);
        chain.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let l0 = append_record(&mut chain, TAG_CHECKPOINT, 0, 0, b"payload bytes here");
        append_record(&mut chain, TAG_DELTA, 1, l0, b"and delta payload");
        for i in 0..chain.len() {
            let mut bad = chain.clone();
            bad[i] ^= 0x10;
            let scan = scan_chain(&bad);
            let detected = match scan {
                Err(_) => true, // file header flips
                Ok(s) => s.damage.is_some(),
            };
            assert!(detected, "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn spliced_records_break_the_link() {
        // Two chains with identical payloads but different base
        // generations: grafting chain B's delta onto chain A must fail
        // the prev-hash link even though the record's own CRC is valid.
        let mut a = Vec::new();
        a.extend_from_slice(MAGIC);
        a.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let la = append_record(&mut a, TAG_CHECKPOINT, 0, 0, b"base A");
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let lb = append_record(&mut b, TAG_CHECKPOINT, 0, 0, b"base B");
        assert_ne!(la, lb);
        let b_delta_at = b.len();
        append_record(&mut b, TAG_DELTA, 1, lb, b"delta");
        let mut spliced = a.clone();
        spliced.extend_from_slice(&b[b_delta_at..]);
        let scan = scan_chain(&spliced).unwrap();
        assert_eq!(scan.records.len(), 1, "spliced delta must not be accepted");
        assert!(
            matches!(scan.damage, Some(ArtifactError::ChainBroken { generation: 1, .. })),
            "{:?}",
            scan.damage
        );
    }

    #[test]
    fn torn_tails_classify_as_torn_and_mid_chain_corruption_does_not() {
        let mut chain = Vec::new();
        chain.extend_from_slice(MAGIC);
        chain.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        let l0 = append_record(&mut chain, TAG_CHECKPOINT, 0, 0, b"the base payload");
        append_record(&mut chain, TAG_DELTA, 1, l0, b"the delta payload");

        // Chop mid-delta: torn tail.
        let torn = &chain[..chain.len() - 5];
        let summary = chain_summary(torn).unwrap();
        assert_eq!(summary.records.len(), 1);
        assert!(
            matches!(summary.faults[..], [ChainFault::TornTail { .. }]),
            "{:?}",
            summary.faults
        );

        // Flip a payload byte of the delta: corrupt, not torn.
        let mut rotten = chain.clone();
        let n = rotten.len();
        rotten[n - 3] ^= 0xFF;
        let summary = chain_summary(&rotten).unwrap();
        assert!(matches!(summary.faults[..], [ChainFault::Corrupt { .. }]), "{:?}", summary.faults);
    }
}
