//! Checksummed, versioned persistence of [`WhatIfSession`] state.
//!
//! A what-if session's value is its cache: per-victim irredundant lists,
//! enumeration counters, fault quarantines, the current mask and the last
//! result. [`WhatIfSession::save_artifact`] serializes all of it into a
//! self-describing binary artifact; [`WhatIfSession::resume`] rebuilds a
//! live session from the bytes in a later process — resolving the "persist
//! session caches across process runs" roadmap item — after which `apply`
//! behaves exactly as if the original session had never stopped.
//!
//! # Trust model
//!
//! The loader trusts **nothing** it cannot validate. Defenses, outermost
//! first:
//!
//! 1. magic + format version (not ours / wrong era → typed rejection),
//! 2. declared payload length vs. bytes present (truncation),
//! 3. CRC-32 (IEEE) over the payload (bit rot, partial writes, tampering),
//! 4. circuit fingerprint (net/gate/coupling counts + a 64-bit FNV-1a hash
//!    of the circuit's canonical text form) and a configuration hash
//!    (the engine config's debug form with `threads` normalized — thread
//!    count never changes results, everything else can),
//! 5. semantic validation while decoding: every id in range, every
//!    envelope curve well-formed, every cached delay noise finite.
//!
//! Every failure is a typed [`ArtifactError`]; callers fall back to a
//! from-scratch [`WhatIfSession::start`] (the CLI does this
//! automatically). A corrupt artifact can cost the cache, never
//! correctness.
//!
//! # Bit-identity
//!
//! Envelopes are stored as their exact breakpoint lists (`f64::to_bits`
//! pairs); on load the cached peak/support bounds are recomputed by the
//! same one-scan fold every checked constructor uses, so a loaded
//! candidate is bit-for-bit the candidate that was saved. The round-trip
//! therefore preserves result fingerprints exactly (tier-1 acceptance:
//! save → load → apply ≡ never-saved session).

use dna_netlist::{CouplingId, NetId};
use dna_noise::CouplingMask;
use dna_waveform::{Envelope, Pwl};

use crate::engine::{Curtailment, NetLists, VictimCounters};
use crate::result::{Fault, FaultPhase, FaultReport, SweepStats};
use crate::sched::SchedStats;
use crate::session::WhatIfSession;
use crate::{
    ArtifactError, Candidate, CouplingSet, Mode, TopKAnalysis, TopKConfig, TopKError, TopKResult,
};

/// Format version this build reads and writes. Bump on any layout change;
/// the loader rejects every other version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Leading magic: "DNA What-If Artifact".
const MAGIC: &[u8; 8] = b"DNAWIFA\0";

/// Header: magic (8) + version (4) + payload length (8) + CRC-32 (4).
const HEADER_LEN: usize = 24;

// ---------------------------------------------------------------------
// Checksums and fingerprints
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`), the checksum
/// of zip/png. Table built at compile time; no external crates.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// FNV-1a 64-bit — a cheap, dependency-free content fingerprint for the
/// circuit text and config debug forms (collision resistance far beyond
/// what an accident needs; this is corruption detection, not crypto).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Config fingerprint with `threads` and `damping` normalized out: both
/// knobs are guaranteed (and tested) not to change results — thread count
/// only shifts scheduling, and the corridor prover only removes certified
/// re-sweep work — so an artifact saved at `threads = 8` under semantic
/// damping loads fine at `threads = 1` under structural damping.
fn config_hash(config: &TopKConfig) -> u64 {
    let normalized = TopKConfig { threads: 0, damping: crate::Damping::Structural, ..*config };
    fnv1a64(format!("{normalized:?}").as_bytes())
}

// ---------------------------------------------------------------------
// Byte-stream primitives
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn new(buf: &'b [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'b [u8], ArtifactError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ArtifactError::Malformed { what: format!("{what}: payload ends mid-field") }
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn usize(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| ArtifactError::Malformed { what: format!("{what}: length {v} overflows") })
    }

    /// A length that will be used to pre-allocate or index: bounded by the
    /// remaining payload so a corrupted (but checksum-colliding) length
    /// cannot trigger a huge allocation.
    fn len(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.usize(what)?;
        if v > self.buf.len() - self.pos {
            return Err(ArtifactError::Malformed {
                what: format!("{what}: count {v} exceeds remaining payload"),
            });
        }
        Ok(v)
    }

    fn f64_bits(&mut self, what: &str) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, ArtifactError> {
        let n = self.len(what)?;
        let raw = self.bytes(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ArtifactError::Malformed { what: format!("{what}: invalid utf-8") })
    }

    fn done(&self) -> Result<(), ArtifactError> {
        if self.pos != self.buf.len() {
            return Err(ArtifactError::Malformed {
                what: format!("{} trailing bytes after payload", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

fn mode_to_u8(mode: Mode) -> u8 {
    match mode {
        Mode::Addition => 0,
        Mode::Elimination => 1,
    }
}

fn mode_from_u8(v: u8) -> Result<Mode, ArtifactError> {
    match v {
        0 => Ok(Mode::Addition),
        1 => Ok(Mode::Elimination),
        other => Err(ArtifactError::Malformed { what: format!("unknown mode tag {other}") }),
    }
}

fn phase_to_u8(phase: FaultPhase) -> u8 {
    match phase {
        FaultPhase::Prepare => 0,
        FaultPhase::Enumeration => 1,
        FaultPhase::Selection => 2,
    }
}

fn phase_from_u8(v: u8) -> Result<FaultPhase, ArtifactError> {
    match v {
        0 => Ok(FaultPhase::Prepare),
        1 => Ok(FaultPhase::Enumeration),
        2 => Ok(FaultPhase::Selection),
        other => Err(ArtifactError::Malformed { what: format!("unknown fault phase tag {other}") }),
    }
}

fn curtailment_to_u8(c: Curtailment) -> u8 {
    match c {
        Curtailment::None => 0,
        Curtailment::Truncated => 1,
        Curtailment::Skipped => 2,
    }
}

fn curtailment_from_u8(v: u8) -> Result<Curtailment, ArtifactError> {
    match v {
        0 => Ok(Curtailment::None),
        1 => Ok(Curtailment::Truncated),
        2 => Ok(Curtailment::Skipped),
        other => Err(ArtifactError::Malformed { what: format!("unknown curtailment tag {other}") }),
    }
}

fn encode_set(w: &mut Writer, set: &CouplingSet) {
    w.usize(set.len());
    for id in set.ids() {
        w.u32(id.index() as u32);
    }
}

fn decode_set(r: &mut Reader<'_>, num_couplings: usize) -> Result<CouplingSet, ArtifactError> {
    let n = r.len("coupling set")?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.u32("coupling id")?;
        if raw as usize >= num_couplings {
            return Err(ArtifactError::Malformed {
                what: format!("coupling id {raw} out of range (< {num_couplings})"),
            });
        }
        ids.push(CouplingId::new(raw));
    }
    Ok(CouplingSet::from_iter(ids))
}

fn encode_envelope(w: &mut Writer, env: &Envelope) {
    let pts = env.as_pwl().points();
    w.usize(pts.len());
    for &(t, v) in pts {
        w.f64_bits(t);
        w.f64_bits(v);
    }
}

fn decode_envelope(r: &mut Reader<'_>) -> Result<Envelope, ArtifactError> {
    let n = r.len("envelope points")?;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.f64_bits("envelope t")?;
        let v = r.f64_bits("envelope v")?;
        pts.push((t, v));
    }
    let curve = Pwl::from_points_unchecked(pts);
    if let Err(e) = curve.is_well_formed() {
        return Err(ArtifactError::Malformed { what: format!("envelope curve: {e}") });
    }
    // `from_pwl_unchecked` recomputes the cached bounds from the curve —
    // the same deterministic scan every engine envelope went through, so
    // the loaded envelope is bit-identical to the saved one.
    Ok(Envelope::from_pwl_unchecked(curve))
}

fn encode_fault(w: &mut Writer, f: &Fault) {
    w.u32(f.victim().index() as u32);
    w.u8(phase_to_u8(f.phase()));
    w.str(f.cause());
}

fn decode_fault(r: &mut Reader<'_>, num_nets: usize) -> Result<Fault, ArtifactError> {
    let raw = r.u32("fault victim")?;
    if raw as usize >= num_nets {
        return Err(ArtifactError::Malformed {
            what: format!("fault victim {raw} out of range (< {num_nets})"),
        });
    }
    let phase = phase_from_u8(r.u8("fault phase")?)?;
    let cause = r.str("fault cause")?;
    Ok(Fault::new(NetId::new(raw), phase, cause))
}

fn encode_result(w: &mut Writer, res: &TopKResult) {
    w.u8(mode_to_u8(res.mode));
    w.usize(res.requested_k);
    encode_set(w, &res.set);
    w.u32(res.sink.index() as u32);
    w.f64_bits(res.delay_before);
    w.f64_bits(res.delay_after);
    w.f64_bits(res.predicted_delay);
    w.usize(res.peak_list_width);
    w.usize(res.generated_candidates);
    w.u64(u64::try_from(res.runtime.as_nanos()).unwrap_or(u64::MAX));
    w.usize(res.faults.len());
    for f in res.faults.iter() {
        encode_fault(w, f);
    }
    w.usize(res.stats.truncated_victims);
    w.usize(res.stats.skipped_victims);
    w.usize(res.stats.quarantined_victims);
}

fn decode_result(
    r: &mut Reader<'_>,
    num_nets: usize,
    num_couplings: usize,
) -> Result<TopKResult, ArtifactError> {
    let mode = mode_from_u8(r.u8("result mode")?)?;
    let requested_k = r.usize("result k")?;
    let set = decode_set(r, num_couplings)?;
    let sink_raw = r.u32("result sink")?;
    if sink_raw as usize >= num_nets {
        return Err(ArtifactError::Malformed {
            what: format!("result sink {sink_raw} out of range (< {num_nets})"),
        });
    }
    let delay_before = r.f64_bits("delay before")?;
    let delay_after = r.f64_bits("delay after")?;
    let predicted_delay = r.f64_bits("predicted delay")?;
    for (name, v) in [
        ("delay before", delay_before),
        ("delay after", delay_after),
        ("predicted", predicted_delay),
    ] {
        if !v.is_finite() {
            return Err(ArtifactError::Malformed { what: format!("{name} is not finite ({v})") });
        }
    }
    let peak_list_width = r.usize("peak list width")?;
    let generated_candidates = r.usize("generated candidates")?;
    let runtime = std::time::Duration::from_nanos(r.u64("runtime")?);
    let n_faults = r.len("result faults")?;
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        faults.push(decode_fault(r, num_nets)?);
    }
    let stats = SweepStats {
        truncated_victims: r.usize("truncated victims")?,
        skipped_victims: r.usize("skipped victims")?,
        quarantined_victims: r.usize("quarantined victims")?,
    };
    Ok(TopKResult {
        mode,
        requested_k,
        set,
        sink: NetId::new(sink_raw),
        delay_before,
        delay_after,
        predicted_delay,
        peak_list_width,
        generated_candidates,
        runtime,
        faults: FaultReport::new(faults),
        stats,
        // Scheduler counters are diagnostic, run-local state: they are
        // deliberately not persisted, so a decoded result reports the
        // default (empty) stats.
        sched: SchedStats::default(),
    })
}

// ---------------------------------------------------------------------
// Artifact assembly
// ---------------------------------------------------------------------

impl<'a, 'c> WhatIfSession<'a, 'c> {
    /// Serializes the session's full cached state — mask, per-victim
    /// I-lists, counters, fault quarantines and the last result — into a
    /// versioned, CRC-checksummed binary artifact for
    /// [`resume`](Self::resume).
    #[must_use]
    pub fn save_artifact(&self) -> Vec<u8> {
        let circuit = self.analysis.circuit();
        let mut w = Writer::new();

        // Compatibility fingerprints.
        w.u32(circuit.num_nets() as u32);
        w.u32(circuit.num_gates() as u32);
        w.u32(circuit.num_couplings() as u32);
        w.u64(fnv1a64(dna_netlist::format::write(circuit).as_bytes()));
        w.u64(config_hash(self.analysis.config()));

        // Session identity.
        w.u8(mode_to_u8(self.mode));
        w.usize(self.k);
        for id in circuit.coupling_ids() {
            w.u8(u8::from(self.mask.is_enabled(id)));
        }

        // Last result.
        encode_result(&mut w, &self.result);

        // Quarantine cache.
        w.usize(self.faults.len());
        for f in &self.faults {
            encode_fault(&mut w, f);
        }

        // Per-victim counters.
        for c in &self.counters {
            w.usize(c.peak_list_width);
            w.usize(c.generated);
            w.u8(curtailment_to_u8(c.curtailment));
        }

        // Per-victim irredundant lists.
        for lists in &self.lists {
            w.usize(lists.len());
            for list in lists.iter() {
                w.usize(list.len());
                for cand in list {
                    encode_set(&mut w, cand.set());
                    w.f64_bits(cand.delay_noise());
                    encode_envelope(&mut w, cand.envelope());
                }
            }
        }

        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Rebuilds a session from [`save_artifact`](Self::save_artifact)
    /// bytes against `analysis`, after which [`apply`](Self::apply)
    /// behaves bit-identically to a session that never stopped.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::Artifact`] when the bytes fail any validation
    /// layer — wrong magic, version skew, truncation, checksum mismatch,
    /// circuit/config mismatch, or a semantically malformed payload. The
    /// caller should fall back to [`start`](Self::start).
    pub fn resume(analysis: &'a TopKAnalysis<'c>, bytes: &[u8]) -> Result<Self, TopKError> {
        Self::resume_inner(analysis, bytes).map_err(TopKError::from)
    }

    fn resume_inner(analysis: &'a TopKAnalysis<'c>, bytes: &[u8]) -> Result<Self, ArtifactError> {
        let circuit = analysis.circuit();

        // Layer 1-3: header, length, checksum.
        if bytes.len() < HEADER_LEN {
            return Err(if bytes.get(..MAGIC.len()).is_some_and(|m| m == MAGIC) {
                ArtifactError::Truncated { needed: HEADER_LEN, have: bytes.len() }
            } else {
                ArtifactError::BadMagic
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let declared_u64 = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
        let declared = usize::try_from(declared_u64)
            .map_err(|_| ArtifactError::Malformed { what: "payload length overflows".into() })?;
        let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 header bytes"));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() < declared {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN + declared,
                have: bytes.len(),
            });
        }
        let payload = &payload[..declared];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(ArtifactError::ChecksumMismatch { stored: stored_crc, computed });
        }

        // Layer 4: world fingerprints.
        let mut r = Reader::new(payload);
        let nets = r.u32("net count")? as usize;
        let gates = r.u32("gate count")? as usize;
        let couplings = r.u32("coupling count")? as usize;
        for (what, found, expected) in [
            ("net count", nets, circuit.num_nets()),
            ("gate count", gates, circuit.num_gates()),
            ("coupling count", couplings, circuit.num_couplings()),
        ] {
            if found != expected {
                return Err(ArtifactError::CircuitMismatch {
                    what: format!("{what} {found} != {expected}"),
                });
            }
        }
        let circuit_hash = r.u64("circuit hash")?;
        let expected_hash = fnv1a64(dna_netlist::format::write(circuit).as_bytes());
        if circuit_hash != expected_hash {
            return Err(ArtifactError::CircuitMismatch { what: "content hash".into() });
        }
        if r.u64("config hash")? != config_hash(analysis.config()) {
            return Err(ArtifactError::ConfigMismatch);
        }

        // Layer 5: semantic decode.
        let mode = mode_from_u8(r.u8("session mode")?)?;
        let k = r.usize("session k")?;
        if k == 0 {
            return Err(ArtifactError::Malformed { what: "session k is zero".into() });
        }
        let mut enabled = Vec::with_capacity(couplings);
        for i in 0..couplings {
            match r.u8("mask bit")? {
                0 => enabled.push(false),
                1 => enabled.push(true),
                other => {
                    return Err(ArtifactError::Malformed {
                        what: format!("mask bit {i} has value {other}"),
                    })
                }
            }
        }
        let ids: Vec<CouplingId> =
            (0..couplings as u32).map(CouplingId::new).filter(|id| enabled[id.index()]).collect();
        let mask = CouplingMask::none(circuit).with(&ids);

        let result = decode_result(&mut r, nets, couplings)?;
        if result.mode != mode {
            return Err(ArtifactError::Malformed {
                what: "result mode disagrees with session mode".into(),
            });
        }

        let n_faults = r.len("session faults")?;
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            faults.push(decode_fault(&mut r, nets)?);
        }

        let mut counters = Vec::with_capacity(nets);
        for _ in 0..nets {
            let peak_list_width = r.usize("counter peak")?;
            let generated = r.usize("counter generated")?;
            let curtailment = curtailment_from_u8(r.u8("counter curtailment")?)?;
            counters.push(VictimCounters { peak_list_width, generated, curtailment });
        }

        let mut lists: Vec<NetLists> = Vec::with_capacity(nets);
        for _ in 0..nets {
            let n_lists = r.len("list count")?;
            let mut per_card = Vec::with_capacity(n_lists);
            for _ in 0..n_lists {
                let n_cands = r.len("candidate count")?;
                let mut cands = Vec::with_capacity(n_cands);
                for _ in 0..n_cands {
                    let set = decode_set(&mut r, couplings)?;
                    let dn = r.f64_bits("candidate delay noise")?;
                    let env = decode_envelope(&mut r)?;
                    let cand = Candidate::try_new(set, env, dn).map_err(|e| {
                        ArtifactError::Malformed { what: format!("candidate: {e}") }
                    })?;
                    cands.push(cand);
                }
                per_card.push(cands);
            }
            lists.push(std::sync::Arc::new(per_card));
        }
        r.done()?;

        Ok(WhatIfSession {
            analysis,
            mode,
            k,
            mask,
            lists,
            counters,
            faults,
            result,
            // The session is byte-for-byte the artifact it came from until
            // the first apply; `source_fingerprint` exposes this so a
            // save-after-load can skip rewriting an unchanged artifact.
            resumed_from: Some((declared_u64, stored_crc)),
            // Corridor digests are cheap to rebuild and tedious to
            // version; the first apply after a resume falls back to the
            // structural closure and re-captures them.
            semantic: None,
        })
    }
}

/// Reads the `(payload length, CRC-32)` fingerprint from an artifact's
/// header without decoding (or even fully reading past) the payload.
///
/// Returns `None` when the bytes are not a well-formed, current-version,
/// untruncated-header artifact. Pairs with
/// [`WhatIfSession::source_fingerprint`]: equal fingerprints mean the file
/// still holds the exact bytes the session was resumed from, so rewriting
/// it is pointless — the groundwork check for incremental artifact
/// refresh.
#[must_use]
pub fn artifact_fingerprint(bytes: &[u8]) -> Option<(u64, u32)> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if version != ARTIFACT_VERSION {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    Some((payload_len, crc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_separates_close_inputs() {
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
    }

    #[test]
    fn config_hash_ignores_threads_only() {
        let base = TopKConfig::default();
        assert_eq!(config_hash(&base), config_hash(&TopKConfig { threads: 7, ..base }));
        assert_eq!(
            config_hash(&base),
            config_hash(&TopKConfig { damping: crate::Damping::Structural, ..base })
        );
        assert_ne!(config_hash(&base), config_hash(&TopKConfig { validate: false, ..base }));
        assert_ne!(
            config_hash(&base),
            config_hash(&TopKConfig { victim_candidate_budget: Some(10), ..base })
        );
    }
}
