//! Candidate aggressor sets rendered at one victim net.

use std::fmt;

use dna_waveform::Envelope;

use crate::{CouplingSet, TopKError};

/// One entry of an irredundant list: a set of couplings together with its
/// noise envelope *as seen by the current victim* and the cached delay
/// noise that envelope produces.
///
/// In **addition** mode the envelope is the combined noise the set couples
/// onto the victim; in **elimination** mode it is the *residual* envelope
/// left after removing the set from the total (paper §3.4). The dominance
/// machinery works on either — only the comparison direction differs.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    set: CouplingSet,
    envelope: Envelope,
    delay_noise: f64,
}

impl Candidate {
    /// Creates a candidate. `delay_noise` must already correspond to
    /// superimposing `envelope` on the victim's transition, and must be a
    /// finite, non-negative number — use [`try_new`](Self::try_new) when
    /// the value comes from arithmetic that can degenerate.
    #[must_use]
    pub fn new(set: CouplingSet, envelope: Envelope, delay_noise: f64) -> Self {
        debug_assert!(
            delay_noise.is_finite() && delay_noise >= 0.0,
            "delay noise must be finite and non-negative, got {delay_noise}"
        );
        Self { set, envelope, delay_noise }
    }

    /// Creates a candidate, rejecting a non-finite or negative cached
    /// delay noise with a typed error instead of deferring the failure to
    /// whichever downstream sort or comparison trips over it first.
    ///
    /// # Errors
    ///
    /// Returns [`TopKError::NonFiniteDelayNoise`] when `delay_noise` is
    /// NaN, infinite, or negative.
    pub fn try_new(
        set: CouplingSet,
        envelope: Envelope,
        delay_noise: f64,
    ) -> Result<Self, TopKError> {
        if !delay_noise.is_finite() || delay_noise < 0.0 {
            return Err(TopKError::NonFiniteDelayNoise { delay_noise });
        }
        Ok(Self { set, envelope, delay_noise })
    }

    /// Creates a candidate without validating the cached delay noise.
    ///
    /// Intended only for IR-level tooling — the `dna-lint` verifier's
    /// known-bad test corpus needs candidates [`new`](Self::new) rejects.
    #[must_use]
    pub fn from_raw_unchecked(set: CouplingSet, envelope: Envelope, delay_noise: f64) -> Self {
        Self { set, envelope, delay_noise }
    }

    /// The couplings in the set.
    #[must_use]
    pub fn set(&self) -> &CouplingSet {
        &self.set
    }

    /// Cardinality of the set.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.set.len()
    }

    /// The envelope rendered at the current victim.
    #[must_use]
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Cached delay noise (addition) or residual delay noise (elimination)
    /// at the current victim, in ps.
    #[must_use]
    pub fn delay_noise(&self) -> f64 {
        self.delay_noise
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dn={:.3}", self.set, self.delay_noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::CouplingId;
    use dna_waveform::NoisePulse;

    #[test]
    fn accessors() {
        let set = CouplingSet::singleton(CouplingId::new(7));
        let env = Envelope::from_pulse(&NoisePulse::symmetric(0.0, 0.2, 4.0));
        let c = Candidate::new(set.clone(), env.clone(), 1.5);
        assert_eq!(c.set(), &set);
        assert_eq!(c.cardinality(), 1);
        assert_eq!(c.envelope(), &env);
        assert_eq!(c.delay_noise(), 1.5);
        assert!(c.to_string().contains("cc7"));
    }

    #[test]
    fn try_new_rejects_degenerate_delay_noise() {
        // A degenerate envelope with empty support: naive normalization
        // arithmetic over it degenerates to `0.0 / 0.0`. The typed
        // constructor must reject the NaN instead of caching it for a
        // downstream sort to trip over.
        let env = Envelope::zero();
        let width = (env.support_hi() - env.support_lo()).max(0.0);
        let dn = env.peak() / width;
        assert!(dn.is_nan(), "crafted degenerate envelope must divide 0.0 by 0.0");
        let err = Candidate::try_new(CouplingSet::new(), env.clone(), dn).unwrap_err();
        assert!(
            matches!(err, crate::TopKError::NonFiniteDelayNoise { delay_noise } if delay_noise.is_nan())
        );
        assert!(err.to_string().contains("not finite"));

        for bad in [f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(Candidate::try_new(CouplingSet::new(), env.clone(), bad).is_err());
        }
        let ok = Candidate::try_new(CouplingSet::new(), env, 0.25).unwrap();
        assert_eq!(ok.delay_noise(), 0.25);
    }
}
