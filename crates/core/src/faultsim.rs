//! Fault-injection hooks for the robustness test harness.
//!
//! The fault-tolerance layer (per-victim `catch_unwind` quarantine, typed
//! phase-boundary errors) is only trustworthy if it is *exercised* — a
//! recovery path nobody can trigger is a recovery path nobody has tested.
//! This module provides process-global, atomically armed injection points
//! the engine consults at its fault boundaries:
//!
//! * [`arm_panic_at_victim`] — the next sweep panics while enumerating the
//!   given victim (simulates a panicking delay/noise model inside one
//!   victim's cone; must be quarantined, not propagated);
//! * [`arm_nan_at_victim`] — the given victim's candidate delay noises
//!   degrade to NaN (simulates a poisoned waveform reaching superposition;
//!   must surface as a typed error and quarantine the victim);
//! * [`arm_panic_in_prepare`] — timing preparation panics (simulates a
//!   panicking delay model during STA/noise convergence; must surface as
//!   [`TopKError::EnginePanic`](crate::TopKError::EnginePanic), never
//!   abort the process);
//! * [`arm_force_clean_victim`] — the corridor prover fabricates an
//!   *unsound* [`CleanCertificate`](crate::CleanCertificate) claiming the
//!   given victim is provably clean (simulates a prover bug; the
//!   certificate verifier in `dna-lint` and the `whatif --audit`
//!   spot-check must both catch it);
//! * [`arm_corrupt_sched_slot`] — the parallel work-stealing sweep
//!   publishes empty lists into the given victim's result slot while the
//!   serial reference path stays intact (simulates a scheduler
//!   publication bug; the L060 replay audit in `dna-lint` must catch
//!   the slot divergence);
//! * [`arm_drop_sched_publish`] — the sweep never publishes the given
//!   victim's result slot at all (simulates a lost publication; the
//!   collection path must quarantine the victim behind a typed
//!   `SchedulerInvariant` error and a `Degraded` result, never abort);
//! * [`arm_crash_point`] / the `DNA_CRASH_POINT` environment variable —
//!   the versioned artifact store's commit protocol aborts the whole
//!   process (`kill -9` semantics: no unwinding, no destructors, no
//!   flushes) at a named protocol step. Recovery must resume from the
//!   last *committed* generation no matter which step was hit. (Torn
//!   *tails* at arbitrary byte boundaries need no hook: tests truncate a
//!   committed chain file directly, which is byte-for-byte what a
//!   mid-write power cut leaves behind.)
//!
//! Every hook is a single relaxed atomic load when disarmed — negligible
//! against the enumeration work per victim. The hooks are global: tests
//! that arm them must serialize on a lock and [`disarm_all`] when done.
//! Production code never arms anything.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dna_netlist::NetId;

/// Marker prefix of every injected panic message, so a test-side panic
/// hook can suppress the noise of *expected* panics while leaving real
/// ones visible (see [`silence_injected_panics`]).
pub const PANIC_TAG: &str = "dna-faultsim:";

const DISARMED: usize = usize::MAX;

static PANIC_VICTIM: AtomicUsize = AtomicUsize::new(DISARMED);
static NAN_VICTIM: AtomicUsize = AtomicUsize::new(DISARMED);
static PREPARE_PANIC: AtomicBool = AtomicBool::new(false);
static FORCE_CLEAN_VICTIM: AtomicUsize = AtomicUsize::new(DISARMED);
static CORRUPT_SCHED_SLOT: AtomicUsize = AtomicUsize::new(DISARMED);
static DROP_SCHED_PUBLISH: AtomicUsize = AtomicUsize::new(DISARMED);
static CRASH_POINT: AtomicUsize = AtomicUsize::new(DISARMED);

/// Every commit-protocol step the versioned store consults before (or in
/// the middle of) an irreversible disk operation, in protocol order:
///
/// * `pre-append` — before the first byte of a delta append,
/// * `mid-append` — after a prefix of the delta append has hit the file,
/// * `pre-sync` — after the append, before its `fsync`,
/// * `pre-temp` — before the checkpoint temp file is created,
/// * `mid-temp` — after a prefix of the temp file has been written,
/// * `pre-rename` — after the temp `fsync`, before the atomic rename,
/// * `pre-manifest` — after the artifact commit, before the tenant
///   registry records the new generation.
pub const CRASH_POINTS: &[&str] =
    &["pre-append", "mid-append", "pre-sync", "pre-temp", "mid-temp", "pre-rename", "pre-manifest"];

/// Arms a panic inside the enumeration of the victim with net index
/// `index` on every subsequent sweep until [`disarm_all`].
pub fn arm_panic_at_victim(index: usize) {
    PANIC_VICTIM.store(index, Ordering::SeqCst);
}

/// Arms NaN corruption of every candidate delay noise computed at the
/// victim with net index `index` until [`disarm_all`].
pub fn arm_nan_at_victim(index: usize) {
    NAN_VICTIM.store(index, Ordering::SeqCst);
}

/// Arms a panic at the start of timing preparation until [`disarm_all`].
pub fn arm_panic_in_prepare() {
    PREPARE_PANIC.store(true, Ordering::SeqCst);
}

/// Arms fabrication of an unsound clean certificate for the victim with
/// net index `index` on every subsequent what-if refinement until
/// [`disarm_all`]. The prover marks the victim clean *without* a proof, so
/// downstream certificate verification must flag the run as corrupt.
pub fn arm_force_clean_victim(index: usize) {
    FORCE_CLEAN_VICTIM.store(index, Ordering::SeqCst);
}

/// Arms corruption of the parallel scheduler's result slot for the
/// victim with net index `index` until [`disarm_all`]: the work-stealing
/// sweep publishes empty lists there while the serial reference path is
/// untouched, so the L060 replay audit has a real divergence to catch.
pub fn arm_corrupt_sched_slot(index: usize) {
    CORRUPT_SCHED_SLOT.store(index, Ordering::SeqCst);
}

/// Arms *dropping* the publication of the given victim's result slot
/// until [`disarm_all`]: the sweep completes but leaves the slot empty,
/// so the collection path finds a hole. The engine must convert that
/// into a typed [`TopKError::SchedulerInvariant`]
/// (crate::TopKError::SchedulerInvariant) quarantining the victim as
/// `Degraded` — never an `expect()` abort.
pub fn arm_drop_sched_publish(index: usize) {
    DROP_SCHED_PUBLISH.store(index, Ordering::SeqCst);
}

/// Arms a process abort (`kill -9` semantics — no unwinding, no buffered
/// writes survive) at the named commit-protocol step of the versioned
/// artifact store. Returns `false` (and arms nothing) when `point` is not
/// one of [`CRASH_POINTS`]. The same points can be armed from outside the
/// process via the `DNA_CRASH_POINT` environment variable, which is how
/// CI kills a daemon mid-save.
pub fn arm_crash_point(point: &str) -> bool {
    match CRASH_POINTS.iter().position(|&p| p == point) {
        Some(i) => {
            CRASH_POINT.store(i, Ordering::SeqCst);
            true
        }
        None => false,
    }
}

/// Disarms every injection point.
pub fn disarm_all() {
    PANIC_VICTIM.store(DISARMED, Ordering::SeqCst);
    NAN_VICTIM.store(DISARMED, Ordering::SeqCst);
    PREPARE_PANIC.store(false, Ordering::SeqCst);
    FORCE_CLEAN_VICTIM.store(DISARMED, Ordering::SeqCst);
    CORRUPT_SCHED_SLOT.store(DISARMED, Ordering::SeqCst);
    DROP_SCHED_PUBLISH.store(DISARMED, Ordering::SeqCst);
    CRASH_POINT.store(DISARMED, Ordering::SeqCst);
}

/// Installs (once) a panic hook that suppresses the default stderr
/// backtrace for panics carrying the [`PANIC_TAG`] marker — injected
/// panics are *expected* in the fault harness and would otherwise flood
/// test output — while delegating every other panic to the previous hook.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with(PANIC_TAG) {
                previous(info);
            }
        }));
    });
}

/// Engine hook: panics iff a panic is armed for victim `v`.
pub(crate) fn maybe_panic_at_victim(v: NetId) {
    if PANIC_VICTIM.load(Ordering::Relaxed) == v.index() {
        panic!("{PANIC_TAG} injected panic while enumerating victim {}", v.index());
    }
}

/// Engine hook: corrupts `dn` to NaN iff NaN injection is armed for
/// victim `v`; identity otherwise.
pub(crate) fn corrupt_delay_noise(v: NetId, dn: f64) -> f64 {
    if NAN_VICTIM.load(Ordering::Relaxed) == v.index() {
        f64::NAN
    } else {
        dn
    }
}

/// Engine hook: panics iff a prepare-phase panic is armed.
pub(crate) fn maybe_panic_in_prepare() {
    if PREPARE_PANIC.load(Ordering::Relaxed) {
        panic!("{PANIC_TAG} injected panic in timing preparation");
    }
}

/// Prover hook: the net index whose clean certificate should be
/// fabricated, if armed.
pub(crate) fn forced_clean_victim() -> Option<usize> {
    match FORCE_CLEAN_VICTIM.load(Ordering::Relaxed) {
        DISARMED => None,
        index => Some(index),
    }
}

/// Scheduler hook: the net index whose parallel result slot should be
/// corrupted, if armed.
pub(crate) fn corrupt_sched_slot() -> Option<usize> {
    match CORRUPT_SCHED_SLOT.load(Ordering::Relaxed) {
        DISARMED => None,
        index => Some(index),
    }
}

/// Scheduler hook: the net index whose result-slot publication should be
/// dropped entirely, if armed.
pub(crate) fn drop_sched_publish() -> Option<usize> {
    match DROP_SCHED_PUBLISH.load(Ordering::Relaxed) {
        DISARMED => None,
        index => Some(index),
    }
}

/// Store hook: aborts the process iff a crash is armed (atomically or via
/// `DNA_CRASH_POINT`) for this commit-protocol step. The abort is
/// deliberate `kill -9` semantics — `std::process::abort`, not a panic —
/// so no destructor, buffered writer or `Drop`-based cleanup can soften
/// what recovery has to cope with. Called only on artifact/registry save
/// paths; one relaxed load plus (at most) one env read per commit step.
pub(crate) fn maybe_crash(point: &str) {
    let armed = match CRASH_POINT.load(Ordering::Relaxed) {
        DISARMED => false,
        i => CRASH_POINTS.get(i).is_some_and(|&p| p == point),
    };
    if armed || std::env::var("DNA_CRASH_POINT").as_deref() == Ok(point) {
        eprintln!("{PANIC_TAG} crash injected at commit step `{point}` — aborting process");
        std::process::abort();
    }
}
