//! Multi-tenant what-if daemon core: the session manager behind
//! `dna serve`.
//!
//! The paper's workload is a signoff loop: one extracted circuit, many
//! what-if queries. A one-shot CLI pays the full analysis cost per
//! query; this module keeps hot [`WhatIfSession`]s alive across queries
//! and multiplexes many tenants (circuits) through one process:
//!
//! * **One worker thread per hot tenant.** `WhatIfSession<'a, 'c>`
//!   borrows its `TopKAnalysis`, which borrows its `Circuit` — a
//!   self-referential chain that cannot live in a long-lived struct
//!   without ownership gymnastics. It *can* live on a thread's stack:
//!   each hot tenant is a worker thread owning circuit, analysis and
//!   session, fed jobs over a channel. The manager holds only the
//!   channel, the (cheaply cloned) circuit for respawns, and
//!   bookkeeping.
//! * **Capacity-bounded LRU with artifact spill.** At most
//!   [`ServeConfig::capacity`] tenants stay hot. Evicting a tenant asks
//!   its worker to serialize the session into the checksummed `DNAWIFA`
//!   artifact (the `whatif --save` format) and exit; the bytes are kept
//!   in the manager and the next request resumes from them — the
//!   16–86× cold-load win, now automatic. A resume rejected with a
//!   typed [`ArtifactError`] falls back to a from-scratch session and
//!   the *response* that triggered the reload carries the
//!   classification (`corrupt` / `truncated` / `version skew` /
//!   `fingerprint mismatch`), so operators can tell a stale cache from
//!   a broken one.
//! * **Request coalescing.** Scenario requests are what-if *queries*
//!   against the tenant's base session (bit-identical to
//!   `fork().apply(delta)`, the [`WhatIfSession::apply_batch`]
//!   contract), so a worker drains every scenario job queued behind the
//!   one it just popped and answers the whole wave through a single
//!   `apply_batch` — one shared closure/prepare/sweep machine instead
//!   of N. `commit` is the mutating variant and is never coalesced.
//! * **Admission control.** Per-tenant budgets/deadlines are clamped by
//!   server-wide caps at `open`, so no tenant can configure itself past
//!   what the operator allows; the existing budget partition and
//!   `Curtailment` machinery does the actual enforcement and degraded
//!   results say so. A bounded in-flight queue per tenant rejects the
//!   rest as `overloaded` instead of buffering unboundedly.
//! * **Tenant isolation.** A poisoned scenario (panicking victim, NaN
//!   noise) is quarantined per victim by the engine and surfaces as a
//!   `degraded` *response to that tenant only*; a worker thread that
//!   dies outright marks its tenant `quarantined` and every other
//!   tenant keeps being served. No request path aborts the process —
//!   the scheduler's former `expect()` aborts are typed
//!   [`SchedulerInvariant`](TopKError::SchedulerInvariant) errors now.
//! * **Crash-safe durability (opt-in).** A manager created with
//!   [`SessionManager::new_durable`] keeps one artifact *chain* per
//!   tenant on disk (delta-append commits via
//!   [`commit_chain`](crate::commit_chain)) plus an append-only
//!   [`registry`] manifest, both under the write-ahead discipline:
//!   nothing is acknowledged before it is `fsync`ed, and the chain
//!   commits *before* the registry witnesses the new generation. After
//!   any crash — including `kill -9` at an arbitrary byte boundary
//!   mid-save — [`SessionManager::recover`] resumes every tenant from
//!   its last committed generation, truncates torn tails in place, and
//!   quarantines (never aborts on) tenants whose chain or circuit is
//!   beyond salvage.
//!
//! The [`wire`] submodule speaks the loopback protocol: one JSON object
//! per line, std-only, typed error responses. Result queries paginate
//! with the `start_after`/`limit` cursor idiom.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use dna_netlist::Circuit;

use crate::engine::panic_message;
use crate::persist::{commit_chain, fnv1a64, CommitOptions, SaveKind, SaveReport};
use crate::{
    truncate_chain_file, MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKError, WhatIfBatch,
    WhatIfOutcome, WhatIfSession,
};

pub mod registry;
pub mod wire;

pub use registry::{RegistryRecovery, TenantRecord, TenantRegistry};

/// Operator-facing daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum number of *hot* tenants (live sessions). Beyond it the
    /// least-recently-used tenant is spilled to an artifact. `0` is
    /// legal: every tenant is spilled as soon as its request completes
    /// (each request pays one artifact reload — the degenerate LRU).
    pub capacity: usize,
    /// Maximum in-flight jobs per tenant before requests are rejected
    /// as `overloaded`.
    pub max_queue: usize,
    /// Server-wide cap on any tenant's per-victim candidate budget.
    pub victim_budget_cap: Option<usize>,
    /// Server-wide cap on any tenant's global candidate budget.
    pub global_budget_cap: Option<usize>,
    /// Server-wide cap on any tenant's sweep deadline.
    pub deadline_cap: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            capacity: 4,
            max_queue: 64,
            victim_budget_cap: None,
            global_budget_cap: None,
            deadline_cap: None,
        }
    }
}

/// Typed error codes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The named tenant was never opened (or the daemon restarted).
    UnknownTenant,
    /// `open` named a tenant that already exists.
    TenantExists,
    /// The request was syntactically or semantically invalid.
    BadRequest,
    /// The tenant's in-flight queue is full; retry later.
    Overloaded,
    /// The tenant's worker died and was quarantined; other tenants are
    /// unaffected.
    Quarantined,
    /// A session artifact was rejected during spill-reload.
    Artifact,
    /// The engine returned a typed error for this request.
    Engine,
}

impl ErrorCode {
    /// Stable wire identifier of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::TenantExists => "tenant_exists",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Artifact => "artifact",
            ErrorCode::Engine => "engine",
        }
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Everything a client needs from one evaluated scenario, including the
/// [`identity fingerprint`](crate::TopKResult::identity_fingerprint) so
/// responses can be bit-compared against a local replay without pushing
/// `f64`s through decimal formatting.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Whether budgets or quarantined victims curtailed the sweep — the
    /// `Degraded` soundness marker, scoped to this response.
    pub degraded: bool,
    /// Number of quarantined victims.
    pub faults: usize,
    /// Cause of the first quarantined victim, when any.
    pub first_fault: Option<String>,
    /// Selected coupling indices, in canonical order.
    pub set: Vec<usize>,
    /// Sink net index the top-k set was selected at.
    pub sink: usize,
    /// Circuit delay before the change, in ps.
    pub delay_before: f64,
    /// Circuit delay after the change, in ps.
    pub delay_after: f64,
    /// The paper's predicted delay for the selected set, in ps.
    pub predicted_delay: f64,
    /// Widest irredundant list the enumeration held.
    pub peak_list_width: usize,
    /// Raw candidates generated.
    pub generated: usize,
    /// Victims actually re-swept for this scenario.
    pub recomputed_victims: usize,
    /// Structurally dirty victims skipped under clean certificates.
    pub proven_clean_victims: usize,
    /// Identity fingerprint of the underlying [`crate::TopKResult`].
    pub fingerprint: u64,
}

impl ScenarioSummary {
    fn from_outcome(outcome: &WhatIfOutcome) -> Self {
        let r = outcome.result();
        Self {
            degraded: r.is_degraded(),
            faults: r.faults().len(),
            first_fault: r.faults().iter().next().map(|f| f.cause().to_owned()),
            set: r.couplings().iter().map(|c| c.index()).collect(),
            sink: r.sink().index(),
            delay_before: r.delay_before(),
            delay_after: r.delay_after(),
            predicted_delay: r.predicted_delay(),
            peak_list_width: r.peak_list_width(),
            generated: r.generated_candidates(),
            recomputed_victims: outcome.recomputed_victims(),
            proven_clean_victims: outcome.proven_clean_victims(),
            fingerprint: r.identity_fingerprint(),
        }
    }
}

/// Daemon-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Tenants ever opened (hot + spilled + quarantined).
    pub tenants: usize,
    /// Tenants currently hot.
    pub hot: usize,
    /// Tenants currently spilled to in-memory artifacts.
    pub spilled: usize,
    /// Tenants currently cold with their state on disk (durable
    /// managers only).
    pub durable: usize,
    /// Tenants quarantined after a worker death.
    pub quarantined: usize,
    /// Requests answered (including error responses).
    pub served: u64,
    /// Scenario jobs that shared another job's `apply_batch` wave.
    pub coalesced: u64,
    /// LRU evictions (artifact spills).
    pub spills: u64,
    /// Artifact reloads (spilled tenant made hot again).
    pub reloads: u64,
    /// Reloads whose artifact was rejected and fell back from scratch.
    pub reload_fallbacks: u64,
}

/// A daemon response. Every request maps to exactly one of these; the
/// `note` fields carry the spill-reload fallback reason on the first
/// response after a failed resume.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `open` succeeded.
    Opened {
        /// Tenant name.
        tenant: String,
        /// Nets in the tenant's circuit.
        nets: usize,
        /// Couplings in the tenant's circuit.
        couplings: usize,
        /// Base-session identity fingerprint.
        fingerprint: u64,
    },
    /// One scenario evaluated against the base session.
    Scenario {
        /// Tenant name.
        tenant: String,
        /// The evaluated scenario.
        summary: ScenarioSummary,
        /// Jobs answered by the same `apply_batch` wave (≥ 1).
        coalesced: usize,
        /// Spill-reload fallback reason, on the first response after one.
        note: Option<String>,
    },
    /// A batch of scenarios evaluated against the base session.
    Batch {
        /// Tenant name.
        tenant: String,
        /// Per-scenario summaries, in request order.
        summaries: Vec<ScenarioSummary>,
        /// Jobs answered by the same `apply_batch` wave (≥ 1).
        coalesced: usize,
        /// Spill-reload fallback reason, on the first response after one.
        note: Option<String>,
    },
    /// A durable `commit` advanced the tenant's base session.
    Committed {
        /// Tenant name.
        tenant: String,
        /// The committed scenario (now the base state).
        summary: ScenarioSummary,
        /// Spill-reload fallback reason, on the first response after one.
        note: Option<String>,
    },
    /// One page of the base session's selected couplings.
    Page {
        /// Tenant name.
        tenant: String,
        /// Coupling indices with index strictly greater than the
        /// cursor, in canonical order.
        items: Vec<usize>,
        /// Cursor for the next page; `None` when exhausted.
        next: Option<usize>,
        /// Spill-reload fallback reason, on the first response after one.
        note: Option<String>,
    },
    /// The tenant was spilled to an artifact.
    Evicted {
        /// Tenant name.
        tenant: String,
        /// Serialized artifact size.
        artifact_bytes: usize,
    },
    /// Daemon counters.
    Stats(ServeStats),
    /// The daemon acknowledged shutdown.
    Bye,
    /// A typed error.
    Error(ServeError),
}

impl Response {
    fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Error(ServeError { code, message: message.into() })
    }
}

// ---------------------------------------------------------------------
// Tenant worker

enum Job {
    Scenario {
        delta: MaskDelta,
        reply: Sender<Response>,
    },
    Batch {
        deltas: Vec<MaskDelta>,
        reply: Sender<Response>,
    },
    Commit {
        delta: MaskDelta,
        reply: Sender<Response>,
    },
    Query {
        start_after: Option<usize>,
        limit: usize,
        reply: Sender<Response>,
    },
    Spill {
        reply: Sender<Vec<u8>>,
    },
    /// Commit the session onto its on-disk chain (durable tenants only).
    /// With `close` the worker exits after a *successful* persist — the
    /// durable analogue of [`Job::Spill`]; on failure it stays alive so
    /// the tenant's state is not lost.
    Persist {
        close: bool,
        reply: Sender<Result<PersistOutcome, String>>,
    },
    Close,
}

/// What one durable persist wrote.
#[derive(Debug, Clone, Copy)]
struct PersistOutcome {
    report: SaveReport,
    fingerprint: u64,
}

struct StartupInfo {
    nets: usize,
    couplings: usize,
    fingerprint: u64,
    /// `Some(reason)` when a resume was rejected and the session was
    /// rebuilt from scratch.
    fallback: Option<String>,
}

struct Boot {
    tenant: String,
    circuit: Circuit,
    mode: Mode,
    k: usize,
    config: TopKConfig,
    artifact: Option<Vec<u8>>,
    /// Chain file this worker commits to on [`Job::Persist`]; `None`
    /// for non-durable tenants.
    store: Option<PathBuf>,
    startup: Sender<Result<StartupInfo, String>>,
    jobs: Receiver<Job>,
    coalesced: Arc<AtomicU64>,
}

/// Classifies a resume failure for the response `note`.
fn resume_reason(e: &TopKError) -> String {
    match e {
        TopKError::Artifact(a) => format!("artifact rejected ({}): {a}", a.class()),
        other => format!("resume failed: {other}"),
    }
}

fn tenant_loop(boot: &Boot) {
    let analysis = TopKAnalysis::new(&boot.circuit, boot.config);
    let started = match &boot.artifact {
        Some(bytes) => match WhatIfSession::resume(&analysis, bytes) {
            Ok(session) => Ok((session, None)),
            Err(e) => WhatIfSession::start(&analysis, boot.mode, boot.k)
                .map(|s| (s, Some(resume_reason(&e)))),
        },
        None => WhatIfSession::start(&analysis, boot.mode, boot.k).map(|s| (s, None)),
    };
    let (mut session, mut note) = match started {
        Ok(pair) => pair,
        Err(e) => {
            let _ = boot.startup.send(Err(e.to_string()));
            return;
        }
    };
    let info = StartupInfo {
        nets: boot.circuit.num_nets(),
        couplings: boot.circuit.num_couplings(),
        fingerprint: session.result().identity_fingerprint(),
        fallback: note.clone(),
    };
    if boot.startup.send(Ok(info)).is_err() {
        return;
    }

    let mut stash: Option<Job> = None;
    loop {
        let job = match stash.take() {
            Some(j) => j,
            None => match boot.jobs.recv() {
                Ok(j) => j,
                Err(_) => return,
            },
        };
        match job {
            first @ (Job::Scenario { .. } | Job::Batch { .. }) => {
                // Coalesce: every scenario job already queued rides the
                // same `apply_batch` machine. A non-coalescable job
                // stops the drain and is handled next iteration.
                let mut wave = vec![first];
                loop {
                    match boot.jobs.try_recv() {
                        Ok(j @ (Job::Scenario { .. } | Job::Batch { .. })) => wave.push(j),
                        Ok(other) => {
                            stash = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                    }
                }
                if wave.len() > 1 {
                    boot.coalesced.fetch_add(wave.len() as u64 - 1, Ordering::Relaxed);
                }
                run_wave(&boot.tenant, &session, wave, &mut note);
            }
            Job::Commit { delta, reply } => {
                let response = match session.apply(&delta) {
                    Ok(outcome) => Response::Committed {
                        tenant: boot.tenant.clone(),
                        summary: ScenarioSummary::from_outcome(&outcome),
                        note: note.take(),
                    },
                    Err(e) => Response::err(ErrorCode::Engine, e.to_string()),
                };
                let _ = reply.send(response);
            }
            Job::Query { start_after, limit, reply } => {
                let all = session.result().couplings();
                let items: Vec<usize> = all
                    .iter()
                    .map(|c| c.index())
                    .filter(|&i| start_after.is_none_or(|cursor| i > cursor))
                    .take(limit)
                    .collect();
                let next = match items.last() {
                    Some(&last) if all.iter().any(|c| c.index() > last) => Some(last),
                    _ => None,
                };
                let _ = reply.send(Response::Page {
                    tenant: boot.tenant.clone(),
                    items,
                    next,
                    note: note.take(),
                });
            }
            Job::Spill { reply } => {
                let _ = reply.send(session.save_artifact());
                return;
            }
            Job::Persist { close, reply } => {
                let result = match &boot.store {
                    Some(path) => commit_chain(&mut session, path, &CommitOptions::default())
                        .map(|report| PersistOutcome {
                            report,
                            fingerprint: session.result().identity_fingerprint(),
                        })
                        .map_err(|e| e.to_string()),
                    None => Err("tenant has no durable store".to_owned()),
                };
                let exit = close && result.is_ok();
                let _ = reply.send(result);
                if exit {
                    return;
                }
            }
            Job::Close => return,
        }
    }
}

/// Answers one coalesced wave of scenario jobs through a single
/// `apply_batch` call. Jobs are flattened in queue order, so every
/// summary is bit-identical to a sequential `fork().apply` replay.
fn run_wave(
    tenant: &str,
    session: &WhatIfSession<'_, '_>,
    wave: Vec<Job>,
    note: &mut Option<String>,
) {
    let mut deltas: Vec<MaskDelta> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for job in &wave {
        let start = deltas.len();
        match job {
            Job::Scenario { delta, .. } => deltas.push(delta.clone()),
            Job::Batch { deltas: d, .. } => deltas.extend(d.iter().cloned()),
            _ => unreachable!("wave holds only scenario jobs"),
        }
        spans.push((start, deltas.len()));
    }
    let coalesced = wave.len();
    match session.apply_batch(&WhatIfBatch::from_deltas(deltas)) {
        Ok(outcome) => {
            let summaries: Vec<ScenarioSummary> =
                outcome.scenarios().iter().map(ScenarioSummary::from_outcome).collect();
            for (job, (start, end)) in wave.into_iter().zip(spans) {
                let response = match &job {
                    Job::Scenario { .. } => Response::Scenario {
                        tenant: tenant.to_owned(),
                        summary: summaries[start].clone(),
                        coalesced,
                        note: note.take(),
                    },
                    Job::Batch { .. } => Response::Batch {
                        tenant: tenant.to_owned(),
                        summaries: summaries[start..end].to_vec(),
                        coalesced,
                        note: note.take(),
                    },
                    _ => unreachable!("wave holds only scenario jobs"),
                };
                match job {
                    Job::Scenario { reply, .. } | Job::Batch { reply, .. } => {
                        let _ = reply.send(response);
                    }
                    _ => unreachable!("wave holds only scenario jobs"),
                }
            }
        }
        Err(e) => {
            // One poisoned wave degrades only these responses; the
            // session state is untouched (`apply_batch` is read-only).
            let message = e.to_string();
            for job in wave {
                if let Job::Scenario { reply, .. } | Job::Batch { reply, .. } = job {
                    let _ = reply.send(Response::err(ErrorCode::Engine, message.clone()));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Manager

struct Handle {
    jobs: Sender<Job>,
    join: JoinHandle<Result<(), String>>,
}

enum TenantState {
    Hot(Handle),
    Spilled(Vec<u8>),
    /// Cold with its state on disk (durable tenants): the artifact
    /// chain named by the tenant's [`DurableInfo`] holds the session;
    /// the next request reloads it from the file.
    Durable,
    Quarantined(String),
}

/// The durable-side identity of a tenant: where its circuit came from,
/// which chain file holds its state, and the circuit fingerprint that
/// pins both to the exact netlist they were opened against.
#[derive(Debug, Clone)]
struct DurableInfo {
    source: String,
    artifact: String,
    circuit_fingerprint: u64,
}

struct Tenant {
    circuit: Circuit,
    mode: Mode,
    k: usize,
    config: TopKConfig,
    state: TenantState,
    last_used: u64,
    pending: Arc<AtomicUsize>,
    /// `Some` iff the tenant persists to the manager's state directory.
    durable: Option<DurableInfo>,
}

struct Inner {
    tenants: HashMap<String, Tenant>,
    clock: u64,
    opened: usize,
}

/// The daemon core: owns every tenant and serves requests from any
/// number of client threads. All entry points are `&self`; the manager
/// is meant to be shared behind an [`Arc`].
pub struct SessionManager {
    config: ServeConfig,
    inner: Mutex<Inner>,
    served: AtomicU64,
    coalesced: Arc<AtomicU64>,
    spills: AtomicU64,
    reloads: AtomicU64,
    reload_fallbacks: AtomicU64,
    /// State directory + manifest, present iff the manager is durable.
    /// Lock order: `inner` before `registry`, always.
    state_dir: Option<PathBuf>,
    registry: Option<Mutex<TenantRegistry>>,
    registry_recovery: RegistryRecovery,
}

impl SessionManager {
    /// Creates an empty, in-memory-only manager (nothing survives the
    /// process).
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner { tenants: HashMap::new(), clock: 0, opened: 0 }),
            served: AtomicU64::new(0),
            coalesced: Arc::new(AtomicU64::new(0)),
            spills: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_fallbacks: AtomicU64::new(0),
            state_dir: None,
            registry: None,
            registry_recovery: RegistryRecovery::default(),
        }
    }

    /// Creates a durable manager backed by `state_dir`: tenants opened
    /// with a circuit source persist their sessions as artifact chains
    /// there, the `tenants.dnareg` manifest records them, and
    /// [`recover`](Self::recover) rebuilds everything after a restart.
    /// Opening the manifest already repairs a torn tail in place; the
    /// salvage details are reported by `recover`.
    ///
    /// # Errors
    ///
    /// [`TopKError::Artifact`] when the directory cannot be created or
    /// the manifest exists but is not a registry file.
    pub fn new_durable(config: ServeConfig, state_dir: &Path) -> Result<Self, TopKError> {
        std::fs::create_dir_all(state_dir)
            .map_err(|e| crate::persist::io_err("create state directory", state_dir, &e))?;
        let (registry, recovery) = TenantRegistry::open(&state_dir.join("tenants.dnareg"))?;
        let mut manager = Self::new(config);
        manager.state_dir = Some(state_dir.to_owned());
        manager.registry = Some(Mutex::new(registry));
        manager.registry_recovery = recovery;
        Ok(manager)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_registry(&self) -> Option<std::sync::MutexGuard<'_, TenantRegistry>> {
        self.registry.as_ref().map(|r| r.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn count(&self, response: Response) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// Clamps a tenant's requested budgets/deadline to the server caps.
    fn admit(&self, mut config: TopKConfig) -> TopKConfig {
        if let Some(cap) = self.config.victim_budget_cap {
            config.victim_candidate_budget =
                Some(config.victim_candidate_budget.map_or(cap, |b| b.min(cap)));
        }
        if let Some(cap) = self.config.global_budget_cap {
            config.global_candidate_budget =
                Some(config.global_candidate_budget.map_or(cap, |b| b.min(cap)));
        }
        if let Some(cap) = self.config.deadline_cap {
            config.deadline = Some(config.deadline.map_or(cap, |d| d.min(cap)));
        }
        config
    }

    /// Opens a new tenant around `circuit`, paying the base analysis
    /// up front. The tenant counts against the hot capacity
    /// immediately. In-memory only — on a durable manager, use
    /// [`open_with_source`](Self::open_with_source) so the tenant
    /// survives a restart.
    pub fn open(
        &self,
        tenant: &str,
        circuit: Circuit,
        mode: Mode,
        k: usize,
        config: TopKConfig,
    ) -> Response {
        self.open_with_source(tenant, circuit, None, mode, k, config)
    }

    /// Opens a new tenant, optionally naming the circuit `source` it
    /// was resolved from. On a durable manager a sourced open is
    /// write-ahead: the base session is checkpointed to its chain file
    /// and recorded in the manifest *before* the open is acknowledged,
    /// so a tenant the client was told exists survives any later crash.
    /// A persist failure fails the open (the daemon does not accept
    /// durable tenants it cannot persist).
    pub fn open_with_source(
        &self,
        tenant: &str,
        circuit: Circuit,
        source: Option<&str>,
        mode: Mode,
        k: usize,
        config: TopKConfig,
    ) -> Response {
        let config = self.admit(config);
        {
            let inner = self.lock();
            if inner.tenants.contains_key(tenant) {
                return self.count(Response::err(
                    ErrorCode::TenantExists,
                    format!("tenant `{tenant}` already open"),
                ));
            }
        }
        let durable = match (&self.state_dir, source) {
            (Some(_), Some(src)) => Some(DurableInfo {
                source: src.to_owned(),
                artifact: artifact_file_name(tenant),
                circuit_fingerprint: circuit_fingerprint(&circuit),
            }),
            _ => None,
        };
        let store = self.store_path(durable.as_ref());
        let (info, handle) =
            match spawn_tenant(tenant, &circuit, mode, k, config, None, store, &self.coalesced) {
                Ok(pair) => pair,
                Err(message) => return self.count(Response::err(ErrorCode::Engine, message)),
            };
        if let Some(d) = &durable {
            // Write-ahead: checkpoint + manifest record before the open
            // is acknowledged or the tenant becomes visible.
            if let Err(cause) = self.persist_via(&handle, tenant, d, mode, k, &config) {
                let _ = handle.jobs.send(Job::Close);
                let _ = handle.join.join();
                return self.count(Response::err(
                    ErrorCode::Engine,
                    format!("cannot persist tenant `{tenant}`: {cause}"),
                ));
            }
        }
        let mut inner = self.lock();
        if inner.tenants.contains_key(tenant) {
            // Lost an open race; shut the fresh worker down.
            let _ = handle.jobs.send(Job::Close);
            let _ = handle.join.join();
            return self.count(Response::err(
                ErrorCode::TenantExists,
                format!("tenant `{tenant}` already open"),
            ));
        }
        inner.clock += 1;
        inner.opened += 1;
        let last_used = inner.clock;
        inner.tenants.insert(
            tenant.to_owned(),
            Tenant {
                circuit,
                mode,
                k,
                config,
                state: TenantState::Hot(handle),
                last_used,
                pending: Arc::new(AtomicUsize::new(0)),
                durable,
            },
        );
        drop(inner);
        self.enforce_capacity();
        self.count(Response::Opened {
            tenant: tenant.to_owned(),
            nets: info.nets,
            couplings: info.couplings,
            fingerprint: info.fingerprint,
        })
    }

    /// Absolute chain path for a durable tenant.
    fn store_path(&self, durable: Option<&DurableInfo>) -> Option<PathBuf> {
        match (&self.state_dir, durable) {
            (Some(dir), Some(d)) => Some(dir.join(&d.artifact)),
            _ => None,
        }
    }

    /// Sends one `Persist` job to a hot worker and records the outcome
    /// in the manifest.
    fn persist_via(
        &self,
        handle: &Handle,
        tenant: &str,
        d: &DurableInfo,
        mode: Mode,
        k: usize,
        config: &TopKConfig,
    ) -> Result<PersistOutcome, String> {
        let (tx, rx) = mpsc::channel();
        if handle.jobs.send(Job::Persist { close: false, reply: tx }).is_err() {
            return Err("worker exited before persisting".to_owned());
        }
        let outcome = match rx.recv() {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(cause)) => return Err(cause),
            Err(_) => return Err("worker died while persisting".to_owned()),
        };
        self.record_in_manifest(tenant, d, mode, k, config, &outcome)?;
        Ok(outcome)
    }

    /// Appends the tenant's current durable facts to the manifest.
    fn record_in_manifest(
        &self,
        tenant: &str,
        d: &DurableInfo,
        mode: Mode,
        k: usize,
        config: &TopKConfig,
        outcome: &PersistOutcome,
    ) -> Result<(), String> {
        let Some(mut reg) = self.lock_registry() else {
            return Err("manager has no registry".to_owned());
        };
        reg.put(TenantRecord {
            tenant: tenant.to_owned(),
            circuit_source: d.source.clone(),
            mode,
            k,
            victim_budget: config.victim_candidate_budget,
            global_budget: config.global_candidate_budget,
            deadline_ms: config.deadline.map(|d| d.as_millis() as u64),
            artifact: d.artifact.clone(),
            generation: outcome.report.generation,
            fingerprint: outcome.fingerprint,
            circuit_fingerprint: d.circuit_fingerprint,
        })
        .map_err(|e| e.to_string())
    }

    /// Evaluates one scenario against the tenant's base session.
    pub fn scenario(&self, tenant: &str, delta: MaskDelta) -> Response {
        self.tenant_request(tenant, |reply| Job::Scenario { delta: delta.clone(), reply })
    }

    /// Evaluates a batch of scenarios against the tenant's base session.
    pub fn batch(&self, tenant: &str, deltas: Vec<MaskDelta>) -> Response {
        self.tenant_request(tenant, |reply| Job::Batch { deltas: deltas.clone(), reply })
    }

    /// Durably applies `delta` to the tenant's base session. On a
    /// durable tenant the new generation is committed to its chain
    /// (a delta append when possible) and witnessed by the manifest
    /// before the response is returned; a persist failure is reported
    /// as a typed error — the state advanced in memory but is *not*
    /// crash-safe, and the message says so.
    pub fn commit(&self, tenant: &str, delta: MaskDelta) -> Response {
        let response =
            self.tenant_request(tenant, |reply| Job::Commit { delta: delta.clone(), reply });
        if matches!(response, Response::Committed { .. }) {
            if let Err(cause) = self.persist_if_durable(tenant) {
                return Response::err(
                    ErrorCode::Engine,
                    format!(
                        "scenario committed in memory, but persisting tenant `{tenant}` failed: {cause}"
                    ),
                );
            }
        }
        response
    }

    /// Persists a durable tenant's current state if it is still hot; a
    /// tenant the LRU already turned cold was persisted by that spill.
    /// No-op for non-durable tenants and managers.
    fn persist_if_durable(&self, tenant: &str) -> Result<(), String> {
        let inner = self.lock();
        let Some(t) = inner.tenants.get(tenant) else { return Ok(()) };
        let Some(d) = t.durable.clone() else { return Ok(()) };
        let TenantState::Hot(handle) = &t.state else { return Ok(()) };
        let (jobs, join_alive) = (handle.jobs.clone(), !handle.join.is_finished());
        let (mode, k, config) = (t.mode, t.k, t.config);
        drop(inner);
        // A send/recv failure can mean a concurrent LRU spill closed the
        // worker — in which case that spill already persisted the state.
        let or_spilled = |cause: String| -> Result<(), String> {
            let inner = self.lock();
            match inner.tenants.get(tenant) {
                Some(t) if matches!(t.state, TenantState::Durable) => Ok(()),
                _ => Err(cause),
            }
        };
        if !join_alive {
            return or_spilled("worker died before persisting".to_owned());
        }
        let (tx, rx) = mpsc::channel();
        if jobs.send(Job::Persist { close: false, reply: tx }).is_err() {
            return or_spilled("worker exited before persisting".to_owned());
        }
        let outcome = match rx.recv() {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(cause)) => return Err(cause),
            Err(_) => return or_spilled("worker died while persisting".to_owned()),
        };
        self.record_in_manifest(tenant, &d, mode, k, &config, &outcome)
    }

    /// Pages through the tenant's current top-k couplings with the
    /// `start_after`/`limit` cursor idiom.
    pub fn query(&self, tenant: &str, start_after: Option<usize>, limit: usize) -> Response {
        self.tenant_request(tenant, |reply| Job::Query { start_after, limit, reply })
    }

    /// Forces the tenant to spill to its artifact (mostly for tests and
    /// operators; the LRU spills automatically past capacity).
    pub fn evict(&self, tenant: &str) -> Response {
        let mut inner = self.lock();
        let Some(t) = inner.tenants.get_mut(tenant) else {
            drop(inner);
            return self
                .count(Response::err(ErrorCode::UnknownTenant, format!("no tenant `{tenant}`")));
        };
        match &t.state {
            TenantState::Spilled(bytes) => {
                let bytes = bytes.len();
                drop(inner);
                self.count(Response::Evicted { tenant: tenant.to_owned(), artifact_bytes: bytes })
            }
            TenantState::Durable => {
                let bytes = self
                    .store_path(t.durable.as_ref())
                    .and_then(|p| std::fs::metadata(p).ok())
                    .map_or(0, |m| m.len() as usize);
                drop(inner);
                self.count(Response::Evicted { tenant: tenant.to_owned(), artifact_bytes: bytes })
            }
            TenantState::Quarantined(cause) => {
                let cause = cause.clone();
                drop(inner);
                self.count(Response::err(ErrorCode::Quarantined, cause))
            }
            TenantState::Hot(_) => {
                let response = match spill_tenant(t) {
                    Ok((bytes, outcome)) => {
                        self.spills.fetch_add(1, Ordering::Relaxed);
                        self.witness_spill(tenant, t, outcome.as_ref());
                        Response::Evicted { tenant: tenant.to_owned(), artifact_bytes: bytes }
                    }
                    Err(cause) => Response::err(ErrorCode::Quarantined, cause),
                };
                drop(inner);
                self.count(response)
            }
        }
    }

    /// Records a durable spill's outcome in the manifest (no-op for
    /// in-memory spills). A manifest failure is logged, not fatal: the
    /// *chain* is already committed, and recovery trusts the chain.
    fn witness_spill(&self, name: &str, t: &Tenant, outcome: Option<&PersistOutcome>) {
        let (Some(d), Some(outcome)) = (&t.durable, outcome) else { return };
        if let Err(cause) = self.record_in_manifest(name, d, t.mode, t.k, &t.config, outcome) {
            eprintln!("dna-serve: manifest update for tenant `{name}` failed: {cause}");
        }
    }

    /// Daemon counters.
    pub fn stats(&self) -> Response {
        let inner = self.lock();
        let mut stats = ServeStats {
            tenants: inner.opened,
            served: self.served.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_fallbacks: self.reload_fallbacks.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        for t in inner.tenants.values() {
            match t.state {
                TenantState::Hot(_) => stats.hot += 1,
                TenantState::Spilled(_) => stats.spilled += 1,
                TenantState::Durable => stats.durable += 1,
                TenantState::Quarantined(_) => stats.quarantined += 1,
            }
        }
        drop(inner);
        self.count(Response::Stats(stats))
    }

    /// Spills every hot tenant and joins every worker — durable tenants
    /// are committed to their chains and witnessed by the manifest, with
    /// one log line per tenant, so a graceful exit loses nothing. The
    /// manager can keep serving afterwards (tenants reload on demand);
    /// callers that are exiting simply drop it.
    pub fn shutdown(&self) -> Response {
        let mut inner = self.lock();
        let names: Vec<String> = inner.tenants.keys().cloned().collect();
        for name in names {
            if let Some(t) = inner.tenants.get_mut(&name) {
                if matches!(t.state, TenantState::Hot(_)) {
                    let durable = t.durable.is_some();
                    match spill_tenant(t) {
                        Ok((_, outcome)) => {
                            self.spills.fetch_add(1, Ordering::Relaxed);
                            self.witness_spill(&name, t, outcome.as_ref());
                            if let Some(out) = outcome {
                                eprintln!(
                                    "dna-serve: flushed tenant `{name}` to its chain \
                                     (generation {}, {}, {} bytes written)",
                                    out.report.generation,
                                    save_kind_label(out.report.kind),
                                    out.report.bytes_written,
                                );
                            }
                        }
                        Err(cause) if durable => {
                            eprintln!("dna-serve: could not flush tenant `{name}`: {cause}");
                        }
                        Err(_) => {}
                    }
                }
            }
        }
        drop(inner);
        self.count(Response::Bye)
    }

    /// Sends one job to a (hot) tenant and waits for the response,
    /// respawning spilled tenants and retrying around spill races.
    fn tenant_request(&self, tenant: &str, build: impl Fn(Sender<Response>) -> Job) -> Response {
        for _attempt in 0..4 {
            let (jobs, pending) = match self.ensure_hot(tenant) {
                Ok(pair) => pair,
                Err(response) => return self.count(response),
            };
            if pending.load(Ordering::Relaxed) >= self.config.max_queue {
                return self.count(Response::err(
                    ErrorCode::Overloaded,
                    format!("tenant `{tenant}` has {} jobs in flight", self.config.max_queue),
                ));
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            pending.fetch_add(1, Ordering::Relaxed);
            if jobs.send(build(reply_tx)).is_err() {
                // The worker exited between `ensure_hot` and the send
                // (an eviction race); respawn and retry.
                pending.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let outcome = reply_rx.recv();
            pending.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(response) => {
                    let response = self.count(response);
                    self.enforce_capacity();
                    return response;
                }
                // The job was queued behind a spill and dropped when the
                // worker exited; retry against the respawned tenant.
                Err(_) => continue,
            }
        }
        self.count(Response::err(
            ErrorCode::Overloaded,
            format!("tenant `{tenant}` kept restarting; retry"),
        ))
    }

    /// Makes `tenant` hot (respawning from its artifact if spilled) and
    /// returns its job channel.
    // The Err is the ready-to-send response; it is constructed once per
    // failed request, so its size does not matter on this path.
    #[allow(clippy::result_large_err)]
    fn ensure_hot(&self, tenant: &str) -> Result<(Sender<Job>, Arc<AtomicUsize>), Response> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let Some(t) = inner.tenants.get_mut(tenant) else {
            return Err(Response::err(ErrorCode::UnknownTenant, format!("no tenant `{tenant}`")));
        };
        t.last_used = clock;
        match &mut t.state {
            TenantState::Hot(handle) => {
                // A worker that died without being spilled (a panic that
                // escaped the engine's boundaries) is detected by its
                // closed channel; harvest the cause and quarantine.
                if handle.join.is_finished() {
                    let dead =
                        std::mem::replace(&mut t.state, TenantState::Quarantined(String::new()));
                    let cause = match dead {
                        TenantState::Hot(h) => match h.join.join() {
                            Ok(Ok(())) => "worker exited unexpectedly".to_owned(),
                            Ok(Err(cause)) => cause,
                            Err(payload) => panic_message(payload.as_ref()),
                        },
                        _ => unreachable!("state was hot"),
                    };
                    let cause = if cause.is_empty() { "worker died".to_owned() } else { cause };
                    t.state = TenantState::Quarantined(cause.clone());
                    return Err(Response::err(ErrorCode::Quarantined, cause));
                }
                Ok((handle.jobs.clone(), t.pending.clone()))
            }
            TenantState::Spilled(artifact) => {
                let artifact = std::mem::take(artifact);
                self.reloads.fetch_add(1, Ordering::Relaxed);
                let store = self.store_path(t.durable.as_ref());
                match spawn_tenant(
                    tenant,
                    &t.circuit,
                    t.mode,
                    t.k,
                    t.config,
                    Some(artifact.clone()),
                    store,
                    &self.coalesced,
                ) {
                    Ok((info, handle)) => {
                        if info.fallback.is_some() {
                            self.reload_fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                        let jobs = handle.jobs.clone();
                        t.state = TenantState::Hot(handle);
                        Ok((jobs, t.pending.clone()))
                    }
                    Err(message) => {
                        // Keep the artifact so a later retry can try
                        // again (e.g. transient thread-spawn failure).
                        t.state = TenantState::Spilled(artifact);
                        Err(Response::err(ErrorCode::Engine, message))
                    }
                }
            }
            TenantState::Durable => {
                // Cold durable tenant: reload the chain from disk.
                let store = self.store_path(t.durable.as_ref());
                let Some(path) = store else {
                    return Err(Response::err(
                        ErrorCode::Engine,
                        format!("tenant `{tenant}` is durable but the manager has no state dir"),
                    ));
                };
                let bytes = match std::fs::read(&path) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        return Err(Response::err(
                            ErrorCode::Artifact,
                            format!("cannot read chain `{}`: {e}", path.display()),
                        ))
                    }
                };
                self.reloads.fetch_add(1, Ordering::Relaxed);
                match spawn_tenant(
                    tenant,
                    &t.circuit,
                    t.mode,
                    t.k,
                    t.config,
                    Some(bytes),
                    Some(path),
                    &self.coalesced,
                ) {
                    Ok((info, handle)) => {
                        if info.fallback.is_some() {
                            self.reload_fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                        let jobs = handle.jobs.clone();
                        t.state = TenantState::Hot(handle);
                        Ok((jobs, t.pending.clone()))
                    }
                    // The chain file is still on disk; a later retry can
                    // try again.
                    Err(message) => Err(Response::err(ErrorCode::Engine, message)),
                }
            }
            TenantState::Quarantined(cause) => {
                Err(Response::err(ErrorCode::Quarantined, cause.clone()))
            }
        }
    }

    /// Spills least-recently-used hot tenants until at most
    /// [`ServeConfig::capacity`] remain hot.
    fn enforce_capacity(&self) {
        let mut inner = self.lock();
        loop {
            let hot = inner
                .tenants
                .iter()
                .filter(|(_, t)| matches!(t.state, TenantState::Hot(_)))
                .count();
            if hot <= self.config.capacity {
                return;
            }
            let Some(name) = inner
                .tenants
                .iter()
                .filter(|(_, t)| matches!(t.state, TenantState::Hot(_)))
                .min_by_key(|(_, t)| t.last_used)
                .map(|(name, _)| name.clone())
            else {
                return;
            };
            if let Some(t) = inner.tenants.get_mut(&name) {
                if let Ok((_, outcome)) = spill_tenant(t) {
                    self.spills.fetch_add(1, Ordering::Relaxed);
                    self.witness_spill(&name, t, outcome.as_ref());
                }
            }
        }
    }

    /// Rebuilds every tenant recorded in the manifest — the
    /// `dna serve --recover` pass. For each entry: re-resolve the
    /// circuit through `load_circuit`, verify its fingerprint, load the
    /// chain leniently (salvaging the longest committed prefix),
    /// truncate any torn tail *in place*, and register the tenant cold
    /// ([`TenantState::Durable`]). A tenant whose circuit is missing,
    /// changed, or whose chain is beyond salvage is quarantined with a
    /// typed reason — recovery never aborts the daemon. Stray `.tmp`
    /// files from checkpoint renames that never happened are removed.
    ///
    /// No-op (empty report) on a non-durable manager.
    pub fn recover(
        &self,
        load_circuit: &dyn Fn(&str) -> Result<Circuit, String>,
    ) -> RecoveryReport {
        let mut report = RecoveryReport {
            tenants: Vec::new(),
            registry: self.registry_recovery.clone(),
            stale_temp_files: 0,
        };
        let Some(state_dir) = self.state_dir.clone() else { return report };
        // A crash between temp-write and rename leaves a `.tmp` sibling
        // that no commit will ever read; sweep them out.
        if let Ok(dir) = std::fs::read_dir(&state_dir) {
            for entry in dir.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "tmp")
                    && std::fs::remove_file(&path).is_ok()
                {
                    report.stale_temp_files += 1;
                }
            }
        }
        let entries: Vec<TenantRecord> = match self.lock_registry() {
            Some(reg) => reg.entries().values().cloned().collect(),
            None => Vec::new(),
        };
        for rec in entries {
            let outcome = self.recover_tenant(&state_dir, &rec, load_circuit);
            report.tenants.push(TenantRecovery { tenant: rec.tenant, outcome });
        }
        report
    }

    /// Recovers one manifest entry; inserts the tenant (cold or
    /// quarantined) and returns what happened.
    fn recover_tenant(
        &self,
        state_dir: &Path,
        rec: &TenantRecord,
        load_circuit: &dyn Fn(&str) -> Result<Circuit, String>,
    ) -> RecoverOutcome {
        let quarantine = |reason: String, circuit: Option<Circuit>| -> RecoverOutcome {
            if let Some(circuit) = circuit {
                self.insert_recovered(rec, circuit, TenantState::Quarantined(reason.clone()));
            }
            RecoverOutcome::Quarantined { reason }
        };
        let circuit = match load_circuit(&rec.circuit_source) {
            Ok(c) => c,
            Err(e) => {
                return quarantine(
                    format!("circuit `{}` unavailable: {e}", rec.circuit_source),
                    None,
                )
            }
        };
        if circuit_fingerprint(&circuit) != rec.circuit_fingerprint {
            return quarantine(
                format!(
                    "circuit `{}` changed since the tenant was opened (fingerprint mismatch)",
                    rec.circuit_source
                ),
                Some(circuit),
            );
        }
        let path = state_dir.join(&rec.artifact);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                return quarantine(
                    format!("chain `{}` unreadable: {e}", path.display()),
                    Some(circuit),
                )
            }
        };
        let config = rec_config(rec);
        let (generation, fingerprint, recovery) = {
            let analysis = TopKAnalysis::new(&circuit, config);
            match WhatIfSession::resume_lenient(&analysis, &bytes) {
                Ok((session, recovery)) => {
                    let fingerprint = session.result().identity_fingerprint();
                    (recovery.generation, fingerprint, recovery)
                }
                Err(e) => {
                    return quarantine(format!("chain unrecoverable: {e}"), Some(circuit));
                }
            }
        };
        // Repair the file in place: drop the torn/uncommitted suffix so
        // the next delta append never splices onto garbage.
        if recovery.truncated_bytes > 0 {
            if let Err(e) = truncate_chain_file(&path, recovery.valid_bytes) {
                return quarantine(
                    format!(
                        "chain repair (truncate to {} bytes) failed: {e}",
                        recovery.valid_bytes
                    ),
                    Some(circuit),
                );
            }
        }
        // Catch the manifest up when the chain committed further than
        // the registry witnessed (a `pre-manifest` crash) or the repair
        // rolled a never-committed suffix back.
        if generation != rec.generation || recovery.truncated_bytes > 0 {
            let mut updated = rec.clone();
            updated.generation = generation;
            updated.fingerprint = fingerprint;
            if let Some(mut reg) = self.lock_registry() {
                if let Err(e) = reg.put(updated) {
                    eprintln!(
                        "dna-serve: manifest catch-up for tenant `{}` failed: {e}",
                        rec.tenant
                    );
                }
            }
        }
        self.insert_recovered(rec, circuit, TenantState::Durable);
        RecoverOutcome::Resumed {
            generation,
            fingerprint,
            repaired_bytes: recovery.truncated_bytes,
            damage: recovery.damage,
        }
    }

    /// Registers a recovered tenant in the manager's map.
    fn insert_recovered(&self, rec: &TenantRecord, circuit: Circuit, state: TenantState) {
        let mut inner = self.lock();
        inner.clock += 1;
        inner.opened += 1;
        let last_used = inner.clock;
        inner.tenants.insert(
            rec.tenant.clone(),
            Tenant {
                circuit,
                mode: rec.mode,
                k: rec.k,
                config: rec_config(rec),
                state,
                last_used,
                pending: Arc::new(AtomicUsize::new(0)),
                durable: Some(DurableInfo {
                    source: rec.circuit_source.clone(),
                    artifact: rec.artifact.clone(),
                    circuit_fingerprint: rec.circuit_fingerprint,
                }),
            },
        );
    }
}

/// Rebuilds the engine config a tenant was admitted with. Only the
/// admission-controlled knobs (budgets, deadline) are durable; the rest
/// of [`TopKConfig`] is structural and normalized away by the artifact
/// config fingerprint.
fn rec_config(rec: &TenantRecord) -> TopKConfig {
    TopKConfig {
        victim_candidate_budget: rec.victim_budget,
        global_candidate_budget: rec.global_budget,
        deadline: rec.deadline_ms.map(Duration::from_millis),
        ..TopKConfig::default()
    }
}

/// Short operator-facing label of a [`SaveKind`].
fn save_kind_label(kind: SaveKind) -> String {
    match kind {
        SaveKind::Unchanged => "unchanged".to_owned(),
        SaveKind::Checkpoint => "checkpoint".to_owned(),
        SaveKind::Delta(n) => format!("{n} delta record{}", if n == 1 { "" } else { "s" }),
    }
}

/// FNV-1a fingerprint of the canonical netlist text — the same hash the
/// artifact chain pins its checkpoints to.
fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    fnv1a64(dna_netlist::format::write(circuit).as_bytes())
}

/// Chain file name for a tenant: a sanitized copy of the name (so the
/// file is recognizable) plus an FNV suffix (so distinct names that
/// sanitize identically — or hostile names aiming at path traversal —
/// cannot collide onto one file).
fn artifact_file_name(tenant: &str) -> String {
    let sanitized: String = tenant
        .chars()
        .take(48)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("{sanitized}-{:08x}.dnawifa", fnv1a64(tenant.as_bytes()) as u32)
}

/// What `dna serve --recover` found and did, tenant by tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-tenant outcomes, in manifest order.
    pub tenants: Vec<TenantRecovery>,
    /// What opening the manifest itself had to repair.
    pub registry: RegistryRecovery,
    /// Orphaned checkpoint temp files swept out of the state directory.
    pub stale_temp_files: usize,
}

/// One tenant's recovery outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecovery {
    /// Tenant name.
    pub tenant: String,
    /// What happened.
    pub outcome: RecoverOutcome,
}

/// How one tenant came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverOutcome {
    /// The tenant resumed from its last committed generation.
    Resumed {
        /// Generation the chain replayed to.
        generation: u64,
        /// Identity fingerprint at that generation.
        fingerprint: u64,
        /// Torn/uncommitted bytes truncated away during repair.
        repaired_bytes: u64,
        /// Damage description when the chain needed salvage.
        damage: Option<String>,
    },
    /// The tenant could not be brought back; requests against it get a
    /// typed `quarantined` error carrying this reason.
    Quarantined {
        /// Why.
        reason: String,
    },
}

/// Asks a hot tenant's worker to serialize and exit. A non-durable
/// tenant spills its artifact bytes into memory
/// ([`TenantState::Spilled`]); a durable one commits its chain to disk
/// (delta append when possible) and goes cold ([`TenantState::Durable`])
/// — the returned outcome is what the caller must witness in the
/// manifest. A dead worker becomes [`TenantState::Quarantined`].
fn spill_tenant(t: &mut Tenant) -> Result<(usize, Option<PersistOutcome>), String> {
    let TenantState::Hot(handle) =
        std::mem::replace(&mut t.state, TenantState::Quarantined(String::new()))
    else {
        unreachable!("spill_tenant called on a non-hot tenant");
    };
    if t.durable.is_some() {
        let (reply_tx, reply_rx) = mpsc::channel();
        let asked = handle.jobs.send(Job::Persist { close: true, reply: reply_tx });
        let result = if asked.is_ok() { reply_rx.recv().ok() } else { None };
        return match result {
            Some(Ok(outcome)) => {
                let _ = handle.join.join();
                t.state = TenantState::Durable;
                Ok((outcome.report.file_bytes as usize, Some(outcome)))
            }
            Some(Err(cause)) => {
                // The persist failed but the worker is alive and the
                // session intact; stay hot rather than lose state.
                t.state = TenantState::Hot(handle);
                Err(cause)
            }
            None => {
                let cause = harvest_death(handle, "worker exited before persisting");
                t.state = TenantState::Quarantined(cause.clone());
                Err(cause)
            }
        };
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let asked = handle.jobs.send(Job::Spill { reply: reply_tx });
    let bytes = if asked.is_ok() { reply_rx.recv().ok() } else { None };
    match bytes {
        Some(artifact) => {
            let len = artifact.len();
            let _ = handle.join.join();
            t.state = TenantState::Spilled(artifact);
            Ok((len, None))
        }
        None => {
            let cause = harvest_death(handle, "worker exited before spilling");
            t.state = TenantState::Quarantined(cause.clone());
            Err(cause)
        }
    }
}

/// Joins a dead worker and extracts the most specific cause available.
fn harvest_death(handle: Handle, silent_exit: &str) -> String {
    let cause = match handle.join.join() {
        Ok(Ok(())) => silent_exit.to_owned(),
        Ok(Err(cause)) => cause,
        Err(payload) => panic_message(payload.as_ref()),
    };
    if cause.is_empty() {
        "worker died".to_owned()
    } else {
        cause
    }
}

/// Spawns a tenant worker and waits for its startup handshake.
#[allow(clippy::too_many_arguments)]
fn spawn_tenant(
    tenant: &str,
    circuit: &Circuit,
    mode: Mode,
    k: usize,
    config: TopKConfig,
    artifact: Option<Vec<u8>>,
    store: Option<PathBuf>,
    coalesced: &Arc<AtomicU64>,
) -> Result<(StartupInfo, Handle), String> {
    let (jobs_tx, jobs_rx) = mpsc::channel();
    let (startup_tx, startup_rx) = mpsc::channel();
    let boot = Boot {
        tenant: tenant.to_owned(),
        circuit: circuit.clone(),
        mode,
        k,
        config,
        artifact,
        store,
        startup: startup_tx,
        jobs: jobs_rx,
        coalesced: coalesced.clone(),
    };
    let join = std::thread::Builder::new()
        .name(format!("dna-serve-{tenant}"))
        .spawn(move || match catch_unwind(AssertUnwindSafe(|| tenant_loop(&boot))) {
            Ok(()) => Ok(()),
            Err(payload) => Err(panic_message(payload.as_ref())),
        })
        .map_err(|e| format!("cannot spawn tenant worker: {e}"))?;
    match startup_rx.recv() {
        Ok(Ok(info)) => Ok((info, Handle { jobs: jobs_tx, join })),
        Ok(Err(message)) => {
            let _ = join.join();
            Err(message)
        }
        Err(_) => {
            let cause = match join.join() {
                Ok(Ok(())) => "worker exited during startup".to_owned(),
                Ok(Err(cause)) => cause,
                Err(payload) => panic_message(payload.as_ref()),
            };
            Err(cause)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::generator::{generate, GeneratorConfig};
    use dna_netlist::CouplingId;

    fn small_circuit(seed: u64) -> Circuit {
        generate(&GeneratorConfig::new(24, 18).with_seed(seed)).expect("generator succeeds")
    }

    fn open_default(manager: &SessionManager, name: &str, seed: u64) -> u64 {
        let response =
            manager.open(name, small_circuit(seed), Mode::Elimination, 2, TopKConfig::default());
        match response {
            Response::Opened { fingerprint, .. } => fingerprint,
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn scenario_matches_a_local_fork_apply() {
        let manager = SessionManager::new(ServeConfig::default());
        open_default(&manager, "a", 9);
        let delta = MaskDelta::remove(&[CouplingId::new(0)]);
        let Response::Scenario { summary, coalesced, .. } = manager.scenario("a", delta.clone())
        else {
            panic!("expected a scenario response");
        };
        assert!(coalesced >= 1);

        let circuit = small_circuit(9);
        let analysis = TopKAnalysis::new(&circuit, TopKConfig::default());
        let session = WhatIfSession::start(&analysis, Mode::Elimination, 2).unwrap();
        let mut fork = session.fork();
        let outcome = fork.apply(&delta).unwrap();
        assert_eq!(summary.fingerprint, outcome.result().identity_fingerprint());
        assert_eq!(
            summary.set,
            outcome.result().couplings().iter().map(|c| c.index()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_tenant_and_double_open_are_typed_errors() {
        let manager = SessionManager::new(ServeConfig::default());
        let Response::Error(e) = manager.scenario("ghost", MaskDelta::remove(&[])) else {
            panic!("expected an error");
        };
        assert_eq!(e.code, ErrorCode::UnknownTenant);
        open_default(&manager, "a", 9);
        let Response::Error(e) =
            manager.open("a", small_circuit(9), Mode::Elimination, 2, TopKConfig::default())
        else {
            panic!("expected an error");
        };
        assert_eq!(e.code, ErrorCode::TenantExists);
    }

    #[test]
    fn evict_then_reload_is_bit_identical() {
        let manager = SessionManager::new(ServeConfig::default());
        let base = open_default(&manager, "a", 11);
        let delta = MaskDelta::remove(&[CouplingId::new(1)]);
        let Response::Scenario { summary: before, .. } = manager.scenario("a", delta.clone())
        else {
            panic!("expected a scenario response");
        };
        let Response::Evicted { artifact_bytes, .. } = manager.evict("a") else {
            panic!("expected an eviction");
        };
        assert!(artifact_bytes > 0);
        let Response::Scenario { summary: after, note, .. } = manager.scenario("a", delta) else {
            panic!("expected a scenario response");
        };
        assert_eq!(note, None, "a clean artifact resumes without a fallback note");
        assert_eq!(before.fingerprint, after.fingerprint);
        let Response::Page { items, next, .. } = manager.query("a", None, 64) else {
            panic!("expected a page");
        };
        assert!(next.is_none());
        assert!(!items.is_empty());
        let _ = base;
    }

    #[test]
    fn zero_capacity_spills_after_every_request() {
        let manager = SessionManager::new(ServeConfig { capacity: 0, ..ServeConfig::default() });
        open_default(&manager, "a", 13);
        let delta = MaskDelta::remove(&[CouplingId::new(0)]);
        let Response::Scenario { summary: first, .. } = manager.scenario("a", delta.clone()) else {
            panic!("expected a scenario response");
        };
        let Response::Scenario { summary: second, .. } = manager.scenario("a", delta) else {
            panic!("expected a scenario response");
        };
        assert_eq!(first.fingerprint, second.fingerprint);
        let Response::Stats(stats) = manager.stats() else { panic!("expected stats") };
        assert_eq!(stats.hot, 0, "zero capacity keeps nothing hot");
        assert!(stats.spills >= 2);
        assert!(stats.reloads >= 1);
    }

    #[test]
    fn corrupt_spill_artifact_falls_back_with_a_typed_note() {
        let manager = SessionManager::new(ServeConfig::default());
        open_default(&manager, "a", 17);
        let Response::Evicted { .. } = manager.evict("a") else { panic!("expected eviction") };
        // Corrupt the spilled artifact in place.
        {
            let mut inner = manager.lock();
            let t = inner.tenants.get_mut("a").expect("tenant exists");
            if let TenantState::Spilled(bytes) = &mut t.state {
                let last = bytes.len() - 1;
                bytes[last] ^= 0xff;
            } else {
                panic!("tenant is not spilled");
            }
        }
        let Response::Scenario { note, .. } =
            manager.scenario("a", MaskDelta::remove(&[CouplingId::new(0)]))
        else {
            panic!("expected a scenario response");
        };
        let note = note.expect("fallback note is surfaced");
        assert!(note.contains("corrupt"), "note classifies the rejection: {note}");
        let Response::Stats(stats) = manager.stats() else { panic!("expected stats") };
        assert_eq!(stats.reload_fallbacks, 1);
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dna-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Test circuit resolver: sources are `seed:<n>` strings.
    fn load_seeded(src: &str) -> Result<Circuit, String> {
        src.strip_prefix("seed:")
            .and_then(|s| s.parse::<u64>().ok())
            .map(small_circuit)
            .ok_or_else(|| format!("unknown source `{src}`"))
    }

    #[test]
    fn durable_restart_resumes_the_committed_generation_bit_exactly() {
        let dir = durable_dir("restart");
        let committed;
        {
            let manager =
                SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable manager");
            let Response::Opened { .. } = manager.open_with_source(
                "a",
                small_circuit(23),
                Some("seed:23"),
                Mode::Elimination,
                2,
                TopKConfig::default(),
            ) else {
                panic!("open failed");
            };
            let Response::Committed { summary, .. } =
                manager.commit("a", MaskDelta::remove(&[CouplingId::new(0)]))
            else {
                panic!("commit failed");
            };
            committed = summary.fingerprint;
            // Dropped without shutdown: the commit itself was durable.
        }
        let manager =
            SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable reopen");
        let report = manager.recover(&load_seeded);
        assert_eq!(report.registry.damage, None);
        assert_eq!(report.tenants.len(), 1);
        let RecoverOutcome::Resumed { generation, fingerprint, repaired_bytes, damage } =
            &report.tenants[0].outcome
        else {
            panic!("tenant not resumed: {:?}", report.tenants[0]);
        };
        assert_eq!(*generation, 1, "the committed apply is generation 1");
        assert_eq!(*fingerprint, committed, "resume is bit-exact");
        assert_eq!((*repaired_bytes, damage.as_deref()), (0, None), "clean chain needs no repair");
        // The recovered tenant answers requests (reloading from disk).
        let Response::Scenario { summary, .. } =
            manager.scenario("a", MaskDelta::remove(&[CouplingId::new(1)]))
        else {
            panic!("recovered tenant does not serve");
        };
        assert!(summary.fingerprint != 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_repairs_a_torn_chain_to_the_last_committed_generation() {
        let dir = durable_dir("torn");
        let base;
        {
            let manager =
                SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable manager");
            let Response::Opened { fingerprint, .. } = manager.open_with_source(
                "a",
                small_circuit(31),
                Some("seed:31"),
                Mode::Elimination,
                2,
                TopKConfig::default(),
            ) else {
                panic!("open failed");
            };
            base = fingerprint;
            let Response::Committed { .. } =
                manager.commit("a", MaskDelta::remove(&[CouplingId::new(0)]))
            else {
                panic!("commit failed");
            };
        }
        // Tear the delta append mid-record — what a power cut leaves.
        let chain = dir.join(artifact_file_name("a"));
        let bytes = std::fs::read(&chain).expect("chain exists");
        std::fs::write(&chain, &bytes[..bytes.len() - 3]).expect("tear");
        let manager =
            SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable reopen");
        let report = manager.recover(&load_seeded);
        let RecoverOutcome::Resumed { generation, fingerprint, repaired_bytes, damage } =
            &report.tenants[0].outcome
        else {
            panic!("tenant not resumed: {:?}", report.tenants[0]);
        };
        assert_eq!(*generation, 0, "the torn generation-1 delta rolls back");
        assert_eq!(*fingerprint, base, "rollback lands on the base state bit-exactly");
        assert!(*repaired_bytes > 0);
        assert!(damage.is_some());
        // The repair is persistent: the file now ends at the base record.
        let repaired = std::fs::read(&chain).expect("chain exists");
        assert_eq!(repaired.len() as u64, (bytes.len() - 3) as u64 - *repaired_bytes);
        assert!(repaired.len() < bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_quarantines_a_changed_circuit_with_a_typed_error() {
        let dir = durable_dir("changed");
        {
            let manager =
                SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable manager");
            let Response::Opened { .. } = manager.open_with_source(
                "a",
                small_circuit(37),
                Some("seed:37"),
                Mode::Elimination,
                2,
                TopKConfig::default(),
            ) else {
                panic!("open failed");
            };
        }
        let manager =
            SessionManager::new_durable(ServeConfig::default(), &dir).expect("durable reopen");
        // The "same" source now resolves to a different circuit.
        let report = manager.recover(&|_src| Ok(small_circuit(38)));
        let RecoverOutcome::Quarantined { reason } = &report.tenants[0].outcome else {
            panic!("a changed circuit must quarantine: {:?}", report.tenants[0]);
        };
        assert!(reason.contains("fingerprint mismatch"), "reason names the cause: {reason}");
        let Response::Error(e) = manager.scenario("a", MaskDelta::remove(&[])) else {
            panic!("expected a typed error");
        };
        assert_eq!(e.code, ErrorCode::Quarantined);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_lru_spills_commit_delta_records_to_disk() {
        let dir = durable_dir("lru");
        let manager = SessionManager::new_durable(
            ServeConfig { capacity: 1, ..ServeConfig::default() },
            &dir,
        )
        .expect("durable manager");
        for (name, seed) in [("a", 41u64), ("b", 43u64)] {
            let Response::Opened { .. } = manager.open_with_source(
                name,
                small_circuit(seed),
                Some(&format!("seed:{seed}")),
                Mode::Elimination,
                2,
                TopKConfig::default(),
            ) else {
                panic!("open failed");
            };
        }
        // Opening `b` evicted `a` to disk, not to memory.
        let Response::Stats(stats) = manager.stats() else { panic!("expected stats") };
        assert_eq!((stats.hot, stats.durable, stats.spilled), (1, 1, 0));
        // `a` still serves — reloaded from its chain file.
        let Response::Scenario { .. } =
            manager.scenario("a", MaskDelta::remove(&[CouplingId::new(0)]))
        else {
            panic!("evicted durable tenant must reload from disk");
        };
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pagination_cursors_walk_the_set() {
        let manager = SessionManager::new(ServeConfig::default());
        open_default(&manager, "a", 19);
        let mut cursor = None;
        let mut seen: Vec<usize> = Vec::new();
        loop {
            let Response::Page { items, next, .. } = manager.query("a", cursor, 1) else {
                panic!("expected a page");
            };
            seen.extend(&items);
            match next {
                Some(n) => cursor = Some(n),
                None => break,
            }
        }
        let Response::Page { items: all, .. } = manager.query("a", None, 1024) else {
            panic!("expected a page");
        };
        assert_eq!(seen, all, "limit-1 pages concatenate to the full set");
    }
}
