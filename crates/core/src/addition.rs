//! The top-k aggressors **addition** set (paper §3.3, Fig. 9).
//!
//! Starting from noiseless timing, find the set of `k` couplings whose
//! delay noise, added to the analysis, increases the circuit delay the
//! most. Implicit enumeration: per victim (topological order) build
//! irredundant lists `I-list_1 … I-list_k` from
//!
//! 1. extensions of `I-list_{i-1}` by one primary aggressor,
//! 2. pseudo input aggressors propagated from the driver's fanin
//!    (paper §3.1),
//! 3. higher-order aggressors — primaries with windows widened by their
//!    strongest fanin wideners (paper §3.3, the `b1₂` construction),
//!
//! pruned by dominance (Theorem 1) after every step.

use std::collections::HashSet;

use dna_netlist::NetId;
use dna_waveform::Envelope;

use crate::dominance::{irredundant, DominanceDirection};
use crate::engine::{
    sweep_victims, sweep_victims_subset, Curtailment, NetLists, Prepared, SweepOutput, SweepTotals,
    VictimCounters, VictimLists,
};
use crate::sched::Slots;
use crate::{faultsim, Candidate, CouplingSet, TopKError};

/// How many of the best fanin candidates combine with lower-cardinality
/// sets (beyond plain primary extension). Keeps the cross-product bounded
/// while still generating paper-Fig. 8-style mixed sets like `(b1₂, a1)`.
const COMBO_BREADTH: usize = 4;

/// How many ranked wideners get an *individual* higher-order atom (beyond
/// the cumulative prefix sets).
const WIDENER_POOL: usize = 4;

/// One candidate final answer: a coupling set with its predicted circuit
/// delay and the sink output it acts on.
#[derive(Debug, Clone)]
pub(crate) struct SinkOption {
    /// The coupling set (cardinality `<= k`; less only when the circuit
    /// has fewer useful couplings).
    pub set: CouplingSet,
    /// Predicted circuit delay from envelope superposition at the sink.
    pub predicted_delay: f64,
    /// The sink (primary output) where the set acts.
    pub sink: NetId,
}

/// Raw outcome of the enumeration, before validation.
#[derive(Debug, Clone)]
pub(crate) struct EnumerationOutcome {
    /// Candidate answers, best predicted first, deduplicated by set.
    pub options: Vec<SinkOption>,
    /// Aggregated sweep counters: list widths, enumeration effort, and
    /// how many victims budgets curtailed.
    pub totals: SweepTotals,
}

/// One addable atom: a coupling set with its envelope at the current
/// victim.
struct Atom {
    set: CouplingSet,
    envelope: Envelope,
}

/// The enumeration sweep on its own: builds every victim's irredundant
/// lists on the work-stealing scheduler (a victim reads only strict-fanin
/// slots). With `seeds`, only the flagged dirty victims are recomputed and
/// the rest are served from the cached lists/counters — the what-if
/// incremental path.
pub(crate) fn sweep(
    p: &Prepared<'_>,
    k: usize,
    seeds: Option<(&[NetLists], &[VictimCounters], &[bool])>,
) -> Result<SweepOutput, TopKError> {
    let per_victim = per_victim_fn(p, k);
    match seeds {
        None => sweep_victims(p, per_victim),
        Some((lists, counters, dirty)) => {
            sweep_victims_subset(p, lists, counters, dirty, per_victim)
        }
    }
}

/// The per-victim enumeration as a standalone closure, for drivers that
/// schedule victims themselves (the batch engine interleaves several
/// scenarios' victims through one scheduler). The closure's `allowance`
/// argument is the victim's pre-partitioned budget share.
pub(crate) fn per_victim_fn<'a>(
    p: &'a Prepared<'_>,
    k: usize,
) -> impl Fn(NetId, &Slots, usize) -> Result<VictimLists, TopKError> + Sync + 'a {
    let breadth = if p.config.max_list_width.is_none() { usize::MAX } else { COMBO_BREADTH };
    move |v, ilists: &Slots, allowance: usize| victim_lists(p, k, breadth, v, ilists, allowance)
}

/// The sink-selection stage on its own (see [`select_sink`]).
pub(crate) fn select(
    p: &Prepared<'_>,
    k: usize,
    ilists: &[NetLists],
    counters: &[VictimCounters],
) -> Result<EnumerationOutcome, TopKError> {
    let totals = VictimCounters::aggregate(counters);
    Ok(select_sink(p, k, ilists, totals))
}

/// Builds one victim's irredundant lists `I-list_1 … I-list_k`. Reads
/// `ilists` only at the victim's driver inputs (strict fanin), which the
/// scheduler's dependency edges guarantee are published.
///
/// `allowance` caps raw candidate generation: the victim's pre-partitioned
/// budget share (the smaller of the per-victim cap and its deterministic
/// slice of the global pool) bounds how many candidates the push path may
/// create; on breach the remaining pushes are dropped — dominance keeps
/// the strongest survivors of what exists, a sound lower bound — and the
/// victim is marked [`Curtailment::Truncated`] — which the L060 audit
/// cross-checks against the victim's pre-partitioned share.
fn victim_lists(
    p: &Prepared<'_>,
    k: usize,
    breadth: usize,
    v: NetId,
    ilists: &Slots,
    allowance: usize,
) -> Result<VictimLists, TopKError> {
    let vi = v.index();
    let iv = p.dominance_iv[vi];
    let mut peak_list_width = 0usize;
    let mut generated = 0usize;
    let mut raw_generated = 0usize;
    let mut truncated = false;

    // --- Atom pool -------------------------------------------------
    // Primaries whose clipped envelope is zero cannot change the
    // victim's crossing; they (and their higher-order variants) are
    // dropped up front — exactly the sets dominance would prune anyway.
    let primary_atoms: Vec<Atom> = p.primaries[vi]
        .iter()
        .map(|info| Atom {
            set: CouplingSet::singleton(info.coupling),
            envelope: p.primary_envelope(v, info, 0.0),
        })
        .filter(|atom| !atom.envelope.is_zero())
        .collect();

    // Pseudo input aggressors: sets propagated from the driver's fanin
    // rendered as arrival-shift envelopes at this victim (§3.1).
    let mut pseudo_atoms: Vec<Atom> = Vec::new();
    if p.config.pseudo_aggressors {
        if let Some(arrivals) = p.fanin_base_arrivals(v) {
            let max_base = arrivals.iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
            for &(u, arr_u) in &arrivals {
                for c in 1..=k {
                    let Some(list) = ilists.lists(u)?.get(c) else { continue };
                    for cand in list.iter().take(breadth) {
                        let shift = (arr_u + cand.delay_noise() - max_base).max(0.0);
                        if shift <= 0.0 {
                            continue;
                        }
                        pseudo_atoms.push(Atom {
                            set: cand.set().clone(),
                            envelope: p.pseudo_envelope(v, shift),
                        });
                    }
                }
            }
        }
    }

    // Higher-order aggressors: each primary with its window widened by
    // its j strongest fanin wideners has innate cardinality j + 1.
    let mut higher_atoms: Vec<Atom> = Vec::new();
    if p.config.higher_order && k >= 2 {
        for info in &p.primaries[vi] {
            let wideners = p.wideners_of(info.aggressor);
            // Higher-order variants widen the window rightward by at
            // most the sum of all widener contributions; if even that
            // maximally-widened envelope clips to zero the primary can
            // never matter here.
            let cap = p.shift_bound[info.aggressor.index()];
            let max_delta: f64 = wideners.iter().map(|&(_, dn)| dn).sum::<f64>().min(cap);
            if p.primary_envelope(v, info, max_delta).is_zero() {
                continue;
            }
            // Prefix sets: primary plus its j strongest wideners.
            let mut set = CouplingSet::singleton(info.coupling);
            let mut delta = 0.0;
            for &(cc, dn) in wideners.iter().take(k - 1) {
                let grown = set.with(cc);
                if grown.len() == set.len() {
                    continue; // widener collides with an existing member
                }
                set = grown;
                delta = (delta + dn).min(cap);
                higher_atoms
                    .push(Atom { set: set.clone(), envelope: p.primary_envelope(v, info, delta) });
            }
            // Individual wideners: primary plus one lower-ranked
            // widener, for sets where the top widener is spoken for.
            for &(cc, dn) in wideners.iter().take(WIDENER_POOL).skip(1) {
                let set = CouplingSet::singleton(info.coupling).with(cc);
                if set.len() == 2 {
                    higher_atoms
                        .push(Atom { set, envelope: p.primary_envelope(v, info, dn.min(cap)) });
                }
            }
        }
    }

    // --- Iterative list construction -------------------------------
    let mut lists: Vec<Vec<Candidate>> = Vec::with_capacity(k + 1);
    lists.push(vec![Candidate::new(CouplingSet::new(), Envelope::zero(), 0.0)]);
    for i in 1..=k {
        let mut cands: Vec<Candidate> = Vec::new();
        let mut push = |set: CouplingSet,
                        env: Envelope,
                        cands: &mut Vec<Candidate>|
         -> Result<(), TopKError> {
            if raw_generated >= allowance {
                truncated = true;
                return Ok(());
            }
            raw_generated += 1;
            let dn = faultsim::corrupt_delay_noise(v, p.delay_noise_at(v, &env));
            cands.push(Candidate::try_new(set, env, dn)?);
            Ok(())
        };

        // 1. Extend I_{i-1} with one primary aggressor.
        for s in &lists[i - 1] {
            for atom in &primary_atoms {
                if s.set().intersects(&atom.set) {
                    continue;
                }
                push(s.set().union(&atom.set), s.envelope().sum(&atom.envelope), &mut cands)?;
            }
        }
        // 2 & 3. Pseudo and higher-order atoms of cardinality <= i,
        // standalone (j == 0) or combined with the best smaller sets.
        for atom in pseudo_atoms.iter().chain(higher_atoms.iter()) {
            let c = atom.set.len();
            if c > i || c == 0 {
                continue;
            }
            let j = i - c;
            if j == 0 {
                push(atom.set.clone(), atom.envelope.clone(), &mut cands)?;
            } else {
                for s in lists[j].iter().take(breadth) {
                    if s.set().intersects(&atom.set) {
                        continue;
                    }
                    push(s.set().union(&atom.set), s.envelope().sum(&atom.envelope), &mut cands)?;
                }
            }
        }

        // Keep only exact-cardinality sets: unions that collapsed below
        // i duplicate entries of earlier lists.
        cands.retain(|c| c.cardinality() == i);
        generated += cands.len();
        let pruned = irredundant(
            cands,
            iv,
            DominanceDirection::BiggerIsBetter,
            p.config.dominance_pruning,
            p.config.max_list_width,
        );
        peak_list_width = peak_list_width.max(pruned.len());
        // Sort by delay noise so downstream consumers (pseudo atoms,
        // combos) can take the best few deterministically.
        let mut pruned = pruned;
        pruned.sort_by(|a, b| b.delay_noise().total_cmp(&a.delay_noise()));
        lists.push(pruned);
    }
    let curtailment = if truncated { Curtailment::Truncated } else { Curtailment::None };
    Ok(VictimLists { lists, peak_list_width, generated, curtailment })
}

/// Chooses the worst set from the sinks' I-lists (paper: "the top-k
/// aggressor set is the one in the I-list_k of the sink with the
/// worst-case delay noise"). Falls back to smaller cardinalities when no
/// sink has a full-k candidate.
fn select_sink(
    p: &Prepared<'_>,
    k: usize,
    ilists: &[NetLists],
    totals: SweepTotals,
) -> EnumerationOutcome {
    let base_max = p.base.circuit_delay();
    let pool = p.config.validation_pool.max(1);
    // Candidates of every cardinality up to k are valid answers: a
    // smaller set never predicts better than the best exact-k set when
    // the lists are healthy, but at large k (beyond the useful aggressors
    // of a cone) the exact-k lists degrade and a lower-cardinality set
    // wins — taking the best across cardinalities keeps the result
    // monotone in k.
    let mut options: Vec<SinkOption> = Vec::new();
    for card in (1..=k).rev() {
        for &o in p.circuit.primary_outputs() {
            let Some(list) = ilists[o.index()].get(card) else { continue };
            for cand in list {
                let predicted = base_max.max(p.base.timing(o).lat() + cand.delay_noise());
                options.push(SinkOption {
                    set: cand.set().clone(),
                    predicted_delay: predicted,
                    sink: o,
                });
            }
        }
    }
    options.sort_by(|a, b| b.predicted_delay.total_cmp(&a.predicted_delay));
    let mut seen: HashSet<&CouplingSet> = HashSet::new();
    let mut deduped: Vec<SinkOption> = Vec::new();
    for opt in &options {
        if deduped.len() >= pool {
            break;
        }
        if !seen.insert(&opt.set) {
            continue;
        }
        deduped.push(opt.clone());
    }
    if deduped.is_empty() {
        deduped.push(SinkOption {
            set: CouplingSet::new(),
            predicted_delay: base_max,
            sink: p.base.critical_output(),
        });
    }
    EnumerationOutcome { options: deduped, totals }
}
