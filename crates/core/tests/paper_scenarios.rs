//! Reproductions of the paper's illustrative scenarios.

use dna_netlist::{CellKind, CircuitBuilder, Library};
use dna_topk::{Mode, TopKAnalysis, TopKConfig};
use dna_waveform::{superposition, Edge, Envelope, NoisePulse, Transition};

/// Paper Fig. 4: non-monotonicity of top-k sets.
///
/// Aggressor `a1` has a *smaller* noise pulse than `a2`/`a3` but its window
/// aligns with the victim crossing, so top-1 = {a1}. The wide, shallow
/// envelopes of `a2` and `a3` are individually weak but superadditive, so
/// top-2 = {a2, a3} — not a superset of top-1.
#[test]
fn figure_4_non_monotonic_sets() {
    // Rising victim, slew 20 ps, t50 at 10 ps.
    let victim = Transition::new(0.0, 20.0, Edge::Rising);
    let t50 = victim.t50();

    // a1: narrow spike centred on the crossing (tight window). Alone it
    // shifts the crossing by 0.1/(0.05 + 0.2) = 0.4 ps.
    let a1 = Envelope::from_window(&NoisePulse::symmetric(-0.5, 0.10, 1.0), t50, t50);
    // a2, a3: taller pulses whose windows restrict them far to the left;
    // only a long, shallow decay tail (slope 0.001/ps) reaches past the
    // crossing, worth 0.018 V there. Alone: 0.018/0.051 = 0.35 ps < a1.
    // Together: 0.036/0.052 = 0.69 ps, beating {a1, a2} = 0.118/0.251 =
    // 0.47 ps — superadditive because the ramp fights a doubled shallow
    // slope.
    let wide = NoisePulse::new(0.0, 1.0, 0.15, 151.0);
    let a2 = Envelope::from_window(&wide, t50 - 135.0, t50 - 133.0);
    let a3 = Envelope::from_window(&wide, t50 - 135.0, t50 - 133.0);

    // Pulse magnitudes: a2/a3 are taller than a1, as in the figure.
    assert!(a2.peak() > a1.peak());

    let dn = |envs: &[&Envelope]| {
        superposition::delay_noise(&victim, &Envelope::sum_all(envs.iter().copied()))
    };

    // Top-1 is {a1}: it beats each of a2, a3 alone.
    let d1 = dn(&[&a1]);
    let d2 = dn(&[&a2]);
    let d3 = dn(&[&a3]);
    assert!(d1 > d2, "a1 ({d1}) must beat a2 ({d2}) alone");
    assert!(d1 > d3, "a1 ({d1}) must beat a3 ({d3}) alone");

    // Top-2 is {a2, a3}: jointly they beat every pair containing a1.
    let d23 = dn(&[&a2, &a3]);
    let d12 = dn(&[&a1, &a2]);
    let d13 = dn(&[&a1, &a3]);
    assert!(d23 > d12, "{{a2,a3}} ({d23}) must beat {{a1,a2}} ({d12})");
    assert!(d23 > d13, "{{a2,a3}} ({d23}) must beat {{a1,a3}} ({d13})");
}

/// Paper Fig. 1: an indirect aggressor widens a primary aggressor's
/// timing window and thereby increases the victim's delay noise. The
/// top-2 addition set captures the {primary, indirect} pair.
#[test]
fn figure_1_indirect_aggressors_matter() {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let in_v = b.input("in_v");
    let in_a = b.input("in_a");
    let in_t = b.input("in_t");
    // Victim path: a couple of buffers.
    let v1 = b.gate(CellKind::Buf, "v1", &[in_v]).unwrap();
    let v2 = b.gate(CellKind::Buf, "v2", &[v1]).unwrap();
    // Primary aggressor a1 driven through a chain; tertiary aggressor a2
    // couples onto a1's fanin.
    let a_mid = b.gate(CellKind::Buf, "a_mid", &[in_a]).unwrap();
    let a1 = b.gate(CellKind::Buf, "a1", &[a_mid]).unwrap();
    let a2 = b.gate(CellKind::Buf, "a2", &[in_t]).unwrap();
    b.output(v2);
    b.output(a1);
    b.output(a2);
    let primary = b.coupling(a1, v2, 9.0).unwrap();
    let indirect = b.coupling(a2, a_mid, 8.0).unwrap();
    let circuit = b.build().unwrap();

    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let top2 = engine.addition_set(2).unwrap();
    assert!(
        top2.couplings().contains(&primary),
        "top-2 must include the primary coupling, got {}",
        top2.set()
    );
    // The indirect aggressor is the only other coupling; the set uses it.
    assert!(
        top2.couplings().contains(&indirect),
        "top-2 must include the indirect coupling, got {}",
        top2.set()
    );
    assert!(top2.delay_with() > top2.delay_without());
}

/// The addition and elimination sets are duals: on a circuit whose noise
/// is dominated by a handful of couplings, the top-k addition set (added
/// to quiet timing) and the top-k elimination set (removed from noisy
/// timing) identify overlapping couplings.
#[test]
fn addition_elimination_duality() {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let i1 = b.input("i1");
    let i2 = b.input("i2");
    let v1 = b.gate(CellKind::Buf, "v1", &[i1]).unwrap();
    let v2 = b.gate(CellKind::Buf, "v2", &[v1]).unwrap();
    let g1 = b.gate(CellKind::Buf, "g1", &[i2]).unwrap();
    b.output(v2);
    b.output(g1);
    let strong = b.coupling(v2, g1, 12.0).unwrap();
    b.coupling(v1, g1, 1.0).unwrap();
    let circuit = b.build().unwrap();

    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let add = engine.addition_set(1).unwrap();
    let del = engine.elimination_set(1).unwrap();
    assert_eq!(add.couplings(), &[strong]);
    assert_eq!(del.couplings(), &[strong]);
    assert_eq!(add.mode(), Mode::Addition);
    assert_eq!(del.mode(), Mode::Elimination);
    // Removing what addition found most harmful recovers the quiet delay.
    assert!(del.delay_after() < del.delay_before());
}

/// Elimination with everything fixed recovers the noiseless circuit delay.
#[test]
fn eliminating_all_couplings_recovers_noiseless_delay() {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let i1 = b.input("i1");
    let i2 = b.input("i2");
    let v = b.gate(CellKind::Buf, "v", &[i1]).unwrap();
    let g = b.gate(CellKind::Buf, "g", &[i2]).unwrap();
    b.output(v);
    b.output(g);
    b.coupling(v, g, 8.0).unwrap();
    let circuit = b.build().unwrap();

    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let del = engine.elimination_set(1).unwrap();
    assert!(
        (del.delay_after() - del.delay_without()).abs() < 1e-9,
        "after eliminating the only coupling, delay must be noiseless"
    );
}

/// Requesting more aggressors than exist degrades gracefully.
#[test]
fn k_larger_than_coupling_count() {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let i1 = b.input("i1");
    let i2 = b.input("i2");
    let v = b.gate(CellKind::Buf, "v", &[i1]).unwrap();
    let g = b.gate(CellKind::Buf, "g", &[i2]).unwrap();
    b.output(v);
    b.output(g);
    b.coupling(v, g, 8.0).unwrap();
    let circuit = b.build().unwrap();

    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let r = engine.addition_set(5).unwrap();
    assert_eq!(r.requested_k(), 5);
    assert_eq!(r.couplings().len(), 1, "only one coupling exists");
    assert!(r.delay_with() >= r.delay_without());
}

/// k = 0 is rejected.
#[test]
fn zero_k_is_an_error() {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let i1 = b.input("i1");
    let v = b.gate(CellKind::Buf, "v", &[i1]).unwrap();
    b.output(v);
    let circuit = b.build().unwrap();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    assert!(engine.addition_set(0).is_err());
    assert!(engine.elimination_set(0).is_err());
    assert!(engine.elimination_set_peeled(0, 1).is_err());
}

/// Ablation: dominance pruning changes runtime, not soundness — results
/// with and without pruning are both validated, and pruning keeps lists
/// narrower.
#[test]
fn dominance_pruning_preserves_soundness() {
    let circuit = dna_netlist::generator::generate(
        &dna_netlist::generator::GeneratorConfig::new(20, 25).with_seed(3),
    )
    .unwrap();
    let with = TopKAnalysis::new(&circuit, TopKConfig::default());
    let without = TopKAnalysis::new(
        &circuit,
        TopKConfig { dominance_pruning: false, ..TopKConfig::default() },
    );
    let rw = with.addition_set(3).unwrap();
    let ro = without.addition_set(3).unwrap();
    assert!(rw.delay_with() >= rw.delay_without());
    assert!(ro.delay_with() >= ro.delay_without());
    // Pruned lists are never wider than unpruned ones (both beam-capped).
    assert!(rw.peak_list_width() <= ro.peak_list_width().max(rw.peak_list_width()));
}
