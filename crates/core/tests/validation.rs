//! Validation of the proposed algorithm against brute-force enumeration —
//! the experiment behind the paper's Table 1 ("for k <= 3, the top-k
//! aggressors set computed by proposed algorithm was consistent with
//! brute-force method").
//!
//! Our synthetic circuits are multi-output and reconvergent, which
//! stresses the envelope abstraction harder than the paper's blocks; the
//! thresholds below encode the measured agreement honestly rather than
//! claiming perfection: addition is near-exact, elimination is close with
//! the one-pass algorithm and substantially better with peeling.

use dna_netlist::generator::{generate, GeneratorConfig};
use dna_topk::{brute_force, BruteForceConfig, Mode, TopKAnalysis, TopKConfig};

const SEEDS: u64 = 5;
const MAX_K: usize = 3;

struct Agreement {
    exact: usize,
    total: usize,
    worst_fraction: f64,
}

fn measure(mode: Mode, peeled: bool) -> Agreement {
    let mut exact = 0;
    let mut total = 0;
    let mut worst_fraction: f64 = 1.0;
    for seed in 0..SEEDS {
        let circuit = generate(&GeneratorConfig::new(12, 10).with_seed(seed)).unwrap();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
        for k in 1..=MAX_K {
            let bf = brute_force(&circuit, &BruteForceConfig::default(), mode, k).unwrap();
            let (_, brute_delay) = bf.completed().expect("tiny search completes");
            let result = match (mode, peeled) {
                (Mode::Addition, _) => engine.addition_set(k).unwrap(),
                (Mode::Elimination, false) => engine.elimination_set(k).unwrap(),
                (Mode::Elimination, true) => engine.elimination_set_peeled(k, 1).unwrap(),
            };
            // Impact achieved, as a fraction of the optimal impact.
            let (optimal, achieved) = match mode {
                Mode::Addition => (
                    brute_delay - result.delay_before(),
                    result.delay_after() - result.delay_before(),
                ),
                Mode::Elimination => (
                    result.delay_before() - brute_delay,
                    result.delay_before() - result.delay_after(),
                ),
            };
            total += 1;
            if (achieved - optimal).abs() < 1e-6 {
                exact += 1;
            } else if optimal > 1e-9 {
                worst_fraction = worst_fraction.min(achieved / optimal);
            }
            // The proposed algorithm never beats the true optimum (its
            // answer is validated by a real analysis run).
            assert!(
                achieved <= optimal + 1e-6,
                "mode {mode:?} seed {seed} k {k}: proposed {achieved} exceeds optimum {optimal}"
            );
            // And it never actively hurts.
            assert!(achieved >= -1e-9);
        }
    }
    Agreement { exact, total, worst_fraction }
}

#[test]
fn addition_matches_brute_force_closely() {
    let a = measure(Mode::Addition, false);
    assert_eq!(a.total, SEEDS as usize * MAX_K);
    assert!(
        a.exact * 10 >= a.total * 7,
        "addition exact matches {}/{} below threshold",
        a.exact,
        a.total
    );
    // Measured across the seed set: even the worst miss achieves most of
    // the optimal impact (ties among predicted-equal candidates are
    // resolved by measured validation, which can land on a slightly
    // different set than the optimum).
    assert!(a.worst_fraction >= 0.8, "addition worst-case fraction {} too low", a.worst_fraction);
}

#[test]
fn elimination_one_pass_is_sound_and_useful() {
    let a = measure(Mode::Elimination, false);
    // The one-pass dual is heuristic on multi-output circuits: every
    // answer is sound (asserted inside measure) and a good share is exact.
    assert!(
        a.exact * 10 >= a.total * 5,
        "elimination exact matches {}/{} below threshold",
        a.exact,
        a.total
    );
    assert!(
        a.worst_fraction >= 0.4,
        "elimination worst-case fraction {} too low",
        a.worst_fraction
    );
}

#[test]
fn elimination_peeled_improves_on_one_pass() {
    let one_pass = measure(Mode::Elimination, false);
    let peeled = measure(Mode::Elimination, true);
    assert!(
        peeled.exact >= one_pass.exact,
        "peeling should not reduce exact matches ({} vs {})",
        peeled.exact,
        one_pass.exact
    );
    assert!(
        peeled.exact * 10 >= peeled.total * 6,
        "peeled exact matches {}/{} below threshold",
        peeled.exact,
        peeled.total
    );
    assert!(peeled.worst_fraction >= 0.6, "peeled worst fraction {}", peeled.worst_fraction);
}

#[test]
fn top_1_addition_is_exact_on_single_sink_circuits() {
    // With a single primary output the sink selection is trivial and the
    // top-1 addition set must match brute force exactly.
    for seed in 20..26u64 {
        let mut cfg = GeneratorConfig::new(14, 12).with_seed(seed);
        cfg.inputs = 3;
        let circuit = generate(&cfg).unwrap();
        if circuit.primary_outputs().len() != 1 {
            continue; // only exercise the single-sink property
        }
        let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
        let r = engine.addition_set(1).unwrap();
        let bf = brute_force(&circuit, &BruteForceConfig::default(), Mode::Addition, 1).unwrap();
        let (_, brute_delay) = bf.completed().unwrap();
        assert!(
            (r.delay_after() - brute_delay).abs() < 1e-6,
            "seed {seed}: {} vs brute {brute_delay}",
            r.delay_after()
        );
    }
}
