//! Degenerate-input contracts: the engine must answer every well-formed
//! circuit — however small, sparse, or starved of budget — with a typed
//! result, never a panic, and must label exactness honestly.

use std::time::Duration;

use dna_netlist::{CellKind, Circuit, CircuitBuilder, Library};
use dna_topk::{Mode, Soundness, TopKAnalysis, TopKConfig, TopKError, WhatIfSession};

/// An inverter chain with **zero** couplings: nothing to aggress with.
fn uncoupled_chain() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let n1 = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
    let n2 = b.gate(CellKind::Inv, "u2", &[n1]).unwrap();
    b.output(n2);
    b.build().unwrap()
}

/// A single primary input wired straight to the output: no gates, no
/// couplings — the smallest circuit the builder accepts.
fn wire_only() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    b.output(a);
    b.build().unwrap()
}

/// Two gates, three couplings — and nets with zero aggressors mixed in.
fn tiny_coupled() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let x = b.input("x");
    let n1 = b.gate(CellKind::Nand2, "u1", &[a, x]).unwrap();
    let n2 = b.gate(CellKind::Inv, "u2", &[n1]).unwrap();
    b.output(n2);
    b.coupling(a, n1, 3.0).unwrap();
    b.coupling(x, n2, 2.0).unwrap();
    b.coupling(a, n2, 1.5).unwrap();
    b.build().unwrap()
}

#[test]
fn couplingless_circuit_answers_exactly_with_the_empty_set() {
    for circuit in [uncoupled_chain(), wire_only()] {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        for mode in [Mode::Addition, Mode::Elimination] {
            let result = match mode {
                Mode::Addition => engine.addition_set(3),
                Mode::Elimination => engine.elimination_set(3),
            }
            .expect("a circuit with nothing to enumerate is not an error");
            assert!(result.couplings().is_empty());
            assert_eq!(result.soundness(), Soundness::Exact, "nothing was cut short");
            assert!(result.faults().is_empty());
            assert!(result.delay_after().is_finite());
        }
    }
}

#[test]
fn zero_aggressor_victims_ride_along_silently() {
    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.addition_set(2).expect("mixed circuit succeeds");
    // The uncoupled nets contribute empty lists, not faults or
    // degradation; the coupled ones still produce a real set.
    assert!(result.faults().is_empty());
    assert!(!result.is_degraded());
    assert!(!result.couplings().is_empty());
}

#[test]
fn k_beyond_the_coupling_count_saturates_exactly() {
    let circuit = tiny_coupled();
    assert_eq!(circuit.num_couplings(), 3);
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    for k in [4, 10, 1000] {
        let add = engine.addition_set(k).expect("oversized k is not an error");
        assert!(add.couplings().len() <= 3);
        assert_eq!(add.soundness(), Soundness::Exact);
        let del = engine.elimination_set(k).expect("oversized k is not an error");
        assert!(del.couplings().len() <= 3);
        assert!(del.delay_after() <= del.delay_before() + 1e-9);
    }
}

#[test]
fn zero_k_is_still_a_typed_error() {
    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    assert!(matches!(engine.addition_set(0), Err(TopKError::ZeroK)));
    assert!(matches!(engine.elimination_set(0), Err(TopKError::ZeroK)));
    assert!(matches!(engine.elimination_set_peeled(0, 1), Err(TopKError::ZeroK)));
}

#[test]
fn expired_deadline_degrades_but_still_answers() {
    let circuit = tiny_coupled();
    let config = TopKConfig { deadline: Some(Duration::ZERO), ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    let result = engine.elimination_set(2).expect("an expired deadline is not an error");
    assert!(result.is_degraded());
    assert_eq!(result.soundness(), Soundness::Degraded { lower_bound: true });
    assert!(result.sweep_stats().skipped_victims > 0, "victims were skipped, and said so");
    // Nothing was enumerated, so the honest answer is "no improvement":
    // the noisy baseline delay, unchanged, with an empty set.
    assert!(result.couplings().is_empty());
    assert!(result.delay_after().is_finite());
    assert!((result.delay_after() - result.delay_before()).abs() < 1e-9);
}

#[test]
fn zero_per_victim_budget_keeps_the_elimination_seed() {
    let circuit = tiny_coupled();
    let config = TopKConfig { victim_candidate_budget: Some(0), ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    let result = engine.elimination_set(2).expect("a starved sweep is not an error");
    assert!(result.is_degraded());
    assert!(result.sweep_stats().truncated_victims > 0);
    // The budget caps *generated* candidates, but the per-victim baseline
    // seed is exempt: the result stays anchored on the converged noisy
    // analysis instead of collapsing to garbage.
    assert!(result.delay_before().is_finite());
    assert!(result.delay_after() <= result.delay_before() + 1e-9);
}

#[test]
fn degenerate_circuits_support_sessions_and_artifacts() {
    let circuit = uncoupled_chain();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    let artifact = session.save_artifact();
    let resumed = WhatIfSession::resume(&engine, &artifact).expect("artifact loads");
    assert_eq!(session.result().delay_after().to_bits(), resumed.result().delay_after().to_bits());
}

// ---------------------------------------------------------------------
// Generation-chain edge cases (the crash-safe versioned store)
// ---------------------------------------------------------------------

/// Scratch chain path under a per-test temp directory.
fn chain_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dna_edge_chain");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{}.dnawifa", std::process::id()))
}

#[test]
fn generation_zero_chain_round_trips() {
    use dna_topk::{chain_summary, commit_chain, CommitOptions, RecordKind, SaveKind};

    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    assert_eq!(session.generation(), 0, "a fresh session is generation 0");

    // A never-touched session commits as a single checkpoint at
    // generation 0, and resuming lands exactly there.
    let path = chain_path("gen0");
    let report = commit_chain(&mut session, &path, &CommitOptions::default()).expect("commit");
    assert_eq!(report.kind, SaveKind::Checkpoint);
    assert_eq!(report.generation, 0);

    let bytes = std::fs::read(&path).expect("chain bytes");
    let summary = chain_summary(&bytes).expect("summary");
    assert_eq!(summary.base_generation(), Some(0));
    assert_eq!(summary.tip_generation(), Some(0));
    assert_eq!(summary.records.len(), 1);
    assert_eq!(summary.records[0].kind, RecordKind::Checkpoint);
    assert!(summary.faults.is_empty());

    let resumed = WhatIfSession::resume(&engine, &bytes).expect("resume");
    assert_eq!(resumed.generation(), 0);
    assert_eq!(
        session.result().identity_fingerprint(),
        resumed.result().identity_fingerprint(),
        "generation 0 must reproduce bit-exactly"
    );
    // Committing the untouched resumed state writes nothing.
    let mut resumed = resumed;
    let again = commit_chain(&mut resumed, &path, &CommitOptions::default()).expect("recommit");
    assert_eq!(again.kind, SaveKind::Unchanged);
    assert_eq!(again.bytes_written, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn only_compaction_chain_stays_single_record_and_discards_history() {
    use dna_topk::MaskDelta;
    use dna_topk::{chain_summary, commit_chain, ArtifactError, CommitOptions, RecordKind};

    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 1).expect("session starts");
    let path = chain_path("compact_only");
    let compact = CommitOptions { force_checkpoint: true, ..CommitOptions::default() };

    // Every commit compacts: the chain is always exactly one checkpoint,
    // whose generation advances with the session.
    let ids: Vec<_> = circuit.coupling_ids().collect();
    commit_chain(&mut session, &path, &compact).expect("commit 0");
    for (step, &cc) in ids.iter().take(2).enumerate() {
        session.apply(&MaskDelta::remove(&[cc])).expect("apply");
        let report = commit_chain(&mut session, &path, &compact).expect("commit");
        assert_eq!(report.generation, (step + 1) as u64);
        let summary = chain_summary(&std::fs::read(&path).expect("bytes")).expect("summary");
        assert_eq!(summary.records.len(), 1, "compaction never appends");
        assert_eq!(summary.records[0].kind, RecordKind::Checkpoint);
    }

    // Compaction discards history below the base: generations before the
    // final checkpoint are typed as unavailable, not wrong.
    let bytes = std::fs::read(&path).expect("bytes");
    let tip = chain_summary(&bytes).expect("summary").tip_generation().expect("tip");
    assert_eq!(tip, 2);
    let err = WhatIfSession::resume_at(&engine, &bytes, 0).expect_err("history was compacted");
    match err {
        TopKError::Artifact(ArtifactError::GenerationUnavailable { requested, base, tip }) => {
            assert_eq!((requested, base, tip), (0, 2, 2));
        }
        other => panic!("wrong error class: {other}"),
    }
    // The tip itself still replays.
    let resumed = WhatIfSession::resume_at(&engine, &bytes, tip).expect("tip replays");
    assert_eq!(resumed.result().identity_fingerprint(), session.result().identity_fingerprint());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn history_past_the_tip_is_a_typed_refusal() {
    use dna_topk::{commit_chain, ArtifactError, CommitOptions};

    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 1).expect("session starts");
    let path = chain_path("past_tip");
    commit_chain(&mut session, &path, &CommitOptions::default()).expect("commit");
    let bytes = std::fs::read(&path).expect("bytes");

    let err = WhatIfSession::resume_at(&engine, &bytes, 7).expect_err("generation 7 never existed");
    match err {
        TopKError::Artifact(ArtifactError::GenerationUnavailable { requested, base, tip }) => {
            assert_eq!((requested, base, tip), (7, 0, 0));
        }
        other => panic!("wrong error class: {other}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chain_for_a_different_circuit_is_rejected_at_every_entry_point() {
    use dna_topk::{commit_chain, CommitOptions};

    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 1).expect("session starts");
    let path = chain_path("cross_circuit");
    commit_chain(&mut session, &path, &CommitOptions::default()).expect("commit");
    let bytes = std::fs::read(&path).expect("bytes");

    let other = uncoupled_chain();
    let other_engine = TopKAnalysis::new(&other, TopKConfig::default());
    for (what, err) in [
        ("resume", WhatIfSession::resume(&other_engine, &bytes).err()),
        ("resume_at", WhatIfSession::resume_at(&other_engine, &bytes, 0).err()),
        ("resume_lenient", WhatIfSession::resume_lenient(&other_engine, &bytes).err()),
    ] {
        let err = err.unwrap_or_else(|| panic!("{what} accepted a foreign chain"));
        assert!(err.to_string().contains("different circuit"), "{what}: {err}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn history_replay_is_bit_exact_at_every_generation() {
    use dna_topk::{commit_chain, CommitOptions, MaskDelta, SaveKind};

    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 1).expect("session starts");
    let path = chain_path("history");

    // Live run: commit after every step, recording the fingerprint each
    // committed generation had when it was the present.
    let mut fingerprints = vec![(session.generation(), session.result().identity_fingerprint())];
    commit_chain(&mut session, &path, &CommitOptions::default()).expect("base commit");
    for &cc in circuit.coupling_ids().collect::<Vec<_>>().iter().take(2) {
        session.apply(&MaskDelta::remove(&[cc])).expect("apply");
        let report = commit_chain(&mut session, &path, &CommitOptions::default()).expect("commit");
        assert_eq!(report.kind, SaveKind::Delta(1), "touched commits append one delta");
        fingerprints.push((session.generation(), session.result().identity_fingerprint()));
    }

    // --history GEN substrate: every committed generation replays to the
    // exact fingerprint the sequential run produced at that point.
    let bytes = std::fs::read(&path).expect("bytes");
    for (generation, expected) in fingerprints {
        let replayed = WhatIfSession::resume_at(&engine, &bytes, generation)
            .unwrap_or_else(|e| panic!("generation {generation} must replay: {e}"));
        assert_eq!(replayed.generation(), generation);
        assert_eq!(
            replayed.result().identity_fingerprint(),
            expected,
            "generation {generation} diverged from the sequential run"
        );
    }
    let _ = std::fs::remove_file(&path);
}
