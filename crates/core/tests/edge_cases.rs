//! Degenerate-input contracts: the engine must answer every well-formed
//! circuit — however small, sparse, or starved of budget — with a typed
//! result, never a panic, and must label exactness honestly.

use std::time::Duration;

use dna_netlist::{CellKind, Circuit, CircuitBuilder, Library};
use dna_topk::{Mode, Soundness, TopKAnalysis, TopKConfig, TopKError, WhatIfSession};

/// An inverter chain with **zero** couplings: nothing to aggress with.
fn uncoupled_chain() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let n1 = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
    let n2 = b.gate(CellKind::Inv, "u2", &[n1]).unwrap();
    b.output(n2);
    b.build().unwrap()
}

/// A single primary input wired straight to the output: no gates, no
/// couplings — the smallest circuit the builder accepts.
fn wire_only() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    b.output(a);
    b.build().unwrap()
}

/// Two gates, three couplings — and nets with zero aggressors mixed in.
fn tiny_coupled() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let x = b.input("x");
    let n1 = b.gate(CellKind::Nand2, "u1", &[a, x]).unwrap();
    let n2 = b.gate(CellKind::Inv, "u2", &[n1]).unwrap();
    b.output(n2);
    b.coupling(a, n1, 3.0).unwrap();
    b.coupling(x, n2, 2.0).unwrap();
    b.coupling(a, n2, 1.5).unwrap();
    b.build().unwrap()
}

#[test]
fn couplingless_circuit_answers_exactly_with_the_empty_set() {
    for circuit in [uncoupled_chain(), wire_only()] {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        for mode in [Mode::Addition, Mode::Elimination] {
            let result = match mode {
                Mode::Addition => engine.addition_set(3),
                Mode::Elimination => engine.elimination_set(3),
            }
            .expect("a circuit with nothing to enumerate is not an error");
            assert!(result.couplings().is_empty());
            assert_eq!(result.soundness(), Soundness::Exact, "nothing was cut short");
            assert!(result.faults().is_empty());
            assert!(result.delay_after().is_finite());
        }
    }
}

#[test]
fn zero_aggressor_victims_ride_along_silently() {
    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.addition_set(2).expect("mixed circuit succeeds");
    // The uncoupled nets contribute empty lists, not faults or
    // degradation; the coupled ones still produce a real set.
    assert!(result.faults().is_empty());
    assert!(!result.is_degraded());
    assert!(!result.couplings().is_empty());
}

#[test]
fn k_beyond_the_coupling_count_saturates_exactly() {
    let circuit = tiny_coupled();
    assert_eq!(circuit.num_couplings(), 3);
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    for k in [4, 10, 1000] {
        let add = engine.addition_set(k).expect("oversized k is not an error");
        assert!(add.couplings().len() <= 3);
        assert_eq!(add.soundness(), Soundness::Exact);
        let del = engine.elimination_set(k).expect("oversized k is not an error");
        assert!(del.couplings().len() <= 3);
        assert!(del.delay_after() <= del.delay_before() + 1e-9);
    }
}

#[test]
fn zero_k_is_still_a_typed_error() {
    let circuit = tiny_coupled();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    assert!(matches!(engine.addition_set(0), Err(TopKError::ZeroK)));
    assert!(matches!(engine.elimination_set(0), Err(TopKError::ZeroK)));
    assert!(matches!(engine.elimination_set_peeled(0, 1), Err(TopKError::ZeroK)));
}

#[test]
fn expired_deadline_degrades_but_still_answers() {
    let circuit = tiny_coupled();
    let config = TopKConfig { deadline: Some(Duration::ZERO), ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    let result = engine.elimination_set(2).expect("an expired deadline is not an error");
    assert!(result.is_degraded());
    assert_eq!(result.soundness(), Soundness::Degraded { lower_bound: true });
    assert!(result.sweep_stats().skipped_victims > 0, "victims were skipped, and said so");
    // Nothing was enumerated, so the honest answer is "no improvement":
    // the noisy baseline delay, unchanged, with an empty set.
    assert!(result.couplings().is_empty());
    assert!(result.delay_after().is_finite());
    assert!((result.delay_after() - result.delay_before()).abs() < 1e-9);
}

#[test]
fn zero_per_victim_budget_keeps_the_elimination_seed() {
    let circuit = tiny_coupled();
    let config = TopKConfig { victim_candidate_budget: Some(0), ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    let result = engine.elimination_set(2).expect("a starved sweep is not an error");
    assert!(result.is_degraded());
    assert!(result.sweep_stats().truncated_victims > 0);
    // The budget caps *generated* candidates, but the per-victim baseline
    // seed is exempt: the result stays anchored on the converged noisy
    // analysis instead of collapsing to garbage.
    assert!(result.delay_before().is_finite());
    assert!(result.delay_after() <= result.delay_before() + 1e-9);
}

#[test]
fn degenerate_circuits_support_sessions_and_artifacts() {
    let circuit = uncoupled_chain();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    let artifact = session.save_artifact();
    let resumed = WhatIfSession::resume(&engine, &artifact).expect("artifact loads");
    assert_eq!(session.result().delay_after().to_bits(), resumed.result().delay_after().to_bits());
}
