//! A minimal property-testing harness with a `proptest`-compatible API
//! subset.
//!
//! The workspace builds fully offline, so the real [`proptest`] crate is
//! unavailable. This crate reimplements exactly the surface the
//! workspace's property tests use — the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), range and tuple [`Strategy`]s,
//! [`Strategy::prop_map`], `prop::collection::vec`, `prop::bool::ANY`,
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] — and is
//! wired in through Cargo dependency renaming
//! (`proptest = { package = "dna-proptest", … }`).
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a **fixed deterministic seed** (reproducible
//!   failures, no `PROPTEST_CASES` env handling),
//! * **no shrinking** — the failing case's seed and inputs are reported
//!   as-is,
//! * only the strategies listed above exist.
//!
//! [`proptest`]: https://crates.io/crates/proptest

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Result type the bodies of [`proptest!`] tests evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u64, u32, usize, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Built-in strategy namespaces (mirror of the `proptest::prop` aliases).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::{rngs::StdRng, Rng};

        /// Strategy for an unbiased random boolean.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen::<f64>() < 0.5
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::{rngs::StdRng, Rng};

        /// Strategy for `Vec`s with element strategy `element` and a size
        /// drawn from `size` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = if self.size.lo >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound; `lo == hi` means exactly `lo`.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { lo: r.start, hi: r.end }
    }
}

/// Everything a property test file needs, in one import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runs one property: `cases` random cases with deterministic seeding.
///
/// Not called directly — the [`proptest!`] macro expands to calls of this
/// function. Panics (failing the `#[test]`) on the first failing case,
/// reporting the case number so it can be reproduced.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Deterministic per-test seed: stable hash of the test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejected = 0u32;
    let mut case = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(h ^ case);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases * 16,
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case #{case}: {msg}")
            }
        }
        case += 1;
    }
}

/// Formats an assertion failure message (macro plumbing).
#[doc(hidden)]
#[must_use]
pub fn fail_msg(args: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(args.to_string())
}

/// Property-test entry point: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// ```
/// use dna_proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0.0..1e6, b in 0.0..1e6) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
// The `#[test]` in the example is consumed by the macro expansion — it is
// the real call-site idiom, not an attempt to nest a unit test.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::fail_msg(format_args!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::fail_msg(format_args!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::fail_msg(format_args!("assertion failed: `{:?}` != `{:?}`", a, b)));
        }
    }};
}

/// Skips the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.0..5.0f64, n in 3usize..10) {
            prop_assert!((1.0..5.0).contains(&x));
            prop_assert!((3..10).contains(&n));
        }

        #[test]
        fn map_and_tuples_compose(v in (0u64..10, 0.0..1.0f64).prop_map(|(a, b)| a as f64 + b)) {
            prop_assert!((0.0..11.0).contains(&v));
        }

        #[test]
        fn collections_and_assume(xs in prop::collection::vec(0.0..1.0f64, 1..8),
                                  flag in prop::bool::ANY) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn fixed_size_vec(xs in prop::collection::vec(0.0..1.0f64, 5)) {
            prop_assert_eq!(xs.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            prop_assert!(1 == 2, "impossible");
            Ok(())
        });
    }
}
