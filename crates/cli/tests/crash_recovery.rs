//! Kill-anywhere crash recovery, end to end through the real binary.
//!
//! These tests spawn the actual `dna` executable with the
//! `DNA_CRASH_POINT` environment variable armed, so the process
//! `abort()`s — `kill -9` semantics, no unwinding, no destructors — at a
//! named step of the versioned store's commit protocol. A fresh process
//! then recovers (`dna serve --recover` for the daemon, plain `--load`
//! for the CLI) and the recovered fingerprint is bit-compared against
//! the fingerprint the committed generation had before the crash.
//!
//! In-process tests cannot cover this: an abort takes the test runner
//! with it. Everything here goes through `std::process::Command`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dna")
}

/// Fresh scratch directory per test, inside the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dna_crash_recovery")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Generates a small deterministic circuit with the binary itself.
fn generate_circuit(dir: &Path) -> PathBuf {
    let path = dir.join("circuit.ckt");
    let status = Command::new(bin())
        .args(["generate", "--gates", "24", "--couplings", "40", "--seed", "7"])
        .args(["--o", path.to_str().unwrap()])
        .status()
        .expect("spawn dna generate");
    assert!(status.success(), "dna generate failed");
    path
}

/// A spawned `dna serve` daemon plus everything its stdout printed
/// before the `listening on` line (the recovery narration).
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    port: u16,
    boot_lines: Vec<String>,
}

impl Daemon {
    fn spawn(state_dir: &Path, recover: bool, crash_point: Option<&str>) -> Daemon {
        let mut cmd = Command::new(bin());
        cmd.args(["serve", "--port", "0", "--dir", state_dir.to_str().unwrap()]);
        if recover {
            cmd.arg("--recover");
        }
        match crash_point {
            Some(point) => cmd.env("DNA_CRASH_POINT", point),
            None => cmd.env_remove("DNA_CRASH_POINT"),
        };
        cmd.stdout(Stdio::piped()).stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn dna serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        let mut boot_lines = Vec::new();
        let port = loop {
            let mut line = String::new();
            let n = stdout.read_line(&mut line).expect("read daemon stdout");
            assert!(n > 0, "daemon exited before announcing its port: {boot_lines:?}");
            let line = line.trim_end().to_owned();
            if let Some(addr) = line.strip_prefix("dna serve: listening on ") {
                let port = addr.rsplit(':').next().and_then(|p| p.parse().ok());
                break port.expect("parse announced port");
            }
            boot_lines.push(line);
        };
        Daemon { child, stdout, port, boot_lines }
    }

    /// One request line over a fresh connection; `Ok` is the response
    /// line, `Err` means the daemon died without answering.
    fn request(&self, line: &str) -> Result<String, String> {
        let mut stream =
            TcpStream::connect(("127.0.0.1", self.port)).map_err(|e| format!("connect: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
        stream.write_all(b"\n").map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        match BufReader::new(stream).read_line(&mut response) {
            Ok(0) => Err("connection closed without a response".into()),
            Ok(_) => Ok(response.trim_end().to_owned()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Graceful stop: wire `shutdown`, then reap the process.
    fn shutdown(mut self) {
        let _ = self.request("{\"op\":\"shutdown\"}");
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited uncleanly: {status:?}");
    }

    /// Reap a daemon that was expected to abort at a crash point.
    fn reap_crashed(mut self) {
        let status = self.child.wait().expect("wait for crashed daemon");
        assert!(!status.success(), "daemon survived an armed crash point");
        // Drain whatever stdout remains so the pipe closes cleanly.
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
    }
}

/// Pulls the 16-hex-digit fingerprint out of a wire response line.
fn fingerprint_of(response: &str) -> u64 {
    let at = response.find("\"fingerprint\":\"").expect("response carries a fingerprint") + 15;
    u64::from_str_radix(&response[at..at + 16], 16).expect("parse fingerprint")
}

fn open_line(circuit: &Path) -> String {
    format!(
        "{{\"op\":\"open\",\"tenant\":\"t1\",\"circuit\":\"{}\",\"mode\":\"elim\",\"k\":2}}",
        circuit.display()
    )
}

const COMMIT_LINE: &str = "{\"op\":\"commit\",\"tenant\":\"t1\",\"remove\":[0]}";

/// Oracle run: what the open and the first commit fingerprint look like
/// when nothing crashes. Deterministic engine, so every later run must
/// reproduce these exact bits.
fn oracle(dir: &Path, circuit: &Path) -> (u64, u64) {
    let state = dir.join("oracle-state");
    std::fs::create_dir_all(&state).unwrap();
    let daemon = Daemon::spawn(&state, false, None);
    let opened = daemon.request(&open_line(circuit)).expect("oracle open");
    assert!(!opened.contains("\"error\""), "{opened}");
    let open_fp = fingerprint_of(&opened);
    let committed = daemon.request(COMMIT_LINE).expect("oracle commit");
    assert!(!committed.contains("\"error\""), "{committed}");
    let commit_fp = fingerprint_of(&committed);
    daemon.shutdown();
    assert_ne!(open_fp, commit_fp, "the commit must change the result fingerprint");
    (open_fp, commit_fp)
}

/// The recovery narration line for tenant `t1`, parsed into
/// `(generation, fingerprint)`.
fn recovered_t1(boot_lines: &[String]) -> (u64, u64) {
    let line = boot_lines
        .iter()
        .find(|l| l.starts_with("dna serve: recovered tenant `t1` at generation "))
        .unwrap_or_else(|| panic!("no recovery line for t1 in {boot_lines:?}"));
    let rest = line.strip_prefix("dna serve: recovered tenant `t1` at generation ").unwrap();
    let (generation, rest) = rest.split_once(" (fingerprint ").expect("narration shape");
    let fingerprint = rest.trim_end_matches(')');
    (generation.parse().expect("generation"), u64::from_str_radix(fingerprint, 16).expect("fp"))
}

/// Kills the daemon at each delta-append commit step and proves that
/// `dna serve --recover` resumes tenant `t1` at the last *committed*
/// generation, bit-exactly:
///
/// * `pre-append` — nothing of the delta reached the disk: recover at
///   the open checkpoint (generation 0), chain needs no repair;
/// * `mid-append` — a torn half-record is on disk: recover at
///   generation 0 after truncating the tail;
/// * `pre-sync` — the whole record is in the file (only its `fsync` was
///   lost, which a same-machine abort does not roll back): recover at
///   generation 1 with the committed fingerprint.
#[test]
fn daemon_commit_crash_recovers_the_committed_generation_bit_exactly() {
    let dir = scratch("commit-crash");
    let circuit = generate_circuit(&dir);
    let (open_fp, commit_fp) = oracle(&dir, &circuit);

    for (point, expect_gen, expect_fp, expect_repair) in [
        ("pre-append", 0u64, open_fp, false),
        ("mid-append", 0, open_fp, true),
        ("pre-sync", 1, commit_fp, false),
    ] {
        let state = dir.join(format!("state-{point}"));
        std::fs::create_dir_all(&state).unwrap();

        let daemon = Daemon::spawn(&state, false, Some(point));
        let opened = daemon.request(&open_line(&circuit)).expect("open before crash");
        assert_eq!(fingerprint_of(&opened), open_fp, "[{point}] open fingerprint");
        let died = daemon.request(COMMIT_LINE);
        assert!(died.is_err(), "[{point}] commit should die mid-save, got: {died:?}");
        daemon.reap_crashed();

        let recovered = Daemon::spawn(&state, true, None);
        let (generation, fingerprint) = recovered_t1(&recovered.boot_lines);
        assert_eq!(generation, expect_gen, "[{point}] recovered generation");
        assert_eq!(fingerprint, expect_fp, "[{point}] recovered fingerprint");
        let repaired = recovered.boot_lines.iter().any(|l| l.contains("chain repaired"));
        assert_eq!(repaired, expect_repair, "[{point}] repair: {:?}", recovered.boot_lines);

        // The recovered tenant must be live, not a zombie: redo the lost
        // commit (or, when it survived, just page the result).
        if generation == 0 {
            let committed = recovered.request(COMMIT_LINE).expect("redo the lost commit");
            assert_eq!(fingerprint_of(&committed), commit_fp, "[{point}] redone commit");
        } else {
            let page = recovered.request("{\"op\":\"query\",\"tenant\":\"t1\",\"limit\":4}");
            let page = page.expect("query after recovery");
            assert!(!page.contains("\"error\""), "[{point}] {page}");
        }
        recovered.shutdown();
    }
}

/// A crash between the artifact commit and the tenant-registry write
/// (`pre-manifest`, during `open`) must leave no half-registered
/// tenant: the open was never acknowledged, recovery finds nothing to
/// resume, and re-opening the same tenant works from scratch.
#[test]
fn daemon_open_crash_before_the_manifest_leaves_no_acked_tenant() {
    let dir = scratch("manifest-crash");
    let circuit = generate_circuit(&dir);
    let state = dir.join("state");
    std::fs::create_dir_all(&state).unwrap();

    let daemon = Daemon::spawn(&state, false, Some("pre-manifest"));
    let died = daemon.request(&open_line(&circuit));
    assert!(died.is_err(), "open should die before the manifest write, got: {died:?}");
    daemon.reap_crashed();

    let recovered = Daemon::spawn(&state, true, None);
    assert!(
        recovered.boot_lines.iter().any(|l| l.contains("recovery complete (0 resumed")),
        "unacked tenant must not be resumed: {:?}",
        recovered.boot_lines
    );
    let reopened = recovered.request(&open_line(&circuit)).expect("re-open after recovery");
    assert!(!reopened.contains("\"error\""), "{reopened}");
    let committed = recovered.request(COMMIT_LINE).expect("commit after re-open");
    assert!(!committed.contains("\"error\""), "{committed}");
    recovered.shutdown();
}

/// Kills `dna whatif --save` at each checkpoint commit step and proves
/// the temp-file/rename protocol never damages the existing chain: the
/// file is byte-identical after every abort and still resumes.
#[test]
fn whatif_save_crash_never_damages_the_committed_chain() {
    let dir = scratch("whatif-crash");
    let circuit = generate_circuit(&dir);
    let art = dir.join("session.dnawifa");
    let art_s = art.to_str().unwrap().to_owned();
    let ckt_s = circuit.to_str().unwrap().to_owned();

    let status = Command::new(bin())
        .args(["whatif", &ckt_s, "--k", "2", "--save", &art_s])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn clean save");
    assert!(status.success(), "clean save failed");
    let committed = std::fs::read(&art).expect("committed chain");

    for point in ["pre-temp", "mid-temp", "pre-rename"] {
        // --compact forces the checkpoint arm (temp file + rename).
        let status = Command::new(bin())
            .args(["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--save", &art_s, "--compact"])
            .env("DNA_CRASH_POINT", point)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn crashing save");
        assert!(!status.success(), "[{point}] save should abort");
        let after = std::fs::read(&art).expect("chain after crash");
        assert_eq!(after, committed, "[{point}] crash must not touch the committed chain");

        let output = Command::new(bin())
            .args(["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])
            .output()
            .expect("spawn resume after crash");
        assert!(output.status.success(), "[{point}] resume after crash failed");
        let out = String::from_utf8_lossy(&output.stdout);
        assert!(out.contains("resumed session"), "[{point}] {out}");
    }
}
