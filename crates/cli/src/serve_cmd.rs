//! `dna serve` / `dna client`: the loopback what-if daemon front end.
//!
//! The daemon binds a TCP listener on `127.0.0.1` (never a routable
//! address), announces the resolved port on stdout (`--port 0` asks the
//! OS for an ephemeral one), and then speaks the line-delimited JSON
//! protocol of [`dna_topk::serve::wire`]: one request object per line,
//! one response object per line. All session state lives in the
//! [`SessionManager`]; this module only moves bytes and loads circuit
//! files for `open` requests.
//!
//! With `--dir STATE_DIR` the daemon is *durable*: every tenant's
//! session is committed to an artifact chain in that directory (delta
//! appends on `commit`, full flush on shutdown) and recorded in the
//! `tenants.dnareg` manifest. `--recover` replays the manifest at boot
//! — resuming every tenant from its last committed generation,
//! repairing torn chains in place, quarantining what cannot be salvaged
//! — and is safe to pass unconditionally (an empty directory recovers
//! nothing). SIGINT/SIGTERM trigger the same graceful flush as a wire
//! `shutdown` request.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dna_netlist::{format, Circuit};
use dna_topk::serve::wire::{self, Request};
use dna_topk::serve::{ErrorCode, RecoverOutcome, Response, ServeConfig, SessionManager};
use dna_topk::TopKConfig;

use crate::opts::Opts;

/// Process-global graceful-termination flag, set by SIGINT/SIGTERM so
/// the accept loop can flush every tenant before exiting. The handler
/// does nothing but store to an atomic — async-signal-safe by
/// construction.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATION: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATION.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT/SIGTERM handlers (no-op off unix). Uses the
    /// libc `signal` entry point std already links — the workspace
    /// stays dependency-free.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}

    /// Whether a termination signal has arrived.
    pub fn requested() -> bool {
        TERMINATION.load(Ordering::SeqCst)
    }
}

/// Resolves an `open` request's circuit source: read the netlist file
/// and parse it. Also the recovery pass's resolver, so a tenant's
/// circuit is re-read from the same path it was opened from.
fn load_circuit(source: &str) -> Result<Circuit, String> {
    let text = fs::read_to_string(source).map_err(|e| format!("cannot read: {e}"))?;
    format::parse(&text).map_err(|e| format!("cannot parse: {e}"))
}

/// `dna serve`: run the daemon until a client sends `{"op":"shutdown"}`
/// or the process receives SIGINT/SIGTERM; either path flushes every
/// hot tenant (durably, with `--dir`) before exiting.
pub fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let port: u16 = opts.num("port", 0)?;
    let config = ServeConfig {
        capacity: opts.num("capacity", 4)?,
        max_queue: opts.num("max-queue", 64)?,
        victim_budget_cap: crate::commands::opt_num(opts, "victim-budget-cap")?,
        global_budget_cap: crate::commands::opt_num(opts, "global-budget-cap")?,
        deadline_cap: crate::commands::opt_num::<u64>(opts, "deadline-cap-ms")?
            .map(Duration::from_millis),
    };
    let state_dir = opts.flag("dir").map(PathBuf::from);
    if opts.has("recover") && state_dir.is_none() {
        return Err("--recover needs --dir (the daemon state directory)".into());
    }
    let manager = match &state_dir {
        Some(dir) => Arc::new(
            SessionManager::new_durable(config, dir)
                .map_err(|e| format!("cannot open state directory `{}`: {e}", dir.display()))?,
        ),
        None => Arc::new(SessionManager::new(config)),
    };
    if opts.has("recover") {
        report_recovery(&manager);
    }
    signals::install();
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!("dna serve: listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    run_server_with(&listener, &manager)
}

/// Runs the recovery pass and narrates it, one line per tenant.
fn report_recovery(manager: &SessionManager) {
    let report = manager.recover(&load_circuit);
    if let Some(damage) = &report.registry.damage {
        println!(
            "dna serve: manifest repaired ({} bytes truncated): {damage}",
            report.registry.truncated_bytes
        );
    }
    if report.stale_temp_files > 0 {
        println!("dna serve: removed {} stale checkpoint temp file(s)", report.stale_temp_files);
    }
    let mut resumed = 0usize;
    let mut quarantined = 0usize;
    for t in &report.tenants {
        match &t.outcome {
            RecoverOutcome::Resumed { generation, fingerprint, repaired_bytes, damage } => {
                resumed += 1;
                println!(
                    "dna serve: recovered tenant `{}` at generation {generation} \
                     (fingerprint {fingerprint:016x})",
                    t.tenant
                );
                if let Some(damage) = damage {
                    println!(
                        "dna serve: tenant `{}` chain repaired ({repaired_bytes} bytes \
                         truncated): {damage}",
                        t.tenant
                    );
                } else if *repaired_bytes > 0 {
                    println!(
                        "dna serve: tenant `{}` chain repaired ({repaired_bytes} bytes truncated)",
                        t.tenant
                    );
                }
            }
            RecoverOutcome::Quarantined { reason } => {
                quarantined += 1;
                println!("dna serve: quarantined tenant `{}`: {reason}", t.tenant);
            }
        }
    }
    println!("dna serve: recovery complete ({resumed} resumed, {quarantined} quarantined)");
}

/// Accept loop over a non-blocking listener with a fresh in-memory
/// manager — the test harness's entry point; `cmd_serve` goes through
/// [`run_server_with`] so the durable manager can be shared.
#[cfg(test)]
pub(crate) fn run_server(listener: &TcpListener, config: ServeConfig) -> Result<(), String> {
    run_server_with(listener, &Arc::new(SessionManager::new(config)))
}

fn run_server_with(listener: &TcpListener, manager: &Arc<SessionManager>) -> Result<(), String> {
    let stop = Arc::new(AtomicBool::new(false));
    listener.set_nonblocking(true).map_err(|e| format!("cannot poll listener: {e}"))?;
    let mut handlers = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if signals::requested() {
            eprintln!("dna serve: termination signal received; flushing tenants");
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Handlers poll the stop flag between lines, so a
                // lingering idle client cannot block shutdown forever.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let manager = manager.clone();
                let stop = stop.clone();
                handlers.push(std::thread::spawn(move || {
                    if handle_connection(&stream, &manager, &stop) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }
    stop.store(true, Ordering::SeqCst);
    for h in handlers {
        let _ = h.join();
    }
    manager.shutdown();
    eprintln!("dna serve: all tenants flushed; exiting");
    Ok(())
}

/// Serves one client connection; returns `true` when the client asked
/// the daemon to shut down. Read timeouts are polls: the handler keeps
/// waiting unless the server-wide stop flag is up.
fn handle_connection(stream: &TcpStream, manager: &SessionManager, stop: &AtomicBool) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return false,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
                continue;
            }
            Err(_) => return false,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, bye) = match wire::decode_request(&line) {
            Ok(request) => {
                let bye = matches!(request, Request::Shutdown);
                (handle_request(request, manager), bye)
            }
            Err(message) => (
                Response::Error(dna_topk::serve::ServeError {
                    code: ErrorCode::BadRequest,
                    message,
                }),
                false,
            ),
        };
        let mut encoded = wire::encode_response(&response);
        encoded.push('\n');
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            return false;
        }
        if bye {
            return true;
        }
    }
}

/// Routes one decoded request into the manager. `open` loads and parses
/// the circuit file here — a bad path or netlist is a `bad_request`,
/// never a dead daemon — and hands the manager the *path* as the
/// tenant's circuit source, which is what the durable manifest records
/// and the recovery pass re-resolves.
fn handle_request(request: Request, manager: &SessionManager) -> Response {
    match request {
        Request::Open { tenant, circuit, mode, k, victim_budget, global_budget, deadline_ms } => {
            let parsed = match load_circuit(&circuit) {
                Ok(c) => c,
                Err(e) => {
                    return Response::Error(dna_topk::serve::ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("`{circuit}`: {e}"),
                    })
                }
            };
            let config = TopKConfig {
                victim_candidate_budget: victim_budget,
                global_candidate_budget: global_budget,
                deadline: deadline_ms.map(Duration::from_millis),
                ..TopKConfig::default()
            };
            manager.open_with_source(&tenant, parsed, Some(&circuit), mode, k, config)
        }
        Request::Scenario { tenant, delta } => manager.scenario(&tenant, delta),
        Request::Batch { tenant, deltas } => manager.batch(&tenant, deltas),
        Request::Commit { tenant, delta } => manager.commit(&tenant, delta),
        Request::Query { tenant, start_after, limit } => manager.query(&tenant, start_after, limit),
        Request::Evict { tenant } => manager.evict(&tenant),
        Request::Stats => manager.stats(),
        Request::Shutdown => manager.shutdown(),
    }
}

/// Connection errors worth retrying: the daemon is restarting (refused)
/// or went away mid-handshake (reset/aborted). Anything else — e.g. an
/// unroutable address — fails immediately.
fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// Connects with a bounded exponential backoff (5 attempts: 50 ms, 100,
/// 200, 400 between them) unless `--no-retry` asked for exactly one.
fn connect_with_retry(port: u16, no_retry: bool) -> Result<TcpStream, String> {
    let attempts = if no_retry { 1 } else { 5 };
    let mut delay = Duration::from_millis(50);
    for attempt in 1..=attempts {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => return Ok(stream),
            Err(e) if attempt < attempts && transient(e.kind()) => {
                eprintln!(
                    "dna client: connect to 127.0.0.1:{port} failed ({e}); \
                     retry {attempt}/{} in {delay:?}",
                    attempts - 1
                );
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(e) => {
                return Err(format!(
                    "cannot connect to 127.0.0.1:{port} after {attempt} attempt(s): {e}"
                ))
            }
        }
    }
    unreachable!("the loop returns on its last attempt")
}

/// `dna client`: send request lines to a running daemon and print the
/// response lines. Requests come from the positional arguments (one
/// JSON object each) or, with none, from stdin. Transient connect
/// failures are retried with exponential backoff; `--no-retry` makes
/// the first failure final.
pub fn cmd_client(opts: &Opts) -> Result<(), String> {
    let port: u16 = match opts.flag("port") {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --port: `{v}`"))?,
        None => return Err("client needs --port (the port `dna serve` announced)".into()),
    };
    let mut requests: Vec<String> = Vec::new();
    let mut i = 1;
    while let Some(p) = opts.positional(i) {
        requests.push(p.to_owned());
        i += 1;
    }
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            if !line.trim().is_empty() {
                requests.push(line);
            }
        }
    }
    if requests.is_empty() {
        return Err("no requests: pass JSON objects as arguments or on stdin".into());
    }
    let stream = connect_with_retry(port, opts.has("no-retry"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    for request in requests {
        writer
            .write_all(format!("{request}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n =
            reader.read_line(&mut response).map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        print!("{response}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::generator::{generate, GeneratorConfig};

    fn write_circuit(dir: &std::path::Path, seed: u64) -> String {
        let circuit = generate(&GeneratorConfig::new(24, 18).with_seed(seed)).unwrap();
        let path = dir.join(format!("serve_{seed}.ckt"));
        fs::write(&path, format::write(&circuit)).unwrap();
        path.to_str().unwrap().to_owned()
    }

    /// One end-to-end pass over the TCP loop: open, scenario, query,
    /// stats, a typed error, shutdown.
    #[test]
    fn daemon_answers_over_tcp_and_shuts_down() {
        let dir = std::env::temp_dir().join("dna_cli_test_serve");
        fs::create_dir_all(&dir).unwrap();
        let ckt = write_circuit(&dir, 21);

        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || run_server(&listener, ServeConfig::default()).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: String| -> String {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        let r =
            ask(format!(r#"{{"op":"open","tenant":"a","circuit":"{ckt}","mode":"elim","k":2}}"#));
        assert!(r.contains("\"kind\":\"opened\""), "{r}");
        let r = ask(r#"{"op":"scenario","tenant":"a","remove":[0]}"#.into());
        assert!(r.contains("\"kind\":\"scenario\""), "{r}");
        assert!(r.contains("\"fingerprint\":\""), "{r}");
        let r = ask(r#"{"op":"query","tenant":"a","limit":8}"#.into());
        assert!(r.contains("\"kind\":\"page\""), "{r}");
        let r = ask(r#"{"op":"scenario","tenant":"ghost","remove":[0]}"#.into());
        assert!(r.contains("\"code\":\"unknown_tenant\""), "{r}");
        let r = ask("definitely not json".into());
        assert!(r.contains("\"code\":\"bad_request\""), "{r}");
        let r = ask(r#"{"op":"stats"}"#.into());
        assert!(r.contains("\"tenants\":1"), "{r}");
        let r = ask(r#"{"op":"shutdown"}"#.into());
        assert!(r.contains("\"kind\":\"bye\""), "{r}");
        server.join().unwrap();
        let _ = fs::remove_file(&ckt);
    }

    #[test]
    fn open_with_a_bad_circuit_path_is_a_typed_error_not_a_dead_daemon() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || run_server(&listener, ServeConfig::default()).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> String {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let r =
            ask(r#"{"op":"open","tenant":"a","circuit":"/nonexistent.ckt","mode":"add","k":2}"#);
        assert!(r.contains("\"code\":\"bad_request\""), "{r}");
        // The daemon is still alive and answers.
        let r = ask(r#"{"op":"stats"}"#);
        assert!(r.contains("\"kind\":\"stats\""), "{r}");
        let r = ask(r#"{"op":"shutdown"}"#);
        assert!(r.contains("\"kind\":\"bye\""), "{r}");
        server.join().unwrap();
    }

    #[test]
    fn client_without_port_or_requests_errors() {
        let opts = Opts::parse(&["client".to_owned()]);
        let e = cmd_client(&opts).unwrap_err();
        assert!(e.contains("--port"), "{e}");
    }

    #[test]
    fn client_retry_is_bounded_and_no_retry_fails_fast() {
        // Nothing listens on this port: bind-then-drop frees one.
        let port = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let start = std::time::Instant::now();
        let e = connect_with_retry(port, true).unwrap_err();
        assert!(e.contains("after 1 attempt"), "{e}");
        assert!(start.elapsed() < Duration::from_millis(500), "--no-retry does not back off");

        let start = std::time::Instant::now();
        let e = connect_with_retry(port, false).unwrap_err();
        assert!(e.contains("after 5 attempt"), "{e}");
        // 50 + 100 + 200 + 400 ms of backoff happened in between.
        assert!(start.elapsed() >= Duration::from_millis(700), "backoff is exponential");
    }

    #[test]
    fn recover_flag_requires_a_state_dir() {
        let opts = Opts::parse(&["serve".to_owned(), "--recover".to_owned()]);
        let e = cmd_serve(&opts).unwrap_err();
        assert!(e.contains("--dir"), "{e}");
    }
}
