//! `dna serve` / `dna client`: the loopback what-if daemon front end.
//!
//! The daemon binds a TCP listener on `127.0.0.1` (never a routable
//! address), announces the resolved port on stdout (`--port 0` asks the
//! OS for an ephemeral one), and then speaks the line-delimited JSON
//! protocol of [`dna_topk::serve::wire`]: one request object per line,
//! one response object per line. All session state lives in the
//! [`SessionManager`]; this module only moves bytes and loads circuit
//! files for `open` requests.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dna_netlist::format;
use dna_topk::serve::wire::{self, Request};
use dna_topk::serve::{ErrorCode, Response, ServeConfig, SessionManager};
use dna_topk::TopKConfig;

use crate::opts::Opts;

/// `dna serve`: run the daemon until a client sends `{"op":"shutdown"}`.
pub fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let port: u16 = opts.num("port", 0)?;
    let config = ServeConfig {
        capacity: opts.num("capacity", 4)?,
        max_queue: opts.num("max-queue", 64)?,
        victim_budget_cap: crate::commands::opt_num(opts, "victim-budget-cap")?,
        global_budget_cap: crate::commands::opt_num(opts, "global-budget-cap")?,
        deadline_cap: crate::commands::opt_num::<u64>(opts, "deadline-cap-ms")?
            .map(Duration::from_millis),
    };
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!("dna serve: listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    run_server(&listener, config)
}

/// Accept loop: one handler thread per connection, all sharing the
/// manager. A `shutdown` request flips the flag; the handler then
/// connects back to the listener once to unblock `accept`.
pub(crate) fn run_server(listener: &TcpListener, config: ServeConfig) -> Result<(), String> {
    let manager = Arc::new(SessionManager::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let manager = manager.clone();
        let stop = stop.clone();
        handlers.push(std::thread::spawn(move || {
            if handle_connection(&stream, &manager) {
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
            }
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    manager.shutdown();
    Ok(())
}

/// Serves one client connection; returns `true` when the client asked
/// the daemon to shut down.
fn handle_connection(stream: &TcpStream, manager: &SessionManager) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return false };
        if line.trim().is_empty() {
            continue;
        }
        let (response, bye) = match wire::decode_request(&line) {
            Ok(request) => {
                let bye = matches!(request, Request::Shutdown);
                (handle_request(request, manager), bye)
            }
            Err(message) => (
                Response::Error(dna_topk::serve::ServeError {
                    code: ErrorCode::BadRequest,
                    message,
                }),
                false,
            ),
        };
        let mut encoded = wire::encode_response(&response);
        encoded.push('\n');
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            return false;
        }
        if bye {
            return true;
        }
    }
    false
}

/// Routes one decoded request into the manager. `open` loads and parses
/// the circuit file here — a bad path or netlist is a `bad_request`,
/// never a dead daemon.
fn handle_request(request: Request, manager: &SessionManager) -> Response {
    match request {
        Request::Open { tenant, circuit, mode, k, victim_budget, global_budget, deadline_ms } => {
            let text = match fs::read_to_string(&circuit) {
                Ok(text) => text,
                Err(e) => {
                    return Response::Error(dna_topk::serve::ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("cannot read `{circuit}`: {e}"),
                    })
                }
            };
            let parsed = match format::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    return Response::Error(dna_topk::serve::ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("cannot parse `{circuit}`: {e}"),
                    })
                }
            };
            let config = TopKConfig {
                victim_candidate_budget: victim_budget,
                global_candidate_budget: global_budget,
                deadline: deadline_ms.map(Duration::from_millis),
                ..TopKConfig::default()
            };
            manager.open(&tenant, parsed, mode, k, config)
        }
        Request::Scenario { tenant, delta } => manager.scenario(&tenant, delta),
        Request::Batch { tenant, deltas } => manager.batch(&tenant, deltas),
        Request::Commit { tenant, delta } => manager.commit(&tenant, delta),
        Request::Query { tenant, start_after, limit } => manager.query(&tenant, start_after, limit),
        Request::Evict { tenant } => manager.evict(&tenant),
        Request::Stats => manager.stats(),
        Request::Shutdown => manager.shutdown(),
    }
}

/// `dna client`: send request lines to a running daemon and print the
/// response lines. Requests come from the positional arguments (one
/// JSON object each) or, with none, from stdin.
pub fn cmd_client(opts: &Opts) -> Result<(), String> {
    let port: u16 = match opts.flag("port") {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --port: `{v}`"))?,
        None => return Err("client needs --port (the port `dna serve` announced)".into()),
    };
    let mut requests: Vec<String> = Vec::new();
    let mut i = 1;
    while let Some(p) = opts.positional(i) {
        requests.push(p.to_owned());
        i += 1;
    }
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            if !line.trim().is_empty() {
                requests.push(line);
            }
        }
    }
    if requests.is_empty() {
        return Err("no requests: pass JSON objects as arguments or on stdin".into());
    }
    let stream = TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    for request in requests {
        writer
            .write_all(format!("{request}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n =
            reader.read_line(&mut response).map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        print!("{response}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::generator::{generate, GeneratorConfig};

    fn write_circuit(dir: &std::path::Path, seed: u64) -> String {
        let circuit = generate(&GeneratorConfig::new(24, 18).with_seed(seed)).unwrap();
        let path = dir.join(format!("serve_{seed}.ckt"));
        fs::write(&path, format::write(&circuit)).unwrap();
        path.to_str().unwrap().to_owned()
    }

    /// One end-to-end pass over the TCP loop: open, scenario, query,
    /// stats, a typed error, shutdown.
    #[test]
    fn daemon_answers_over_tcp_and_shuts_down() {
        let dir = std::env::temp_dir().join("dna_cli_test_serve");
        fs::create_dir_all(&dir).unwrap();
        let ckt = write_circuit(&dir, 21);

        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || run_server(&listener, ServeConfig::default()).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: String| -> String {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };

        let r =
            ask(format!(r#"{{"op":"open","tenant":"a","circuit":"{ckt}","mode":"elim","k":2}}"#));
        assert!(r.contains("\"kind\":\"opened\""), "{r}");
        let r = ask(r#"{"op":"scenario","tenant":"a","remove":[0]}"#.into());
        assert!(r.contains("\"kind\":\"scenario\""), "{r}");
        assert!(r.contains("\"fingerprint\":\""), "{r}");
        let r = ask(r#"{"op":"query","tenant":"a","limit":8}"#.into());
        assert!(r.contains("\"kind\":\"page\""), "{r}");
        let r = ask(r#"{"op":"scenario","tenant":"ghost","remove":[0]}"#.into());
        assert!(r.contains("\"code\":\"unknown_tenant\""), "{r}");
        let r = ask("definitely not json".into());
        assert!(r.contains("\"code\":\"bad_request\""), "{r}");
        let r = ask(r#"{"op":"stats"}"#.into());
        assert!(r.contains("\"tenants\":1"), "{r}");
        let r = ask(r#"{"op":"shutdown"}"#.into());
        assert!(r.contains("\"kind\":\"bye\""), "{r}");
        server.join().unwrap();
        let _ = fs::remove_file(&ckt);
    }

    #[test]
    fn open_with_a_bad_circuit_path_is_a_typed_error_not_a_dead_daemon() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || run_server(&listener, ServeConfig::default()).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> String {
            writer.write_all(format!("{line}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let r =
            ask(r#"{"op":"open","tenant":"a","circuit":"/nonexistent.ckt","mode":"add","k":2}"#);
        assert!(r.contains("\"code\":\"bad_request\""), "{r}");
        // The daemon is still alive and answers.
        let r = ask(r#"{"op":"stats"}"#);
        assert!(r.contains("\"kind\":\"stats\""), "{r}");
        let r = ask(r#"{"op":"shutdown"}"#);
        assert!(r.contains("\"kind\":\"bye\""), "{r}");
        server.join().unwrap();
    }

    #[test]
    fn client_without_port_or_requests_errors() {
        let opts = Opts::parse(&["client".to_owned()]);
        let e = cmd_client(&opts).unwrap_err();
        assert!(e.contains("--port"), "{e}");
    }
}
