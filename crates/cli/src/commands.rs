//! Subcommand implementations.

use std::fs;

use dna_bench::topk_bench;
use dna_lint::{
    lint_batch_order, lint_circuit, lint_config, lint_dirty_closure, lint_dirty_closure_certified,
    lint_result, lint_sched_replay, lint_timing, Diagnostics,
};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::{format, suite, Circuit, CouplingId};
use dna_noise::{glitch, CouplingMask, NoiseAnalysis, NoiseConfig};
use dna_sta::{critical_path, top_k_paths, LinearDelayModel, StaConfig, TimingReport};
use dna_topk::CouplingSet;
use dna_topk::{
    artifact_fingerprint, Damping, MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKResult,
    WhatIfBatch, WhatIfSession,
};

use crate::opts::Opts;

const USAGE: &str = "\
usage: dna <command> [options]

commands:
  generate  --gates N --couplings N [--seed S] [--bench i1..i10] [-o file]
  analyze   <file.ckt> [--seed S]         iterative noise analysis report
  topk      <file.ckt> --mode add|del -k N [--peel] [--audit]
            [--threads N] [--victim-budget N] [--global-budget N]
            [--deadline-ms MS]
                                          budgets degrade soundly: the
                                          result is marked a lower bound;
                                          --peel rounds run incrementally,
                                          --audit re-checks them against
                                          the from-scratch reference;
                                          --threads 0 (default) resolves
                                          to host parallelism — any value
                                          is bit-identical
  whatif    <file.ckt> [--mode add|del] [-k N] [--audit] [--threads N]
            [--damping structural|semantic]
            [--save FILE] [--load FILE]   fix-loop: run, remove the worst
            [--batch FILE] [--fingerprint] set, re-verify incrementally;
                                          --damping semantic (default)
                                          skips victims the corridor
                                          prover certifies clean, never
                                          changing an output bit; --audit
                                          re-verifies certificates and
                                          spot-checks proven-clean victims
                                          against from-scratch; sessions
                                          persist to checksummed artifacts
                                          (corrupt files fall back to a
                                          full sweep); --batch evaluates
                                          one scenario per line of FILE
                                          (tokens -ID / +ID remove or
                                          restore coupling ID, # starts a
                                          comment) sharing closure and
                                          sweep work across scenarios
  paths     <file.ckt> [-k N]             top-k critical paths
  glitch    <file.ckt> [--margin 0.4]     functional noise check
  lint      <file.ckt> [--json] [--deep]  verify IR and analysis invariants
  bench     [--json] [--out FILE] [--circuits i1,i5,i10] [--k N]
            [--samples N] [--seed S] [--quick] [--check FILE]
                                          serial-vs-parallel top-k benchmark
  serve     [--port N] [--capacity N] [--max-queue N]
            [--victim-budget-cap N] [--global-budget-cap N]
            [--deadline-cap-ms MS]        loopback what-if daemon: holds hot
                                          sessions per circuit (LRU-spilled
                                          to artifacts past --capacity),
                                          coalesces queued scenarios into
                                          shared batch sweeps, quarantines
                                          poisoned tenants; --port 0 picks
                                          an ephemeral port and announces
                                          it on stdout; line-delimited JSON
                                          (ops: open scenario batch commit
                                          query evict stats shutdown)
  client    --port N [REQUEST...]        send JSON request lines to a
                                          running daemon (or pipe them on
                                          stdin) and print the responses
  help                                    this message";

/// Routes the parsed command line to a subcommand.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and analysis errors.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    match opts.positional(0) {
        Some("generate") => cmd_generate(&opts),
        Some("analyze") => cmd_analyze(&opts),
        Some("topk") => cmd_topk(&opts),
        Some("whatif") => cmd_whatif(&opts),
        Some("paths") => cmd_paths(&opts),
        Some("glitch") => cmd_glitch(&opts),
        Some("lint") => cmd_lint(&opts),
        Some("bench") => cmd_bench(&opts),
        Some("serve") => crate::serve_cmd::cmd_serve(&opts),
        Some("client") => crate::serve_cmd::cmd_client(&opts),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_circuit(opts: &Opts) -> Result<Circuit, String> {
    let path = opts.positional(1).ok_or_else(|| "expected a .ckt file argument".to_owned())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    format::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.num("seed", 42)?;
    let circuit = if let Some(bench) = opts.flag("bench") {
        suite::benchmark(bench, seed).map_err(|e| e.to_string())?
    } else {
        let gates: usize = opts.num("gates", 100)?;
        let couplings: usize = opts.num("couplings", 3 * gates)?;
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .map_err(|e| e.to_string())?
    };
    let text = format::write(&circuit);
    match opts.flag("o") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({})", path, circuit.stats());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let report = engine.run().map_err(|e| e.to_string())?;
    let quiet = engine.run_with_mask(&CouplingMask::none(&circuit)).map_err(|e| e.to_string())?;

    println!("design: {}", circuit.stats());
    println!(
        "delay: {:.3} ns noisy / {:.3} ns noiseless ({:+.1} ps crosstalk, {} iterations{})",
        report.circuit_delay() / 1000.0,
        quiet.circuit_delay() / 1000.0,
        report.total_delay_noise(),
        report.iterations(),
        if report.converged() { "" } else { ", NOT converged" },
    );

    let mut victims: Vec<_> =
        circuit.net_ids().map(|n| (n, report.delay_noise(n))).filter(|&(_, d)| d > 0.0).collect();
    victims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite noise"));
    println!("worst victims:");
    for (net, dn) in victims.iter().take(10) {
        println!("  {:>12}  +{dn:7.1} ps", circuit.net(*net).name());
    }
    let path = critical_path(&circuit, report.noisy_timing());
    println!(
        "noisy critical path: {} nets ending at {}",
        path.len(),
        circuit.net(path.endpoint()).name()
    );
    Ok(())
}

/// Optional numeric flag: absent stays `None`, a bad value is an error.
pub(crate) fn opt_num<T: std::str::FromStr>(opts: &Opts, name: &str) -> Result<Option<T>, String> {
    match opts.flag(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value for --{name}: `{v}`")),
    }
}

/// Builds a [`TopKConfig`] carrying the enumeration budget flags and the
/// worker-thread override (`--threads 0`, the default, resolves to the
/// host's available parallelism).
fn budget_config(opts: &Opts) -> Result<TopKConfig, String> {
    Ok(TopKConfig {
        threads: opt_num(opts, "threads")?.unwrap_or(0),
        victim_candidate_budget: opt_num(opts, "victim-budget")?,
        global_candidate_budget: opt_num(opts, "global-budget")?,
        deadline: opt_num::<f64>(opts, "deadline-ms")?
            .map(|ms| std::time::Duration::from_secs_f64(ms.max(0.0) / 1e3)),
        ..TopKConfig::default()
    })
}

/// Surfaces the work-stealing scheduler's counters — including the
/// *resolved* worker count, so `--threads 0` reports the host parallelism
/// it actually ran with instead of echoing the configured zero.
fn report_scheduler(config: &TopKConfig, result: &TopKResult) {
    let s = result.scheduler_stats();
    if s.tasks() == 0 {
        return;
    }
    println!(
        "scheduler: {} worker(s) (resolved from --threads {}), {} task(s), {} steal(s), \
         longest task {:.0}% of busy time",
        s.threads(),
        config.threads,
        s.tasks(),
        s.steals(),
        s.tail_task_share() * 100.0
    );
}

/// Surfaces fault quarantines and budget degradation on stdout so a
/// curtailed or partially failed run is never mistaken for an exact one.
fn report_resilience(circuit: &Circuit, result: &TopKResult) {
    for f in result.faults().iter() {
        println!(
            "  quarantined victim {} ({} phase): {}",
            circuit.net(f.victim()).name(),
            f.phase(),
            f.cause()
        );
    }
    if result.is_degraded() {
        let s = result.sweep_stats();
        println!(
            "NOTE: result is a sound lower bound (degraded): {} victim(s) truncated, \
             {} skipped, {} quarantined",
            s.truncated_victims, s.skipped_victims, s.quarantined_victims
        );
    }
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("add") | None => Mode::Addition,
        Some("del") | Some("elim") => Mode::Elimination,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let engine = TopKAnalysis::new(&circuit, budget_config(opts)?);
    let peel_step = (k / 5).max(1);
    let result = match (mode, opts.has("peel")) {
        (Mode::Addition, _) => engine.addition_set(k),
        (Mode::Elimination, false) => engine.elimination_set(k),
        (Mode::Elimination, true) => engine.elimination_set_peeled(k, peel_step),
    }
    .map_err(|e| e.to_string())?;
    // --audit with --peel certifies the incremental peel rounds against
    // the from-scratch reference implementation.
    if mode == Mode::Elimination && opts.has("peel") && opts.has("audit") {
        let scratch =
            engine.elimination_set_peeled_scratch(k, peel_step).map_err(|e| e.to_string())?;
        let same = result.couplings() == scratch.couplings()
            && result.delay_before().to_bits() == scratch.delay_before().to_bits()
            && result.delay_after().to_bits() == scratch.delay_after().to_bits()
            && result.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
        if !same {
            return Err("audit failed: incremental peel diverged from from-scratch".into());
        }
        println!("audit: incremental peel == from-scratch (bit-identical)");
    }

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in result.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }
    println!(
        "delay {:.3} -> {:.3} ns ({:+.1} ps) in {:.2?}",
        result.delay_before() / 1000.0,
        result.delay_after() / 1000.0,
        result.delay_after() - result.delay_before(),
        result.runtime()
    );
    report_scheduler(engine.config(), &result);
    report_resilience(&circuit, &result);
    Ok(())
}

/// The designer's fix loop, one command: run the full analysis, pretend
/// the reported worst set has been fixed (shielded / rerouted, i.e. its
/// couplings masked out), and re-verify **incrementally** through a
/// [`WhatIfSession`] — only the dirty fanout cone of the touched couplings
/// is re-swept, the rest of the circuit is served from the session cache.
fn cmd_whatif(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("del") | Some("elim") | None => Mode::Elimination,
        Some("add") => Mode::Addition,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let damping = match opts.flag("damping") {
        Some("semantic") | None => Damping::Semantic,
        Some("structural") => Damping::Structural,
        Some(other) => {
            return Err(format!("unknown --damping `{other}` (use structural|semantic)"))
        }
    };
    let engine = TopKAnalysis::new(
        &circuit,
        TopKConfig {
            damping,
            threads: opt_num(opts, "threads")?.unwrap_or(0),
            ..TopKConfig::default()
        },
    );

    // --load resumes from a checksummed artifact; anything wrong with the
    // bytes (truncation, bit rot, version skew, different circuit) is
    // reported and the command falls back to a from-scratch sweep. A bad
    // artifact can cost the cache, never the answer.
    let full_start = std::time::Instant::now();
    let mut session = match opts.flag("load") {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            match WhatIfSession::resume(&engine, &bytes) {
                Ok(s) => {
                    if s.mode() != mode || s.k() != k {
                        eprintln!(
                            "note: `{path}` stores a {} k={} session; \
                             command-line --mode/-k are ignored",
                            s.mode().name(),
                            s.k()
                        );
                    }
                    println!("resumed session from `{path}` ({} bytes)", bytes.len());
                    s
                }
                Err(e) => {
                    // Typed classification: a stale artifact (version
                    // skew, fingerprint mismatch) warrants regenerating
                    // the cache; a corrupt or truncated one points at
                    // storage problems. Same classes the serve daemon
                    // reports after a failed spill-reload.
                    match &e {
                        dna_topk::TopKError::Artifact(a) => {
                            eprintln!("cannot resume from `{path}` [{}]: {a}", a.class());
                        }
                        other => eprintln!("cannot resume from `{path}`: {other}"),
                    }
                    eprintln!("falling back to a from-scratch sweep");
                    WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?
                }
            }
        }
        None => WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?,
    };
    let full_ms = full_start.elapsed().as_secs_f64() * 1e3;
    let (mode, k) = (session.mode(), session.k());
    let base = session.result().clone();

    // --save snapshots the session (I-list caches, counters, quarantines,
    // last result) before the what-if delta, so a later --load skips the
    // expensive full sweep and replays only the incremental part. A
    // session that is still byte-identical to the artifact it was resumed
    // from (fingerprint match against the target file's header) skips the
    // rewrite — the groundwork for delta-encoded artifacts.
    if let Some(path) = opts.flag("save") {
        let unchanged = session.source_fingerprint().is_some_and(|fp| {
            fs::read(path).ok().and_then(|bytes| artifact_fingerprint(&bytes)) == Some(fp)
        });
        if unchanged {
            let bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            eprintln!("session unchanged since resume; kept {path} as is ({bytes} bytes)");
        } else {
            let artifact = session.save_artifact();
            fs::write(path, &artifact).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("saved session to {path} ({} bytes)", artifact.len());
        }
    }

    // --batch evaluates a menu of independent scenarios against the
    // session snapshot instead of committing the default fix loop.
    if let Some(batch_path) = opts.flag("batch") {
        return whatif_batch(&circuit, &engine, &session, batch_path, opts);
    }

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in base.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }

    let fix: Vec<_> = base.couplings().to_vec();
    let delta = MaskDelta::remove(&fix);
    let pre_mask = session.mask().clone();
    let inc_start = std::time::Instant::now();
    let outcome = session.apply(&delta).map_err(|e| e.to_string())?;
    let inc_ms = inc_start.elapsed().as_secs_f64() * 1e3;

    let fixed = outcome.result();
    println!(
        "what-if fix of {} coupling(s): delay {:.3} -> {:.3} ns ({:+.1} ps recovered)",
        fix.len(),
        base.delay_after() / 1000.0,
        fixed.delay_after() / 1000.0,
        base.delay_after() - fixed.delay_after(),
    );
    println!(
        "incremental re-verify: {}/{} victims re-swept ({} of {} structurally dirty \
         proven clean, {} served from cache) in {inc_ms:.1} ms (initial full run took \
         {full_ms:.1} ms)",
        outcome.recomputed_victims(),
        outcome.total_victims(),
        outcome.proven_clean_victims(),
        outcome.structural_dirty_victims(),
        outcome.cached_victims(),
    );
    if opts.has("fingerprint") {
        println!("  fingerprint: {:016x}", fixed.identity_fingerprint());
    }
    report_scheduler(engine.config(), fixed);
    report_resilience(&circuit, fixed);

    // --audit cross-checks the incremental answer against a from-scratch
    // run under the same mask, the dirty set and its clean certificates
    // against the L035/L05x rules, and spot-checks a sample of
    // proven-clean victims against the from-scratch per-victim results.
    if opts.has("audit") {
        let scratch = engine.run_with_mask(mode, k, session.mask()).map_err(|e| e.to_string())?;
        let same = fixed.couplings() == scratch.couplings()
            && fixed.sink() == scratch.sink()
            && fixed.delay_before().to_bits() == scratch.delay_before().to_bits()
            && fixed.delay_after().to_bits() == scratch.delay_after().to_bits()
            && fixed.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
        if !same {
            return Err("audit failed: incremental result diverged from from-scratch".into());
        }
        let diags = if outcome.certificates().is_empty() {
            lint_dirty_closure(&circuit, &pre_mask, session.mask(), outcome.dirty_flags())
        } else {
            let witness = engine
                .derive_clean_witness(mode, &pre_mask, session.mask())
                .map_err(|e| e.to_string())?;
            lint_dirty_closure_certified(
                &circuit,
                &pre_mask,
                session.mask(),
                outcome.dirty_flags(),
                outcome.certificates(),
                &witness,
            )
        };
        if diags.has_errors() {
            return Err(format!("audit failed: dirty set incoherent\n{}", diags.render_text()));
        }
        let checked = session.audit_clean_victims(&outcome, 8).map_err(|e| e.to_string())?;
        // Scheduler determinism (L060): replay the work-stealing sweep on
        // the serial reference schedule and compare every result slot and
        // budget share.
        let sched = engine.sched_audit(mode, k).map_err(|e| e.to_string())?;
        let sched_diags = lint_sched_replay(&sched);
        if sched_diags.has_errors() {
            return Err(format!(
                "audit failed: scheduler replay diverged\n{}",
                sched_diags.render_text()
            ));
        }
        println!(
            "audit: incremental == from-scratch (bit-identical), dirty closure coherent, \
             {} certificate(s) verified, {checked} proven-clean victim(s) spot-checked, \
             scheduler replay clean ({} slot(s))",
            outcome.certificates().len(),
            sched.checked_victims,
        );
    }
    Ok(())
}

/// Parses a batch scenario file: one scenario per non-empty line, tokens
/// `-ID` (disable coupling ID) and `+ID` (re-enable it), `#` to end of
/// line is a comment.
fn parse_batch_file(text: &str, circuit: &Circuit) -> Result<WhatIfBatch, String> {
    let mut batch = WhatIfBatch::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut removed: Vec<CouplingId> = Vec::new();
        let mut added: Vec<CouplingId> = Vec::new();
        for tok in line.split_whitespace() {
            let (sign, rest) = tok.split_at(1);
            let idx: u32 = rest
                .parse()
                .map_err(|_| format!("line {}: expected -ID or +ID, got `{tok}`", lineno + 1))?;
            if idx as usize >= circuit.num_couplings() {
                return Err(format!(
                    "line {}: coupling {idx} out of range (circuit has {})",
                    lineno + 1,
                    circuit.num_couplings()
                ));
            }
            match sign {
                "-" => removed.push(CouplingId::new(idx)),
                "+" => added.push(CouplingId::new(idx)),
                _ => return Err(format!("line {}: expected -ID or +ID, got `{tok}`", lineno + 1)),
            }
        }
        batch.push(MaskDelta::new(&removed, &added));
    }
    if batch.is_empty() {
        return Err("batch file holds no scenarios".into());
    }
    Ok(batch)
}

/// The `whatif --batch` path: evaluate every scenario of the file against
/// the session snapshot through one shared batch run, and (with --audit)
/// cross-check each scenario against a from-scratch run, its dirty set
/// against L035, and order independence against L043.
fn whatif_batch(
    circuit: &Circuit,
    engine: &TopKAnalysis<'_>,
    session: &WhatIfSession<'_, '_>,
    batch_path: &str,
    opts: &Opts,
) -> Result<(), String> {
    let text =
        fs::read_to_string(batch_path).map_err(|e| format!("cannot read `{batch_path}`: {e}"))?;
    let batch = parse_batch_file(&text, circuit)?;
    let (mode, k) = (session.mode(), session.k());
    let base_delay = session.result().delay_after();

    let start = std::time::Instant::now();
    let out = session.apply_batch(&batch).map_err(|e| e.to_string())?;
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;

    println!(
        "batch what-if: {} scenario(s) ({} distinct) on top-{k} {} session, {batch_ms:.1} ms",
        out.stats().scenarios(),
        out.stats().distinct_scenarios(),
        mode.name()
    );
    for (i, sc) in out.scenarios().iter().enumerate() {
        let r = sc.result();
        println!(
            "  #{:<3} {:>2} flipped  {:>5}/{} re-swept ({} proven clean)  delay {:.3} ns \
             ({:+.1} ps vs session)",
            i,
            sc.changed_couplings().len(),
            sc.recomputed_victims(),
            sc.total_victims(),
            sc.proven_clean_victims(),
            r.delay_after() / 1000.0,
            r.delay_after() - base_delay,
        );
        // --fingerprint prints the identity digest per scenario so a
        // daemon response (which carries the same digest) can be
        // bit-compared against this local replay from a shell.
        if opts.has("fingerprint") {
            println!("  fingerprint #{i}: {:016x}", r.identity_fingerprint());
        }
    }
    println!(
        "closure sharing: {} trie frame(s) built, {} reused; {} dirty victim(s) total \
         ({} under mask-oblivious adjacency, {} proven clean by corridor bounds)",
        out.stats().closure_frames_built(),
        out.stats().closure_frames_shared(),
        out.stats().dirty_victims(),
        out.stats().unmasked_dirty_victims(),
        out.stats().proven_clean_victims(),
    );
    let sched = *out.stats().sched();
    if sched.tasks() > 0 {
        println!(
            "scheduler: {} worker(s), {} (scenario, victim) task(s), {} steal(s), \
             longest task {:.0}% of busy time",
            sched.threads(),
            sched.tasks(),
            sched.steals(),
            sched.tail_task_share() * 100.0
        );
    }

    if opts.has("audit") {
        // Per-scenario: bit-identity against from-scratch, dirty-set
        // coherence against the mask-aware L035 rule.
        for (i, (delta, sc)) in batch.deltas().iter().zip(out.scenarios()).enumerate() {
            let mask = session.mask().clone().without(delta.removed()).with(delta.added());
            let scratch = engine.run_with_mask(mode, k, &mask).map_err(|e| e.to_string())?;
            let r = sc.result();
            let same = r.couplings() == scratch.couplings()
                && r.sink() == scratch.sink()
                && r.delay_before().to_bits() == scratch.delay_before().to_bits()
                && r.delay_after().to_bits() == scratch.delay_after().to_bits()
                && r.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
            if !same {
                return Err(format!("audit failed: scenario {i} diverged from from-scratch"));
            }
            let diags = if sc.certificates().is_empty() {
                lint_dirty_closure(circuit, session.mask(), &mask, sc.dirty_flags())
            } else {
                let witness = engine
                    .derive_clean_witness(mode, session.mask(), &mask)
                    .map_err(|e| e.to_string())?;
                lint_dirty_closure_certified(
                    circuit,
                    session.mask(),
                    &mask,
                    sc.dirty_flags(),
                    sc.certificates(),
                    &witness,
                )
            };
            if diags.has_errors() {
                return Err(format!(
                    "audit failed: scenario {i} dirty set incoherent\n{}",
                    diags.render_text()
                ));
            }
        }
        // Order independence (L043): re-evaluate the scenarios reversed
        // and compare each result to its forward-order twin.
        let reversed = WhatIfBatch::from_deltas(batch.deltas().iter().rev().cloned().collect());
        let rev_out = session.apply_batch(&reversed).map_err(|e| e.to_string())?;
        let forward: Vec<TopKResult> =
            out.scenarios().iter().map(|sc| sc.result().clone()).collect();
        let mut aligned: Vec<TopKResult> =
            rev_out.scenarios().iter().map(|sc| sc.result().clone()).collect();
        aligned.reverse();
        let diags = lint_batch_order(&forward, &aligned);
        if diags.has_errors() {
            return Err(format!("audit failed: batch is order-dependent\n{}", diags.render_text()));
        }
        let certs: usize = out.scenarios().iter().map(|sc| sc.certificates().len()).sum();
        println!(
            "audit: all {} scenario(s) == from-scratch (bit-identical), dirty closures \
             coherent, {certs} certificate(s) verified, order-independent",
            out.stats().scenarios()
        );
    }
    Ok(())
}

fn cmd_paths(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 5)?;
    let model = LinearDelayModel::new();
    let cfg = StaConfig::default();
    let timing = TimingReport::run(&circuit, &model, &cfg).map_err(|e| e.to_string())?;
    println!("circuit delay: {:.3} ns", timing.circuit_delay() / 1000.0);
    for (i, p) in top_k_paths(&circuit, &model, &cfg, k).iter().enumerate() {
        let names: Vec<&str> = p.nets().iter().map(|&n| circuit.net(n).name()).collect();
        println!("#{:<2} {:.3} ns  {}", i + 1, p.arrival() / 1000.0, names.join(" -> "));
    }
    Ok(())
}

fn cmd_glitch(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let margin: f64 = opts.num("margin", 0.4)?;
    let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
        .map_err(|e| e.to_string())?;
    let reports = glitch::check(
        &circuit,
        &NoiseConfig::default(),
        timing.timings(),
        &CouplingMask::all(&circuit),
        glitch::NoiseMargin { low: margin, high: margin },
    );
    let violations = reports.iter().filter(|r| r.violated()).count();
    println!(
        "glitch check (margin {margin:.2}): {} nets checked, {} violations",
        reports.len(),
        violations
    );
    for r in reports.iter().take(10) {
        println!(
            "  {:>12}  peak {:.3}  slack {:+.3}{}",
            circuit.net(r.net).name(),
            r.peak,
            r.slack(),
            if r.violated() { "  VIOLATED" } else { "" }
        );
    }
    Ok(())
}

fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;

    let mut diags = lint_circuit(&circuit);
    diags.merge(lint_config(&TopKConfig::default()));

    // The static timing windows every downstream analysis consumes.
    match TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default()) {
        Ok(timing) => diags.merge(lint_timing(&circuit, timing.timings())),
        Err(e) => return Err(format!("cannot derive timing windows: {e}")),
    }

    // --deep additionally runs a small top-k analysis end to end and
    // verifies the engine's answer, then exercises an incremental what-if
    // session and checks its dirty-set bookkeeping against the L035
    // session-cache-coherence rule and every emitted clean certificate
    // against the L05x rules (each certificate is re-derived from scratch
    // and compared bitwise, so an unsound or stale certificate — e.g. one
    // injected through the `faultsim` prover hook — fails the lint).
    if opts.has("deep") {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let result = engine.addition_set(2).map_err(|e| e.to_string())?;
        diags.merge(lint_result(&circuit, &result, &CouplingSet::new()));

        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2)
            .map_err(|e| format!("deep lint: cannot start what-if session: {e}"))?;
        let worst: Vec<_> = session.result().couplings().to_vec();
        let pre_mask = session.mask().clone();
        let outcome = session
            .apply(&MaskDelta::remove(&worst))
            .map_err(|e| format!("deep lint: what-if apply failed: {e}"))?;
        let witness = engine
            .derive_clean_witness(Mode::Elimination, &pre_mask, session.mask())
            .map_err(|e| format!("deep lint: cannot re-derive clean witness: {e}"))?;
        diags.merge(lint_dirty_closure_certified(
            &circuit,
            &pre_mask,
            session.mask(),
            outcome.dirty_flags(),
            outcome.certificates(),
            &witness,
        ));

        // Batch scenario results must not depend on submission order
        // (L043): evaluate a small scenario menu forward and reversed and
        // compare each pair.
        let ids: Vec<CouplingId> = circuit.coupling_ids().take(2).collect();
        if !ids.is_empty() {
            let mut deltas: Vec<MaskDelta> = ids.iter().map(|&c| MaskDelta::remove(&[c])).collect();
            deltas.push(MaskDelta::remove(&ids));
            let forward = session
                .apply_batch(&WhatIfBatch::from_deltas(deltas.clone()))
                .map_err(|e| format!("deep lint: batch what-if failed: {e}"))?;
            deltas.reverse();
            let reversed = session
                .apply_batch(&WhatIfBatch::from_deltas(deltas))
                .map_err(|e| format!("deep lint: reversed batch what-if failed: {e}"))?;
            let fwd: Vec<TopKResult> =
                forward.scenarios().iter().map(|sc| sc.result().clone()).collect();
            let mut rev: Vec<TopKResult> =
                reversed.scenarios().iter().map(|sc| sc.result().clone()).collect();
            rev.reverse();
            diags.merge(lint_batch_order(&fwd, &rev));
        }

        // Scheduler determinism (L060): replay the work-stealing sweep
        // serially and compare every published result slot and budget
        // share against the parallel run.
        let audit = engine.sched_audit(Mode::Addition, 2).map_err(|e| e.to_string())?;
        diags.merge(lint_sched_replay(&audit));
    }

    diags.sort();
    render_lint(&diags, opts.has("json"));
    if diags.has_errors() {
        Err(format!("lint failed with {} error(s)", diags.error_count()))
    } else {
        Ok(())
    }
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    // Audit mode: validate an existing report (used by the CI smoke run).
    if let Some(path) = opts.flag("check") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let notes = topk_bench::validate_json_notes(&text).map_err(|e| format!("`{path}`: {e}"))?;
        // A skipped gate passes validation but is never silent: every
        // skip is printed with the reason the report recorded.
        for note in &notes {
            println!("gate: {note}");
        }
        println!(
            "{path}: well-formed {} report ({} gate(s) skipped)",
            topk_bench::SCHEMA,
            notes.len()
        );
        return Ok(());
    }

    let mut spec = topk_bench::BenchSpec::default();
    if opts.has("quick") {
        spec.circuits = vec!["i1".into()];
        spec.k = spec.k.min(3);
    }
    if let Some(list) = opts.flag("circuits") {
        spec.circuits = list.split(',').map(str::to_owned).collect();
    }
    spec.k = opts.num("k", spec.k)?;
    spec.samples = opts.num("samples", spec.samples)?;
    spec.seed = opts.num("seed", spec.seed)?;

    let report = topk_bench::run(&spec)?;
    print!("{}", report.render_table());
    if opts.has("json") {
        let path = opts.flag("out").unwrap_or("BENCH_topk.json");
        fs::write(path, report.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path} (host_threads = {})", report.host_threads);
    }
    if report.entries.iter().any(|e| !e.identical_to_serial) {
        return Err("a parallel run diverged from its serial reference".into());
    }
    if report.batch.iter().any(|e| !e.identical_to_sequential) {
        return Err("a batch scenario diverged from its sequential reference".into());
    }
    if report.peeled.iter().any(|e| !e.identical_to_scratch) {
        return Err("an incremental peel diverged from its from-scratch reference".into());
    }
    Ok(())
}

fn render_lint(diags: &Diagnostics, json: bool) {
    if json {
        println!("{}", diags.render_json());
    } else {
        println!("{}", diags.render_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `dna_topk::faultsim` registry is process-global, so the one
    /// test that arms it holds the write half of this lock while every
    /// other test that drives a semantic what-if refinement (whatif,
    /// lint --deep) holds the read half — they stay parallel among
    /// themselves but never overlap an armed injection.
    static FAULTSIM: std::sync::RwLock<()> = std::sync::RwLock::new(());

    fn faultsim_read() -> std::sync::RwLockReadGuard<'static, ()> {
        FAULTSIM.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_and_empty_succeed() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn generate_analyze_topk_round_trip() {
        let dir = std::env::temp_dir().join("dna_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();

        dispatch(&argv(&[
            "generate",
            "--gates",
            "15",
            "--couplings",
            "12",
            "--seed",
            "3",
            "--o",
            &path_s,
        ]))
        .unwrap();
        assert!(path.exists());

        dispatch(&argv(&["analyze", &path_s])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2"])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "2", "--peel"])).unwrap();
        dispatch(&argv(&["paths", &path_s, "--k", "3"])).unwrap();
        dispatch(&argv(&["glitch", &path_s])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_runs_and_audits() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_whatif");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "7",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["whatif", &path_s, "--k", "2", "--audit"])).unwrap();
        dispatch(&argv(&["whatif", &path_s, "--mode", "add", "--k", "2", "--audit"])).unwrap();
        // Structural damping skips the prover but must pass the same audit.
        dispatch(&argv(&["whatif", &path_s, "--k", "2", "--damping", "structural", "--audit"]))
            .unwrap();
        let e = dispatch(&argv(&["whatif", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        let e = dispatch(&argv(&["whatif", &path_s, "--damping", "cosmetic"])).unwrap_err();
        assert!(e.contains("unknown --damping"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deep_lint_catches_injected_unsound_certificate() {
        use dna_topk::faultsim;
        let _g = FAULTSIM.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                faultsim::disarm_all();
            }
        }
        let _d = Disarm;

        let dir = std::env::temp_dir().join("dna_cli_test_faultsim");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "20",
            "--couplings",
            "15",
            "--seed",
            "11",
            "--o",
            &path_s,
        ]))
        .unwrap();

        // Replay the session deep lint runs to find a victim it re-sweeps
        // even after corridor refinement.
        let text = fs::read_to_string(&path).unwrap();
        let circuit = format::parse(&text).unwrap();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
        let worst: Vec<_> = session.result().couplings().to_vec();
        let outcome = session.apply(&MaskDelta::remove(&worst)).unwrap();
        let victim = outcome
            .dirty_flags()
            .iter()
            .position(|&d| d)
            .expect("removing the worst set must leave at least one dirty victim");

        // With the prover hook armed, the session fabricates an unsound
        // clean certificate for that victim; the L05x re-derivation in
        // `lint --deep` must refuse it.
        faultsim::arm_force_clean_victim(victim);
        let e = dispatch(&argv(&["lint", &path_s, "--deep"])).unwrap_err();
        assert!(e.contains("lint failed"), "{e}");
        faultsim::disarm_all();

        // Disarmed, the same command is clean again.
        dispatch(&argv(&["lint", &path_s, "--deep"])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lint_passes_on_generated_circuit() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_lint");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "20",
            "--couplings",
            "15",
            "--seed",
            "11",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["lint", &path_s])).unwrap();
        dispatch(&argv(&["lint", &path_s, "--json", "--deep"])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn topk_budget_flags_degrade_soundly() {
        let dir = std::env::temp_dir().join("dna_cli_test_budget");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "5",
            "--o",
            &path_s,
        ]))
        .unwrap();
        // A brutal budget still succeeds: the result is degraded, not an error.
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "3", "--victim-budget", "1"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2", "--global-budget", "0"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--k", "2", "--deadline-ms", "0"])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--victim-budget", "lots"])).unwrap_err();
        assert!(e.contains("--victim-budget"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_save_load_round_trip_and_corrupt_fallback() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_artifact");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "9",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        assert!(art.exists());
        // Clean artifact resumes and still passes the bit-identity audit.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Truncate the artifact: the loader must detect it and the command
        // must still succeed via the from-scratch fallback.
        let bytes = fs::read(&art).unwrap();
        fs::write(&art, &bytes[..bytes.len() / 2]).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Flip one payload byte: CRC mismatch, same graceful fallback.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&art, &flipped).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn whatif_batch_runs_audits_and_rejects_bad_tokens() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_batch");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let bat = dir.join("t.batch");
        let bat_s = bat.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "7",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        fs::write(&bat, "# scenario menu\n-0\n-1 -2\n-0  # duplicate of scenario 1\n+3\n").unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s, "--audit"])).unwrap();

        fs::write(&bat, "-0 oops\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("expected -ID or +ID"), "{e}");
        fs::write(&bat, "-99999\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        fs::write(&bat, "# only comments\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("no scenarios"), "{e}");

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&bat).unwrap();
    }

    #[test]
    fn whatif_save_after_load_skips_unchanged_rewrite() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_save_skip");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "13",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        let first = fs::metadata(&art).unwrap().modified().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));

        // Resume + save back: the session is byte-identical to the
        // artifact, so the rewrite must be skipped (mtime unchanged).
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--save", &art_s]))
            .unwrap();
        assert_eq!(
            fs::metadata(&art).unwrap().modified().unwrap(),
            first,
            "unchanged session must not rewrite the artifact"
        );

        // A fresh session (no --load) has no source fingerprint: writes.
        std::thread::sleep(std::time::Duration::from_millis(25));
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        assert!(
            fs::metadata(&art).unwrap().modified().unwrap() > first,
            "fresh session must rewrite the artifact"
        );

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn missing_file_reports_error() {
        let e = dispatch(&argv(&["analyze", "/nonexistent/x.ckt"])).unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn bad_mode_reports_error() {
        let dir = std::env::temp_dir().join("dna_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&["generate", "--gates", "8", "--couplings", "4", "--o", &path_s])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        fs::remove_file(&path).unwrap();
    }
}
